//! Parsing with ambiguous grammars: the parallel LR parser returns a shared
//! forest containing *every* derivation, with local ambiguities packed —
//! the behaviour that makes IPG suitable for the user-defined syntax /
//! expression grammars of the paper's introduction (OBJ, ASF/SDF).
//!
//! Run with `cargo run --example ambiguous_forest`.

use ipg::IpgSession;
use ipg_grammar::fixtures;

fn main() {
    // E ::= E + E | E * E | ( E ) | id  — the classic ambiguous expression
    // grammar; no precedence, no associativity.
    let session = IpgSession::new(fixtures::ambiguous_expressions());

    for sentence in [
        "id + id",
        "id + id * id",
        "id + id + id + id",
        "( id + id ) * id",
    ] {
        let result = session.parse_sentence(sentence).expect("tokens known");
        let count = result.forest.tree_count(10_000);
        println!(
            "`{sentence}`: {} parse(s), forest has {} nodes / {} packed derivations",
            count,
            result.forest.num_nodes(),
            result.forest.num_derivations()
        );
        for (i, tree) in result.forest.trees(3).iter().enumerate() {
            println!("  parse {}: {}", i + 1, tree.to_sexpr(session.grammar()));
        }
        if count > 3 {
            println!("  ... and {} more", count - 3);
        }
    }

    // The number of parses of id + id + ... + id grows with the Catalan
    // numbers — but the forest stays polynomial thanks to sharing.
    println!("\nCatalan growth (parses vs forest size):");
    for operators in 1..=8 {
        let sentence = "id".to_owned() + &" + id".repeat(operators);
        let result = session.parse_sentence(&sentence).expect("tokens known");
        println!(
            "  {} operators: {:>5} parses, {:>4} forest nodes",
            operators,
            result.forest.tree_count(1_000_000),
            result.forest.num_nodes()
        );
    }
}
