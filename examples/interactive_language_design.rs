//! The paper's motivating scenario (§1), scaled to the serving layer: a
//! language is being *designed*, so its grammar changes all the time, and
//! each change must be absorbed without regenerating the parser — while
//! sentences are being parsed continuously. Here the "syntax-directed
//! editor" is an `IpgServer`: several worker threads parse against one
//! shared, lazily generated item-set graph, and the language designer's
//! `ADD-RULE`/`DELETE-RULE` edits are published as new grammar *epochs*
//! with the paper's invalidation semantics — parses in flight finish on
//! the epoch they pinned (edits never drain them), and retired epochs are
//! reclaimed once their last reader leaves.
//!
//! Run with `cargo run --example interactive_language_design`.

use std::thread;

use ipg::IpgServer;

/// Parses every sentence from four worker threads at once and checks the
/// verdicts; prints what the shared table looks like afterwards.
fn step(server: &IpgServer, action: &str, sentences: &[(&str, bool)]) {
    println!("== {action}");
    thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for (sentence, expected) in sentences {
                    let accepted = server
                        .parse_sentence(sentence)
                        .map(|r| r.accepted)
                        .unwrap_or(false);
                    assert_eq!(accepted, *expected, "unexpected verdict for `{sentence}`");
                }
            });
        }
    });
    for (sentence, expected) in sentences {
        println!(
            "   ok  `{sentence}` -> {}",
            if *expected { "accepted" } else { "rejected" }
        );
    }
    let (size, stats) = server.read(|s| (s.graph_size(), s.stats()));
    println!(
        "   table: {size}; expansions so far: {} (+{} re-expansions), modifications: {}",
        stats.expansions, stats.re_expansions, stats.modifications
    );
    let epochs = server.stats().graph;
    println!(
        "   epochs: {} published, {} retired, {} reclaimed (edits landed without draining)\n",
        epochs.epochs_published, epochs.epochs_retired, epochs.epochs_reclaimed
    );
}

fn main() {
    let server = IpgServer::from_bnf(
        r#"
        STMT ::= "print" EXPR
        EXPR ::= "num"
        START ::= STMT
        "#,
    )
    .expect("grammar parses");

    step(
        &server,
        "initial language: `print num` (4 threads, one shared table)",
        &[("print num", true), ("num", false)],
    );

    server.add_rule_text(r#"EXPR ::= EXPR "+" EXPR"#).expect("rule ok");
    step(
        &server,
        "add infix addition (MODIFY, published as a new epoch)",
        &[("print num + num + num", true), ("print +", false)],
    );

    server
        .add_rule_text(r#"STMT ::= "if" EXPR "then" STMT "else" STMT"#)
        .expect("rule ok");
    server.add_rule_text(r#"EXPR ::= "id""#).expect("rule ok");
    step(
        &server,
        "add conditionals and identifiers",
        &[
            ("if id + num then print id else print num", true),
            ("if then else", false),
        ],
    );

    // Both rules go in one fragment so that `STMTS` is recognised as a
    // non-terminal (it has a defining rule in the same text).
    server
        .add_rule_text(
            r#"
            STMT ::= "begin" STMTS "end"
            STMTS ::= STMT | STMTS ";" STMT
            "#,
        )
        .expect("rules ok");
    step(
        &server,
        "add statement blocks",
        &[
            ("begin print num ; print id ; if id then print num else print id end", true),
            ("begin end", false),
        ],
    );

    // The designer reconsiders: conditionals should not need an else branch,
    // and the old form is removed — while the workers keep parsing.
    server.add_rule_text(r#"STMT ::= "if" EXPR "then" STMT"#).expect("rule ok");
    server
        .remove_rule_text(r#"STMT ::= "if" EXPR "then" STMT "else" STMT"#)
        .expect("rule existed");
    step(
        &server,
        "replace if/then/else by if/then",
        &[
            ("if id then print num", true),
            ("if id + num then print id else print num", false),
        ],
    );

    // Garbage-collect item sets that the removed rule left behind: the
    // collection runs on a private fork and is published like any other
    // modification, so even GC never drains the workers.
    server.collect_garbage();
    println!("after garbage collection: {}", server.read(|s| s.graph_size()));

    // The per-thread aggregation shows how the work was spread.
    let stats = server.stats();
    println!(
        "served {} parses from {} threads ({} ACTION queries in total)",
        stats.total_parses(),
        stats.per_thread.len(),
        stats.total_action_calls()
    );
    println!(
        "epoch lifecycle: {} published, {} retired, {} reclaimed, {} still pinned",
        stats.graph.epochs_published,
        stats.graph.epochs_retired,
        stats.graph.epochs_reclaimed,
        stats.retired_epochs
    );
    println!("final generator statistics:\n{}", stats.graph);
}
