//! The paper's motivating scenario (§1): a language is being *designed*,
//! so its grammar changes all the time, and each change must be absorbed
//! without regenerating the parser — while sentences are being parsed
//! continuously, as a syntax-directed editor would.
//!
//! This example grows a small statement language step by step, parses
//! after every step, and prints how much of the parser was reused.
//!
//! Run with `cargo run --example interactive_language_design`.

use ipg::IpgSession;

fn step(session: &mut IpgSession, action: &str, sentences: &[(&str, bool)]) {
    println!("== {action}");
    for (sentence, expected) in sentences {
        let accepted = session
            .parse_sentence(sentence)
            .map(|r| r.accepted)
            .unwrap_or(false);
        let marker = if accepted == *expected { "ok " } else { "?? " };
        println!("   {marker} `{sentence}` -> {}", if accepted { "accepted" } else { "rejected" });
        assert_eq!(accepted, *expected, "unexpected verdict for `{sentence}`");
    }
    let size = session.graph_size();
    let stats = session.stats();
    println!(
        "   table: {size}; expansions so far: {} (+{} re-expansions), modifications: {}\n",
        stats.expansions, stats.re_expansions, stats.modifications
    );
}

fn main() {
    let mut session = IpgSession::from_bnf(
        r#"
        STMT ::= "print" EXPR
        EXPR ::= "num"
        START ::= STMT
        "#,
    )
    .expect("grammar parses");

    step(
        &mut session,
        "initial language: `print num`",
        &[("print num", true), ("num", false)],
    );

    session.add_rule_text(r#"EXPR ::= EXPR "+" EXPR"#).expect("rule ok");
    step(
        &mut session,
        "add infix addition",
        &[("print num + num + num", true), ("print +", false)],
    );

    session.add_rule_text(r#"STMT ::= "if" EXPR "then" STMT "else" STMT"#).expect("rule ok");
    session.add_rule_text(r#"EXPR ::= "id""#).expect("rule ok");
    step(
        &mut session,
        "add conditionals and identifiers",
        &[
            ("if id + num then print id else print num", true),
            ("if then else", false),
        ],
    );

    // Both rules go in one fragment so that `STMTS` is recognised as a
    // non-terminal (it has a defining rule in the same text).
    session
        .add_rule_text(
            r#"
            STMT ::= "begin" STMTS "end"
            STMTS ::= STMT | STMTS ";" STMT
            "#,
        )
        .expect("rules ok");
    step(
        &mut session,
        "add statement blocks",
        &[
            ("begin print num ; print id ; if id then print num else print id end", true),
            ("begin end", false),
        ],
    );

    // The designer reconsiders: conditionals should not need an else branch,
    // and the old form is removed.
    session.add_rule_text(r#"STMT ::= "if" EXPR "then" STMT"#).expect("rule ok");
    session
        .remove_rule_text(r#"STMT ::= "if" EXPR "then" STMT "else" STMT"#)
        .expect("rule existed");
    step(
        &mut session,
        "replace if/then/else by if/then",
        &[
            ("if id then print num", true),
            ("if id + num then print id else print num", false),
        ],
    );

    // Garbage-collect item sets that the removed rule left behind.
    session.collect_garbage();
    println!("after garbage collection: {}", session.graph_size());
    println!("final statistics:\n{}", session.stats());
}
