//! Quickstart: lazy and incremental parsing with IPG in a dozen lines.
//!
//! Run with `cargo run --example quickstart`.

use ipg::IpgSession;

fn main() {
    // The grammar of the Booleans from Fig. 4.1(a) of the paper. The
    // grammar is ambiguous — that is fine, the parser is a Tomita-style
    // parallel LR parser.
    let mut session = IpgSession::from_bnf(
        r#"
        B ::= "true" | "false" | B "or" B | B "and" B
        START ::= B
        "#,
    )
    .expect("grammar parses");

    // There is no parser-generation phase: parsing starts immediately and
    // the parse table materialises behind the scenes, by need.
    let result = session.parse_sentence("true and true").expect("known tokens");
    println!("`true and true` accepted: {}", result.accepted);
    println!(
        "item sets generated so far: {} ({:.0}% of the full table)",
        session.graph_size().complete,
        session.coverage() * 100.0
    );

    // Ambiguous sentences yield a shared forest with every parse.
    let result = session.parse_sentence("true or true or true").expect("known tokens");
    println!(
        "`true or true or true` has {} parses",
        result.forest.tree_count(100)
    );
    if let Some(tree) = result.forest.first_tree() {
        println!("one of them:\n{}", tree.render(session.grammar()));
    }

    // The language designer changes the grammar; the existing parse table
    // is updated incrementally, not regenerated.
    session.add_rule_text(r#"B ::= "unknown""#).expect("rule parses");
    let result = session.parse_sentence("unknown or false").expect("known tokens");
    println!("`unknown or false` accepted after the change: {}", result.accepted);
    println!(
        "\ngenerator statistics after the whole session:\n{}",
        session.stats()
    );
}
