//! Runs the same sentences through every parsing algorithm implemented in
//! this repository (deterministic LALR(1), Tomita over LR(0), IPG's lazy
//! tables, Earley, LL(1), and the Cigale/OBJ-style trie parser) and checks
//! that they agree wherever they are applicable — a executable version of
//! the paper's Fig. 2.1 comparison.
//!
//! Run with `cargo run --example compare_algorithms`.

use ipg::{ItemSetGraph, LazyTables};
use ipg_baselines::{LlParser, TrieParser};
use ipg_earley::EarleyParser;
use ipg_glr::GssParser;
use ipg_grammar::fixtures;
use ipg_lr::{lalr1_table, tokenize_names, Lr0Automaton, LrParser, ParseTable};

fn main() {
    let grammar = fixtures::arithmetic();
    let sentences = [
        ("id + num * id", true),
        ("( id + id ) * num", true),
        ("id + * id", false),
        ("( id", false),
        ("num", true),
    ];

    println!("grammar: arithmetic expressions (E/T/F chain)\n");
    println!(
        "{:<22} {:<12} {:<12} {:<12} {:<12} {:<12} {:<12}",
        "sentence", "LALR(1)", "Tomita/LR0", "IPG lazy", "Earley", "LL(1)", "trie"
    );

    let lalr = lalr1_table(&grammar);
    let lr0 = ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar);
    let graph = ItemSetGraph::new(&grammar);
    let earley = EarleyParser::new(&grammar);
    let ll = LlParser::new(&grammar);
    let trie = TrieParser::new(&grammar);

    for (sentence, expected) in sentences {
        let tokens = tokenize_names(&grammar, sentence).expect("tokens known");
        let det = LrParser::new(&grammar)
            .recognize(&lalr, &tokens)
            .expect("LALR(1) table is deterministic for this grammar");
        let tomita = GssParser::new(&grammar).recognize(&lr0, &tokens);
        let ipg_lazy =
            GssParser::new(&grammar).recognize(&LazyTables::new(&grammar, &graph).unwrap(), &tokens);
        let earley_ok = earley.recognize(&tokens);
        // LL(1): the arithmetic grammar is left-recursive, so the LL table
        // has conflicts — the honest answer is "not applicable".
        let ll_ok = if ll.table().is_ll1() {
            format!("{}", ll.recognize(&tokens).is_ok())
        } else {
            "n/a".to_owned()
        };
        // The trie/backtracking parser cannot handle left recursion either.
        let trie_ok = format!("{}", trie.recognize(&tokens));

        println!(
            "{:<22} {:<12} {:<12} {:<12} {:<12} {:<12} {:<12}",
            sentence, det, tomita, ipg_lazy, earley_ok, ll_ok, trie_ok
        );
        assert_eq!(det, expected);
        assert_eq!(tomita, expected);
        assert_eq!(ipg_lazy, expected);
        assert_eq!(earley_ok, expected);
    }

    println!(
        "\nLL(1) reports {} conflicts on this grammar (left recursion), and the trie parser\n\
         rejects left-recursive derivations — the `-` entries of Fig. 2.1 in action.\n\
         The LR-family parsers and Earley agree on every sentence.",
        LlParser::new(&grammar).table().conflicts().len()
    );
    println!("\nFor the full measured comparison run:");
    println!("  cargo run --release -p ipg-bench --bin fig2_comparison");
}
