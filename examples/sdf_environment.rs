//! The full ASF/SDF-style pipeline the paper's system was built for:
//! a syntax definition written in SDF drives the scanner generator (ISG)
//! and the lazy/incremental parser generator (IPG), and the resulting
//! parser is immediately used on real input — here, SDF definitions
//! themselves, exactly as in the paper's measurements (§7).
//!
//! Run with `cargo run --release --example sdf_environment`.

use ipg::IpgSession;
use ipg_sdf::fixtures::{measurement_inputs, paper_modification_rule, sdf_grammar_and_scanner};
use ipg_sdf::NormalizedSdf;

fn main() {
    // 1. Normalise the SDF definition of SDF (Appendix B) into a grammar
    //    and a scanner.
    let NormalizedSdf { grammar, mut scanner } = sdf_grammar_and_scanner();
    println!(
        "SDF grammar: {} rules, {} symbols; scanner: {} token definitions",
        grammar.num_active_rules(),
        grammar.symbols().len(),
        scanner.definitions().len()
    );

    // 2. Open an interactive session: no parser generation happens here.
    let mut session = IpgSession::new(grammar);

    // 3. Scan and parse the paper's four measurement inputs.
    for input in measurement_inputs() {
        let tokens = scanner
            .tokenize_for(session.grammar(), input.text)
            .expect("input scans");
        let result = session.parse(&tokens);
        println!(
            "{:<10} {:>4} tokens  accepted: {:<5}  table so far: {}",
            input.name,
            tokens.len(),
            result.accepted,
            session.graph_size()
        );
        assert!(result.accepted);
    }
    println!(
        "coverage after all inputs: {:.0}% of the full LR(0) table\n",
        session.coverage() * 100.0
    );

    // 4. Apply the grammar modification from the measurements: the rule
    //    `"(" CF-ELEM+ ")?" -> CF-ELEM` is added to SDF.
    let (lhs_name, rhs_names) = paper_modification_rule();
    let lhs = session.nonterminal(&lhs_name);
    let rhs = rhs_names.iter().map(|n| {
        // `CF-ELEM+` already exists as a non-terminal; the two literals are
        // terminals.
        if n.ends_with('+') {
            session.nonterminal(n)
        } else {
            session.terminal(n)
        }
    }).collect::<Vec<_>>();
    session.add_rule(lhs, rhs);
    println!(
        "added `\"(\" CF-ELEM+ \")?\" -> CF-ELEM`; invalidated item sets are re-expanded by need"
    );

    // 5. The old inputs still parse; so does a definition using the new
    //    optional-group syntax (scanner gets the new `)?` keyword too).
    scanner.add_definition(ipg_lexer::TokenDef::keyword(")?"));
    let with_optional = r#"
        module Optional
        begin
            context-free syntax
                sorts DECL
                functions
                    "declare" ( DECL DECL )? "end" -> DECL
                    "unit"                         -> DECL
        end Optional
    "#;
    let tokens = scanner
        .tokenize_for(session.grammar(), with_optional)
        .expect("new syntax scans");
    let result = session.parse(&tokens);
    println!("module using the new `( ... )?` syntax accepted: {}", result.accepted);

    for input in measurement_inputs() {
        let tokens = scanner
            .tokenize_for(session.grammar(), input.text)
            .expect("input still scans");
        assert!(session.parse(&tokens).accepted, "{} must still parse", input.name);
    }
    println!("all original inputs still parse after the modification");
    println!("\nfinal statistics:\n{}", session.stats());
}
