//! Umbrella crate re-exporting the whole IPG reproduction for the examples
//! and integration tests. Downstream users normally depend on the individual
//! crates (`ipg`, `ipg-lr`, `ipg-glr`, ...) directly.

pub use ipg as core;
pub use ipg_baselines as baselines;
pub use ipg_earley as earley;
pub use ipg_glr as glr;
pub use ipg_grammar as grammar;
pub use ipg_lexer as lexer;
pub use ipg_lr as lr;
pub use ipg_sdf as sdf;
