//! Offline stub of `criterion`: a small wall-clock benchmark harness with
//! the API surface this repository's benches use (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `iter`, `iter_batched`,
//! `BenchmarkId`, `Throughput`, `BatchSize`, `black_box`).
//!
//! Measurement model: after a short warm-up, each benchmark runs
//! `sample_size` samples and reports min/mean per-iteration times. Passing
//! `--test` (as `cargo bench -- --test` does) runs every benchmark exactly
//! once, which is what CI uses to smoke-test the harnesses.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-element/byte normalisation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost (ignored by the stub).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput used to normalise reported times.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(
            self.criterion,
            &full,
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(
            self.criterion,
            &full,
            self.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op in the stub; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Conversion of both `&str` names and [`BenchmarkId`]s into a label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// The benchmark manager.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id();
        run_benchmark(self, &label, 10, None, &mut f);
        self
    }
}

fn run_benchmark(
    criterion: &Criterion,
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if criterion.test_mode {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        println!("test {label} ... ok");
        return;
    }

    // Calibrate the iteration count to ~5ms per sample.
    let mut calibrate = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calibrate);
    let per_iter = calibrate.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(5);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per = bencher.elapsed / iters as u32;
        best = best.min(per);
        total += per;
    }
    let mean = total / sample_size as u32;
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => {
                format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64()),
        })
        .unwrap_or_default();
    println!(
        "{label:<60} mean {:>12?}  min {:>12?}{rate}",
        mean, best
    );
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` over group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
