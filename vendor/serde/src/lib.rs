//! Offline stub of `serde`: blanket marker traits plus the no-op derives
//! from the sibling `serde_derive` stub. Sufficient for code that only
//! *annotates* types with `#[derive(Serialize, Deserialize)]` and never
//! actually serialises.

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented for every type.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
