//! Offline stub of `serde_derive`: the derives expand to nothing, so
//! `#[derive(Serialize, Deserialize)]` annotations compile without pulling
//! in the real serde machinery (this repository never serialises anything).

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
