//! Offline stub of `proptest`: a small, deterministic property-testing
//! runner covering the API surface this repository uses — `proptest!`,
//! `prop_assert*!`, `prop_assume!`, `prop_oneof!`, `Just`, `any`,
//! `prop::collection::vec`, ranges as strategies, tuples as strategies and
//! `.prop_map`. No shrinking: failing cases report their inputs instead.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `proptest::prelude` of the real crate, trimmed to what is used.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Deterministic pseudo-random source and runner configuration.
pub mod rng {
    pub use crate::test_runner::TestRng;
}

/// Runs one property: generates inputs, executes the body, tallies
/// rejections. Exposed for the `proptest!` macro; not public API.
#[doc(hidden)]
pub mod runner_impl {
    pub const MAX_REJECTS_FACTOR: u32 = 20;
}

/// The main entry point: declares `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts =
                __config.cases.saturating_mul($crate::runner_impl::MAX_REJECTS_FACTOR);
            while __accepted < __config.cases && __attempts < __max_attempts {
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __case_desc = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&format!("{:?}", &$arg));
                        s.push_str("; ");
                    )+
                    s
                };
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {}\n  inputs: {}",
                            msg, __case_desc
                        );
                    }
                }
            }
            assert!(
                __accepted > 0,
                "proptest: every generated case was rejected by prop_assume! \
                 ({} attempts)",
                __attempts
            );
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Chooses uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
