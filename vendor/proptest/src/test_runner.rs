//! Runner configuration, case outcome, and the deterministic RNG.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one failing/rejected case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (does not count as a run).
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// A small, fast, deterministic RNG (xorshift64*). Seeded from the property
/// name so every property explores a stable but distinct input sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG deterministically from an arbitrary tag.
    pub fn deterministic(tag: &str) -> Self {
        // FNV-1a over the tag; never zero.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// A uniformly random bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
