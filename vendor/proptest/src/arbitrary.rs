//! `any::<T>()` for a handful of primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),+) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })+
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
