//! The `Strategy` trait and the combinators the repository's tests use.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of values of one type. Unlike real proptest there is no
/// shrinking; `generate` draws a single value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        rng.in_range(self.start, self.end - 1)
    }
}

impl Strategy for RangeInclusive<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty range strategy");
        rng.in_range(*self.start(), *self.end())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A => 0);
tuple_strategy!(A => 0, B => 1);
tuple_strategy!(A => 0, B => 1, C => 2);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3);

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy as a trait object (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Uniform choice between boxed strategies of a common value type.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len());
        self.options[pick].generate(rng)
    }
}
