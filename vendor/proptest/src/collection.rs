//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors with a length drawn from `size` and elements drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.in_range(self.size.min, self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
