//! The deterministic LR parser `LR-PARSE` from §3.1 of the paper, extended
//! with parse-tree construction and an optional trace of its moves
//! (Fig. 4.2).
//!
//! The parser is written against the [`ParserTables`] trait, so it can be
//! driven by an eagerly generated [`crate::ParseTable`] as well as by the
//! lazy item-set graph of the `ipg` crate (as long as the grammar is
//! deterministic for the given input — otherwise use the parallel parser in
//! `ipg-glr`).

use std::fmt;

use ipg_grammar::{Grammar, SymbolId};

use crate::automaton::StateId;
use crate::table::{Action, ActionCell, ParserTables};
use crate::tree::ParseTree;

/// Errors produced by the deterministic LR parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The tables contain more than one action for a state/symbol pair; a
    /// deterministic parser cannot proceed. Use the parallel parser.
    Conflict {
        /// State in which the conflict occurred.
        state: StateId,
        /// Current input symbol.
        symbol: SymbolId,
        /// The conflicting actions.
        actions: Vec<Action>,
    },
    /// The input is not a sentence of the language.
    SyntaxError {
        /// 0-based index of the offending token (== input length for
        /// end-of-input errors).
        position: usize,
        /// State in which the error was detected.
        state: StateId,
        /// The offending symbol (the end-marker for end-of-input errors).
        symbol: SymbolId,
    },
    /// The tables are inconsistent: a reduce action had no GOTO entry.
    /// This indicates a bug in the table generator, not in the input.
    MissingGoto {
        /// State on top of the stack after popping the rule's right-hand side.
        state: StateId,
        /// The non-terminal that was reduced to.
        symbol: SymbolId,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Conflict { state, symbol, actions } => write!(
                f,
                "parse-table conflict in state {state} on {symbol:?}: {} actions",
                actions.len()
            ),
            ParseError::SyntaxError { position, state, symbol } => {
                write!(f, "syntax error at token {position} ({symbol:?}) in state {state}")
            }
            ParseError::MissingGoto { state, symbol } => {
                write!(f, "missing GOTO entry for {symbol:?} in state {state}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// One step of the parser's walk through the graph of item sets, in the
/// spirit of Fig. 4.2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// Step counter (0-based).
    pub step: usize,
    /// State on top of the stack before the action.
    pub state: StateId,
    /// Current input symbol.
    pub symbol: SymbolId,
    /// The action performed.
    pub action: Action,
    /// Depth of the state stack before the action.
    pub stack_depth: usize,
}

/// Renders a trace as readable text (one line per move).
pub fn render_trace(grammar: &Grammar, trace: &[TraceStep]) -> String {
    let mut out = String::new();
    for step in trace {
        let action = match step.action {
            Action::Shift(s) => format!("shift to state {s}"),
            Action::Reduce(r) => format!("reduce {}", grammar.rule(r).display(grammar.symbols())),
            Action::Accept => "accept".to_owned(),
        };
        out.push_str(&format!(
            "{:>3}: state {:>3}, lookahead {:<8} -> {}\n",
            step.step,
            step.state,
            grammar.name(step.symbol),
            action
        ));
    }
    out
}

/// Reusable per-run scratch of the deterministic LR parser: the state
/// stack and the ACTION cell. Recognition through a recycled context is
/// allocation-free once the stack has grown to the input's depth (tree
/// construction inherently allocates the tree it returns).
#[derive(Clone, Debug, Default)]
pub struct LrCtx {
    stack: Vec<StateId>,
    actions: ActionCell,
}

impl LrCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the scratch while keeping capacity.
    pub fn reset(&mut self) {
        self.stack.clear();
        self.actions.clear();
    }
}

/// The deterministic LR parser.
///
/// The parser itself is stateless between calls; it borrows the grammar to
/// know rule lengths and left-hand sides during reduces and for tree
/// construction.
#[derive(Debug)]
pub struct LrParser<'g> {
    grammar: &'g Grammar,
}

impl<'g> LrParser<'g> {
    /// Creates a parser for `grammar`.
    pub fn new(grammar: &'g Grammar) -> Self {
        LrParser { grammar }
    }

    /// Recognises `tokens` (a sentence of terminal symbols, without the
    /// end-marker). Returns `Ok(true)`/`Ok(false)` for accept/reject and an
    /// error only if the tables are unusable (conflict or missing GOTO).
    pub fn recognize(
        &self,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
    ) -> Result<bool, ParseError> {
        let mut ctx = LrCtx::new();
        self.recognize_in(&mut ctx, tables, tokens)
    }

    /// Recognises `tokens` in a reusable context — the allocation-free
    /// form of [`LrParser::recognize`].
    pub fn recognize_in(
        &self,
        ctx: &mut LrCtx,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
    ) -> Result<bool, ParseError> {
        match self.run(ctx, tables, tokens, false, None) {
            Ok(_) => Ok(true),
            Err(ParseError::SyntaxError { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Parses `tokens` and returns the parse tree.
    pub fn parse(
        &self,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
    ) -> Result<ParseTree, ParseError> {
        let mut ctx = LrCtx::new();
        self.parse_in(&mut ctx, tables, tokens)
    }

    /// Parses `tokens` in a reusable context (the returned tree is still
    /// freshly allocated; the stack and ACTION scratch are recycled).
    pub fn parse_in(
        &self,
        ctx: &mut LrCtx,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
    ) -> Result<ParseTree, ParseError> {
        self.run(ctx, tables, tokens, true, None)
            .map(|t| t.expect("tree construction was requested"))
    }

    /// Parses `tokens`, recording every move in `trace`.
    pub fn parse_with_trace(
        &self,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
        trace: &mut Vec<TraceStep>,
    ) -> Result<ParseTree, ParseError> {
        let mut ctx = LrCtx::new();
        self.run(&mut ctx, tables, tokens, true, Some(trace))
            .map(|t| t.expect("tree construction was requested"))
    }

    fn run(
        &self,
        ctx: &mut LrCtx,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
        build_tree: bool,
        mut trace: Option<&mut Vec<TraceStep>>,
    ) -> Result<Option<ParseTree>, ParseError> {
        ctx.reset();
        let eof = self.grammar.eof_symbol();
        let LrCtx { stack, actions } = ctx;
        stack.push(tables.start_state());
        let mut values: Vec<ParseTree> = Vec::new();
        let mut pos = 0usize;
        let mut step = 0usize;

        loop {
            let state = *stack.last().expect("stack never empties");
            let symbol = tokens.get(pos).copied().unwrap_or(eof);
            debug_assert!(
                self.grammar.is_terminal(symbol),
                "input must consist of terminals"
            );
            tables.actions_into(state, symbol, actions);
            let Some(action) = actions.single() else {
                if actions.is_empty() {
                    return Err(ParseError::SyntaxError {
                        position: pos,
                        state,
                        symbol,
                    });
                }
                return Err(ParseError::Conflict {
                    state,
                    symbol,
                    actions: actions.to_vec(),
                });
            };
            if let Some(trace) = trace.as_deref_mut() {
                trace.push(TraceStep {
                    step,
                    state,
                    symbol,
                    action,
                    stack_depth: stack.len(),
                });
            }
            step += 1;

            match action {
                Action::Shift(next) => {
                    stack.push(next);
                    if build_tree {
                        values.push(ParseTree::Leaf {
                            symbol,
                            position: pos,
                        });
                    }
                    pos += 1;
                }
                Action::Reduce(rule_id) => {
                    let rule = self.grammar.rule(rule_id);
                    let arity = rule.rhs.len();
                    for _ in 0..arity {
                        stack.pop();
                    }
                    let top = *stack.last().expect("stack never empties");
                    let Some(next) = tables.goto(top, rule.lhs) else {
                        return Err(ParseError::MissingGoto {
                            state: top,
                            symbol: rule.lhs,
                        });
                    };
                    stack.push(next);
                    if build_tree {
                        let children = values.split_off(values.len() - arity);
                        values.push(ParseTree::Node {
                            rule: rule_id,
                            children,
                        });
                    }
                }
                Action::Accept => {
                    if !build_tree {
                        return Ok(None);
                    }
                    // The value stack now holds exactly the tree for the
                    // START rule's right-hand side (a single non-terminal,
                    // per the grammar well-formedness rules).
                    return Ok(values.pop().map(Some).unwrap_or(None));
                }
            }
        }
    }
}

/// Convenience: maps a whitespace-separated sentence of terminal *names* to
/// symbol ids. Unknown names produce `None`.
pub fn tokenize_names(grammar: &Grammar, sentence: &str) -> Option<Vec<SymbolId>> {
    sentence
        .split_whitespace()
        .map(|name| grammar.symbol(name).filter(|&s| grammar.is_terminal(s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Lr0Automaton;
    use crate::lalr::lalr1_table;
    use crate::table::ParseTable;
    use ipg_grammar::fixtures;

    #[test]
    fn parses_unambiguous_boolean_sentence_with_lr0_table() {
        // `true` on its own never touches a conflicted cell.
        let g = fixtures::booleans();
        let table = ParseTable::lr0(&Lr0Automaton::build(&g), &g);
        let parser = LrParser::new(&g);
        let tokens = tokenize_names(&g, "true").unwrap();
        let tree = parser.parse(&table, &tokens).unwrap();
        assert_eq!(tree.to_sexpr(&g), "(B true)");
    }

    #[test]
    fn conflicted_cell_is_reported() {
        // `true or false or true` reaches the shift/reduce conflict of the
        // ambiguous Booleans grammar.
        let g = fixtures::booleans();
        let table = ParseTable::lr0(&Lr0Automaton::build(&g), &g);
        let parser = LrParser::new(&g);
        let tokens = tokenize_names(&g, "true or false or true").unwrap();
        match parser.parse(&table, &tokens) {
            Err(ParseError::Conflict { actions, .. }) => assert_eq!(actions.len(), 2),
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn parses_arithmetic_with_lalr_table() {
        let g = fixtures::arithmetic();
        let table = lalr1_table(&g);
        let parser = LrParser::new(&g);
        let tokens = tokenize_names(&g, "id + num * ( id )").unwrap();
        let tree = parser.parse(&table, &tokens).unwrap();
        assert_eq!(tree.leaf_count(), tokens.len());
        let fringe = tree.fringe();
        assert_eq!(fringe, tokens);
    }

    #[test]
    fn syntax_errors_report_position() {
        let g = fixtures::arithmetic();
        let table = lalr1_table(&g);
        let parser = LrParser::new(&g);
        let tokens = tokenize_names(&g, "id + )").unwrap();
        match parser.parse(&table, &tokens) {
            Err(ParseError::SyntaxError { position, .. }) => assert_eq!(position, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
        assert!(!parser.recognize(&table, &tokens).unwrap());
    }

    #[test]
    fn truncated_input_is_rejected() {
        let g = fixtures::arithmetic();
        let table = lalr1_table(&g);
        let parser = LrParser::new(&g);
        let tokens = tokenize_names(&g, "id +").unwrap();
        match parser.parse(&table, &tokens) {
            Err(ParseError::SyntaxError { position, symbol, .. }) => {
                assert_eq!(position, 2);
                assert_eq!(symbol, g.eof_symbol());
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn trace_matches_fig_42_shape() {
        // Parsing `true or false` with a deterministic (SLR) table performs
        // shifts and reduces ending in accept, cf. Fig. 4.2.
        let g = fixtures::arithmetic();
        let table = lalr1_table(&g);
        let parser = LrParser::new(&g);
        let tokens = tokenize_names(&g, "id + id").unwrap();
        let mut trace = Vec::new();
        parser.parse_with_trace(&table, &tokens, &mut trace).unwrap();
        assert!(matches!(trace.last().unwrap().action, Action::Accept));
        let shifts = trace.iter().filter(|s| matches!(s.action, Action::Shift(_))).count();
        assert_eq!(shifts, 3);
        let text = render_trace(&g, &trace);
        assert!(text.contains("accept"));
        assert!(text.contains("reduce"));
    }

    #[test]
    fn tokenize_names_rejects_unknown_and_nonterminal_names() {
        let g = fixtures::booleans();
        assert!(tokenize_names(&g, "true maybe").is_none());
        assert!(tokenize_names(&g, "B").is_none());
        assert_eq!(tokenize_names(&g, "true or false").unwrap().len(), 3);
    }

    #[test]
    fn recycled_context_agrees_with_fresh_runs() {
        let g = fixtures::arithmetic();
        let table = lalr1_table(&g);
        let parser = LrParser::new(&g);
        let mut ctx = LrCtx::new();
        for sentence in ["id + num", "id +", "( id )", "", "id + num * id"] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert_eq!(
                parser.recognize_in(&mut ctx, &table, &tokens).unwrap(),
                parser.recognize(&table, &tokens).unwrap(),
                "sentence `{sentence}`"
            );
        }
        let tokens = tokenize_names(&g, "id + num").unwrap();
        assert_eq!(
            parser.parse_in(&mut ctx, &table, &tokens).unwrap(),
            parser.parse(&table, &tokens).unwrap()
        );
    }

    #[test]
    fn empty_input_is_rejected_for_booleans() {
        let g = fixtures::booleans();
        let table = ParseTable::lr0(&Lr0Automaton::build(&g), &g);
        let parser = LrParser::new(&g);
        assert!(!parser.recognize(&table, &[]).unwrap());
    }

    #[test]
    fn error_display_messages() {
        let e = ParseError::SyntaxError {
            position: 3,
            state: StateId(1),
            symbol: SymbolId::from_index(0),
        };
        assert!(e.to_string().contains("token 3"));
        let c = ParseError::MissingGoto {
            state: StateId(0),
            symbol: SymbolId::from_index(1),
        };
        assert!(c.to_string().contains("GOTO"));
    }
}
