//! Concrete parse trees produced by the deterministic LR parser.
//!
//! The parallel parser in `ipg-glr` produces a *shared forest* instead; it
//! can be lowered to (one or all of) these plain trees.

use std::fmt;

use ipg_grammar::{Grammar, RuleId, SymbolId};

/// A concrete syntax tree: leaves are input tokens, internal nodes are rule
/// applications.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseTree {
    /// A terminal leaf: the token's symbol and its position in the input.
    Leaf {
        /// Terminal symbol of the token.
        symbol: SymbolId,
        /// 0-based index of the token in the input sentence.
        position: usize,
    },
    /// An application of `rule`, with one child per right-hand-side symbol.
    Node {
        /// The rule that was reduced.
        rule: RuleId,
        /// Children in left-to-right order (empty for epsilon rules).
        children: Vec<ParseTree>,
    },
}

impl ParseTree {
    /// The symbol this tree derives: the terminal of a leaf or the
    /// left-hand side of a node's rule.
    pub fn symbol(&self, grammar: &Grammar) -> SymbolId {
        match self {
            ParseTree::Leaf { symbol, .. } => *symbol,
            ParseTree::Node { rule, .. } => grammar.rule(*rule).lhs,
        }
    }

    /// Total number of nodes (leaves + internal).
    pub fn size(&self) -> usize {
        match self {
            ParseTree::Leaf { .. } => 1,
            ParseTree::Node { children, .. } => 1 + children.iter().map(ParseTree::size).sum::<usize>(),
        }
    }

    /// Number of leaves, i.e. the number of input tokens covered.
    pub fn leaf_count(&self) -> usize {
        match self {
            ParseTree::Leaf { .. } => 1,
            ParseTree::Node { children, .. } => {
                children.iter().map(ParseTree::leaf_count).sum::<usize>()
            }
        }
    }

    /// Height of the tree (a leaf has height 1).
    pub fn height(&self) -> usize {
        match self {
            ParseTree::Leaf { .. } => 1,
            ParseTree::Node { children, .. } => {
                1 + children.iter().map(ParseTree::height).max().unwrap_or(0)
            }
        }
    }

    /// The sequence of leaf symbols, left to right (the yield of the tree).
    pub fn fringe(&self) -> Vec<SymbolId> {
        let mut out = Vec::new();
        self.collect_fringe(&mut out);
        out
    }

    fn collect_fringe(&self, out: &mut Vec<SymbolId>) {
        match self {
            ParseTree::Leaf { symbol, .. } => out.push(*symbol),
            ParseTree::Node { children, .. } => {
                for c in children {
                    c.collect_fringe(out);
                }
            }
        }
    }

    /// Renders the tree as an indented outline, e.g.
    ///
    /// ```text
    /// B ::= B or B
    ///   B ::= true
    ///   or
    ///   B ::= false
    /// ```
    pub fn render(&self, grammar: &Grammar) -> String {
        let mut out = String::new();
        self.render_into(grammar, 0, &mut out);
        out
    }

    fn render_into(&self, grammar: &Grammar, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            ParseTree::Leaf { symbol, .. } => {
                out.push_str(grammar.name(*symbol));
                out.push('\n');
            }
            ParseTree::Node { rule, children } => {
                out.push_str(&grammar.rule(*rule).display(grammar.symbols()).to_string());
                out.push('\n');
                for c in children {
                    c.render_into(grammar, depth + 1, out);
                }
            }
        }
    }

    /// Renders the tree as a single-line s-expression, handy in tests:
    /// `(B (B true) or (B false))`.
    pub fn to_sexpr(&self, grammar: &Grammar) -> String {
        match self {
            ParseTree::Leaf { symbol, .. } => grammar.name(*symbol).to_owned(),
            ParseTree::Node { rule, children } => {
                let mut out = format!("({}", grammar.name(grammar.rule(*rule).lhs));
                for c in children {
                    out.push(' ');
                    out.push_str(&c.to_sexpr(grammar));
                }
                out.push(')');
                out
            }
        }
    }
}

impl fmt::Display for ParseTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTree::Leaf { symbol, position } => write!(f, "leaf({symbol:?}@{position})"),
            ParseTree::Node { rule, children } => {
                write!(f, "node({rule:?}, {} children)", children.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;

    fn sample_tree() -> (Grammar, ParseTree) {
        let g = fixtures::booleans();
        let b = g.symbol("B").unwrap();
        let t = g.symbol("true").unwrap();
        let f = g.symbol("false").unwrap();
        let or = g.symbol("or").unwrap();
        let r_true = g.find_rule(b, &[t]).unwrap();
        let r_false = g.find_rule(b, &[f]).unwrap();
        let r_or = g.find_rule(b, &[b, or, b]).unwrap();
        let tree = ParseTree::Node {
            rule: r_or,
            children: vec![
                ParseTree::Node {
                    rule: r_true,
                    children: vec![ParseTree::Leaf { symbol: t, position: 0 }],
                },
                ParseTree::Leaf { symbol: or, position: 1 },
                ParseTree::Node {
                    rule: r_false,
                    children: vec![ParseTree::Leaf { symbol: f, position: 2 }],
                },
            ],
        };
        (g, tree)
    }

    #[test]
    fn size_and_counts() {
        let (_, tree) = sample_tree();
        assert_eq!(tree.size(), 6);
        assert_eq!(tree.leaf_count(), 3);
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn fringe_is_the_input_sentence() {
        let (g, tree) = sample_tree();
        let names: Vec<_> = tree.fringe().iter().map(|&s| g.name(s).to_owned()).collect();
        assert_eq!(names, vec!["true", "or", "false"]);
    }

    #[test]
    fn symbol_is_lhs_of_root_rule() {
        let (g, tree) = sample_tree();
        assert_eq!(tree.symbol(&g), g.symbol("B").unwrap());
    }

    #[test]
    fn sexpr_rendering() {
        let (g, tree) = sample_tree();
        assert_eq!(tree.to_sexpr(&g), "(B (B true) or (B false))");
    }

    #[test]
    fn outline_rendering_mentions_rules_and_leaves() {
        let (g, tree) = sample_tree();
        let text = tree.render(&g);
        assert!(text.contains("B ::= B or B"));
        assert!(text.contains("  or"));
        assert!(format!("{tree}").contains("children"));
    }
}
