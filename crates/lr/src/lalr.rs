//! Canonical LR(1) and LALR(1) table construction — the "Yacc" baseline of
//! the paper's measurements (§7) and of Horspool's competing approach
//! discussed in the postscript.
//!
//! The LALR(1) table is obtained by building the canonical LR(1) collection
//! and merging states with identical LR(0) cores. This is slower than
//! lookahead-propagation algorithms but simple, obviously correct, and more
//! than fast enough for the grammar sizes of the evaluation; its cost also
//! mirrors the paper's observation that LALR(1) generation is substantially
//! more expensive than LR(0) generation, which is exactly the trade-off IPG
//! exploits.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ipg_grammar::{Grammar, GrammarAnalysis, SymbolId};

use crate::automaton::StateId;
use crate::item::{Item, Lr1Item};
use crate::table::{Action, ParseTable, TableKind};

/// Sizes observed while constructing an LALR(1) table; the LR(1)-state
/// count illustrates why merging matters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LalrStats {
    /// Number of canonical LR(1) states before merging.
    pub lr1_states: usize,
    /// Number of LALR(1) states after merging (equals the LR(0) state
    /// count).
    pub lalr_states: usize,
}

type Lr1Kernel = BTreeSet<Lr1Item>;

struct Lr1Collection {
    /// Closed item sets.
    states: Vec<Lr1Kernel>,
    /// Transitions between states.
    transitions: Vec<BTreeMap<SymbolId, usize>>,
}

fn closure1(grammar: &Grammar, analysis: &GrammarAnalysis, kernel: &Lr1Kernel) -> Lr1Kernel {
    let mut result = kernel.clone();
    let mut work: Vec<Lr1Item> = kernel.iter().copied().collect();
    while let Some(item) = work.pop() {
        let Some(next) = item.core.next_symbol(grammar) else {
            continue;
        };
        if !grammar.is_nonterminal(next) {
            continue;
        }
        // Lookaheads for the new items: FIRST(β a) where the item is
        // [A ::= α . B β, a].
        let rule = grammar.rule(item.core.rule);
        let beta = &rule.rhs[item.core.dot + 1..];
        let mut lookaheads = analysis.first_of_sequence(beta);
        if analysis.sequence_nullable(beta) {
            lookaheads.insert(item.lookahead);
        }
        for new_rule in grammar.rules_for(next) {
            for &la in &lookaheads {
                let new_item = Lr1Item::start(new_rule.id, la);
                if result.insert(new_item) {
                    work.push(new_item);
                }
            }
        }
    }
    result
}

fn build_lr1_collection(grammar: &Grammar, analysis: &GrammarAnalysis) -> Lr1Collection {
    let start_kernel: Lr1Kernel = grammar
        .rules_for(grammar.start_symbol())
        .map(|r| Lr1Item::start(r.id, grammar.eof_symbol()))
        .collect();
    let start_closed = closure1(grammar, analysis, &start_kernel);

    let mut states = vec![start_closed.clone()];
    let mut index: HashMap<Lr1Kernel, usize> = HashMap::new();
    index.insert(start_closed, 0);
    let mut transitions: Vec<BTreeMap<SymbolId, usize>> = vec![BTreeMap::new()];

    let mut i = 0;
    while i < states.len() {
        // Partition the closed set by the symbol after the dot.
        let mut successors: BTreeMap<SymbolId, Lr1Kernel> = BTreeMap::new();
        for item in &states[i] {
            if let Some(next) = item.core.next_symbol(grammar) {
                successors.entry(next).or_default().insert(item.advance());
            }
        }
        for (symbol, kernel) in successors {
            let closed = closure1(grammar, analysis, &kernel);
            let target = match index.get(&closed) {
                Some(&t) => t,
                None => {
                    let t = states.len();
                    index.insert(closed.clone(), t);
                    states.push(closed);
                    transitions.push(BTreeMap::new());
                    t
                }
            };
            transitions[i].insert(symbol, target);
        }
        i += 1;
    }
    Lr1Collection { states, transitions }
}

fn table_from_collection(
    grammar: &Grammar,
    collection: &Lr1Collection,
    kind: TableKind,
) -> ParseTable {
    let n = collection.states.len();
    let mut actions: Vec<BTreeMap<SymbolId, Vec<Action>>> = vec![BTreeMap::new(); n];
    let mut gotos: Vec<BTreeMap<SymbolId, StateId>> = vec![BTreeMap::new(); n];
    for (i, state) in collection.states.iter().enumerate() {
        for (&symbol, &target) in &collection.transitions[i] {
            if grammar.is_terminal(symbol) {
                actions[i]
                    .entry(symbol)
                    .or_default()
                    .push(Action::Shift(StateId::from_index(target)));
            } else {
                gotos[i].insert(symbol, StateId::from_index(target));
            }
        }
        for item in state {
            if !item.core.is_complete(grammar) {
                continue;
            }
            let rule = grammar.rule(item.core.rule);
            let entry = actions[i].entry(item.lookahead).or_default();
            let action = if rule.lhs == grammar.start_symbol() {
                Action::Accept
            } else {
                Action::Reduce(item.core.rule)
            };
            if !entry.contains(&action) {
                entry.push(action);
            }
        }
    }
    for row in &mut actions {
        for cell in row.values_mut() {
            cell.sort();
            cell.dedup();
        }
    }
    ParseTable::from_rows(kind, StateId(0), grammar, actions, gotos)
}

/// Builds the canonical LR(1) parse table for `grammar`.
pub fn canonical_lr1_table(grammar: &Grammar) -> ParseTable {
    let analysis = GrammarAnalysis::compute(grammar);
    let collection = build_lr1_collection(grammar, &analysis);
    table_from_collection(grammar, &collection, TableKind::Lr1)
}

/// Builds the LALR(1) parse table for `grammar` (the Yacc baseline).
pub fn lalr1_table(grammar: &Grammar) -> ParseTable {
    lalr1_table_with_stats(grammar).0
}

/// Builds the LALR(1) table and reports how many LR(1) states were merged.
pub fn lalr1_table_with_stats(grammar: &Grammar) -> (ParseTable, LalrStats) {
    let analysis = GrammarAnalysis::compute(grammar);
    let collection = build_lr1_collection(grammar, &analysis);

    // Merge states with identical LR(0) cores.
    let core_of = |state: &Lr1Kernel| -> BTreeSet<Item> {
        state.iter().map(|i| i.core).collect()
    };
    let mut core_index: HashMap<BTreeSet<Item>, usize> = HashMap::new();
    let mut merged_of: Vec<usize> = Vec::with_capacity(collection.states.len());
    let mut merged_states: Vec<Lr1Kernel> = Vec::new();
    for state in &collection.states {
        let core = core_of(state);
        let merged = *core_index.entry(core).or_insert_with(|| {
            merged_states.push(Lr1Kernel::new());
            merged_states.len() - 1
        });
        merged_of.push(merged);
        merged_states[merged].extend(state.iter().copied());
    }

    // Rebuild transitions in terms of merged states. Merging states with
    // equal cores maps consistent successors onto each other, so inserting
    // repeatedly is safe.
    let mut merged_transitions: Vec<BTreeMap<SymbolId, usize>> =
        vec![BTreeMap::new(); merged_states.len()];
    for (i, row) in collection.transitions.iter().enumerate() {
        for (&symbol, &target) in row {
            merged_transitions[merged_of[i]].insert(symbol, merged_of[target]);
        }
    }

    let stats = LalrStats {
        lr1_states: collection.states.len(),
        lalr_states: merged_states.len(),
    };
    let merged = Lr1Collection {
        states: merged_states,
        transitions: merged_transitions,
    };
    // The start state must remain state 0: it is the first state processed,
    // so its merged index is 0 by construction.
    debug_assert_eq!(merged_of[0], 0);
    (
        table_from_collection(grammar, &merged, TableKind::Lalr1),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Lr0Automaton;
    use crate::parser::LrParser;
    use crate::table::ParserTables;
    use ipg_grammar::fixtures;

    #[test]
    fn arithmetic_lalr_table_is_deterministic() {
        let g = fixtures::arithmetic();
        let table = lalr1_table(&g);
        assert!(table.is_deterministic());
        assert_eq!(table.kind(), TableKind::Lalr1);
    }

    #[test]
    fn lalr_has_as_many_states_as_lr0() {
        let g = fixtures::arithmetic();
        let (_, stats) = lalr1_table_with_stats(&g);
        let lr0 = Lr0Automaton::build(&g);
        assert_eq!(stats.lalr_states, lr0.num_states());
        assert!(stats.lr1_states >= stats.lalr_states);
    }

    #[test]
    fn canonical_lr1_has_at_least_as_many_states_as_lalr() {
        let g = fixtures::arithmetic();
        let lr1 = canonical_lr1_table(&g);
        let (lalr, stats) = lalr1_table_with_stats(&g);
        assert_eq!(lr1.num_states(), stats.lr1_states);
        assert!(lr1.num_states() >= lalr.num_states());
        assert!(lr1.is_deterministic());
    }

    #[test]
    fn lalr_parses_arithmetic_sentences() {
        let g = fixtures::arithmetic();
        let table = lalr1_table(&g);
        let parser = LrParser::new(&g);
        let tokens: Vec<_> = ["id", "+", "num", "*", "(", "id", ")"]
            .iter()
            .map(|s| g.symbol(s).unwrap())
            .collect();
        assert!(parser.recognize(&table, &tokens).unwrap());
        let bad: Vec<_> = ["id", "+", "+"].iter().map(|s| g.symbol(s).unwrap()).collect();
        assert!(!parser.recognize(&table, &bad).unwrap());
    }

    #[test]
    fn ambiguous_grammar_still_has_conflicts_under_lalr() {
        let g = fixtures::booleans();
        let table = lalr1_table(&g);
        assert!(!table.is_deterministic());
        // But strictly fewer conflict cells than the LR(0) table: reduces
        // are confined to FOLLOW-compatible lookaheads.
        let lr0 = ParseTable::lr0(&Lr0Automaton::build(&g), &g);
        assert!(table.num_action_entries() < lr0.num_action_entries());
    }

    #[test]
    fn lalr_accept_is_reachable() {
        let g = fixtures::arithmetic();
        let table = lalr1_table(&g);
        let id = g.symbol("id").unwrap();
        let e = g.symbol("E").unwrap();
        let start = table.start_state();
        let shifted = match table.actions(start, id).single() {
            Some(Action::Shift(s)) => s,
            other => panic!("expected shift, got {other:?}"),
        };
        assert_ne!(shifted, start);
        assert!(table.goto(start, e).is_some());
    }
}
