//! Parse tables: the tabular ACTION / GOTO representation of a graph of
//! item sets (Fig. 4.1(b)), conflict reporting, and the [`ParserTables`]
//! abstraction shared by every table-driven parser in this repository.
//!
//! The ACTION interface is deliberately *borrowing*: a [`ParserTables`]
//! implementation answers `ACTION(state, symbol)` with an [`ActionsRef`]
//! view into its own storage, so the parser hot loops perform zero heap
//! allocations per query. [`ParseTable`] itself stores its cells as dense,
//! symbol-indexed rows (one flat `Vec` per table) rather than per-state
//! `BTreeMap`s, for the same reason.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use ipg_grammar::{Grammar, GrammarAnalysis, RuleId, SymbolId};

use crate::automaton::{Lr0Automaton, StateId};

/// A single parser action, as returned by the paper's `ACTION` function.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Action {
    /// Push the given state and advance the input.
    Shift(StateId),
    /// Reduce by the given rule and consult GOTO.
    Reduce(RuleId),
    /// The input is a sentence of the language.
    Accept,
}

/// A borrowed view of one ACTION cell: every action possible for a
/// `(state, symbol)` pair, fused into a compact shape. An LR cell holds at
/// most one shift and at most one accept; only reduces can be plural, so a
/// borrowed rule slice plus two scalars represents any cell without
/// allocating.
#[derive(Clone, Copy, Debug, Default)]
pub struct ActionsRef<'a> {
    /// Rules that may be reduced in this cell.
    pub reductions: &'a [RuleId],
    /// Shift target, if the cell shifts.
    pub shift: Option<StateId>,
    /// `true` if the cell accepts the input.
    pub accept: bool,
}

/// The empty cell (an error entry).
pub const EMPTY_ACTIONS: ActionsRef<'static> = ActionsRef {
    reductions: &[],
    shift: None,
    accept: false,
};

impl<'a> ActionsRef<'a> {
    /// Number of actions in the cell.
    pub fn len(&self) -> usize {
        self.reductions.len() + usize::from(self.shift.is_some()) + usize::from(self.accept)
    }

    /// `true` if the cell holds no action (a syntax-error entry).
    pub fn is_empty(&self) -> bool {
        self.reductions.is_empty() && self.shift.is_none() && !self.accept
    }

    /// The single action of a deterministic cell, or `None` when the cell
    /// is empty or conflicted.
    pub fn single(&self) -> Option<Action> {
        match (self.reductions, self.shift, self.accept) {
            ([], Some(s), false) => Some(Action::Shift(s)),
            ([r], None, false) => Some(Action::Reduce(*r)),
            ([], None, true) => Some(Action::Accept),
            _ => None,
        }
    }

    /// `true` if the cell contains the given action.
    pub fn contains(&self, action: Action) -> bool {
        match action {
            Action::Shift(s) => self.shift == Some(s),
            Action::Reduce(r) => self.reductions.contains(&r),
            Action::Accept => self.accept,
        }
    }

    /// Iterates over the actions (reduces first, then shift, then accept).
    pub fn iter(&self) -> ActionsIter<'a> {
        ActionsIter {
            reductions: self.reductions.iter(),
            shift: self.shift,
            accept: self.accept,
        }
    }

    /// Materialises the cell as a vector (cold paths: errors, reports).
    pub fn to_vec(&self) -> Vec<Action> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for ActionsRef<'a> {
    type Item = Action;
    type IntoIter = ActionsIter<'a>;

    fn into_iter(self) -> ActionsIter<'a> {
        self.iter()
    }
}

/// An owned, reusable ACTION cell: the by-value counterpart of
/// [`ActionsRef`].
///
/// The `&self` read path of [`ParserTables`] cannot hand out borrows into
/// shared, concurrently expanded table storage (the storage may be behind a
/// lock whose guard must be released before the call returns), so the
/// parsers own a scratch `ActionCell` and ask the tables to *fill* it via
/// [`ParserTables::actions_into`]. In steady state the buffer's capacity is
/// reused, so a query still performs zero heap allocations — it just copies
/// the (almost always empty or single-element) reduce set.
#[derive(Clone, Debug, Default)]
pub struct ActionCell {
    /// Rules that may be reduced in this cell.
    pub reductions: Vec<RuleId>,
    /// Shift target, if the cell shifts.
    pub shift: Option<StateId>,
    /// `true` if the cell accepts the input.
    pub accept: bool,
}

impl ActionCell {
    /// Resets the cell to the empty (error) entry, keeping its capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.reductions.clear();
        self.shift = None;
        self.accept = false;
    }

    /// Overwrites the cell with the contents of a borrowed view.
    #[inline]
    pub fn fill_from(&mut self, actions: ActionsRef<'_>) {
        self.reductions.clear();
        self.reductions.extend_from_slice(actions.reductions);
        self.shift = actions.shift;
        self.accept = actions.accept;
    }

    /// A borrowed view of the cell (for the shared [`ActionsRef`] helpers).
    #[inline]
    pub fn as_ref(&self) -> ActionsRef<'_> {
        ActionsRef {
            reductions: &self.reductions,
            shift: self.shift,
            accept: self.accept,
        }
    }

    /// Number of actions in the cell.
    pub fn len(&self) -> usize {
        self.as_ref().len()
    }

    /// `true` if the cell holds no action (a syntax-error entry).
    pub fn is_empty(&self) -> bool {
        self.as_ref().is_empty()
    }

    /// The single action of a deterministic cell, or `None` when the cell
    /// is empty or conflicted.
    pub fn single(&self) -> Option<Action> {
        self.as_ref().single()
    }

    /// `true` if the cell contains the given action.
    pub fn contains(&self, action: Action) -> bool {
        self.as_ref().contains(action)
    }

    /// Iterates over the actions (reduces first, then shift, then accept).
    pub fn iter(&self) -> ActionsIter<'_> {
        self.as_ref().iter()
    }

    /// Materialises the cell as a vector (cold paths: errors, reports).
    pub fn to_vec(&self) -> Vec<Action> {
        self.as_ref().to_vec()
    }
}

impl<'a> IntoIterator for &'a ActionCell {
    type Item = Action;
    type IntoIter = ActionsIter<'a>;

    fn into_iter(self) -> ActionsIter<'a> {
        self.iter()
    }
}

/// Iterator over the actions of an [`ActionsRef`].
#[derive(Clone, Debug)]
pub struct ActionsIter<'a> {
    reductions: std::slice::Iter<'a, RuleId>,
    shift: Option<StateId>,
    accept: bool,
}

impl Iterator for ActionsIter<'_> {
    type Item = Action;

    fn next(&mut self) -> Option<Action> {
        if let Some(&rule) = self.reductions.next() {
            return Some(Action::Reduce(rule));
        }
        if let Some(target) = self.shift.take() {
            return Some(Action::Shift(target));
        }
        if self.accept {
            self.accept = false;
            return Some(Action::Accept);
        }
        None
    }
}

/// The source of lookahead information used when a table was constructed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TableKind {
    /// LR(0): reduce actions appear under every terminal.
    Lr0,
    /// SLR(1): reduce actions appear only under FOLLOW(lhs).
    Slr1,
    /// LALR(1): reduce actions appear under the merged LR(1) lookaheads.
    Lalr1,
    /// Canonical LR(1).
    Lr1,
}

impl fmt::Display for TableKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TableKind::Lr0 => "LR(0)",
            TableKind::Slr1 => "SLR(1)",
            TableKind::Lalr1 => "LALR(1)",
            TableKind::Lr1 => "LR(1)",
        };
        f.write_str(s)
    }
}

/// A conflict: a table cell with more than one action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conflict {
    /// State (row) of the conflicting cell.
    pub state: StateId,
    /// Terminal (column) of the conflicting cell.
    pub symbol: SymbolId,
    /// All actions in the cell.
    pub actions: Vec<Action>,
}

impl Conflict {
    /// `true` if the conflict involves a shift and a reduce.
    pub fn is_shift_reduce(&self) -> bool {
        self.actions.iter().any(|a| matches!(a, Action::Shift(_)))
            && self.actions.iter().any(|a| matches!(a, Action::Reduce(_)))
    }

    /// `true` if the conflict involves two different reduces.
    pub fn is_reduce_reduce(&self) -> bool {
        self.actions
            .iter()
            .filter(|a| matches!(a, Action::Reduce(_)))
            .count()
            > 1
    }
}

/// The **read path** shared by all table-driven parsers.
///
/// The deterministic [`crate::parser::LrParser`] and the parallel parsers in
/// `ipg-glr` are written against this trait, so the same driver runs over
/// an eagerly generated [`ParseTable`] *and* over the lazily generated
/// item-set graph of the `ipg` crate.
///
/// Every method takes `&self`: a table is a *shared* object that any number
/// of parsers may query concurrently. Implementations that materialise
/// table contents on demand (the lazy item-set graph) hide their writer
/// behind interior mutability — expanding a missing state is a serialized
/// write, but queries against already-complete states never block each
/// other. The explicit writer side of that split is [`TableExpansion`].
///
/// `actions_into` fills a caller-owned [`ActionCell`] instead of returning
/// a borrow: the query is on the per-token hot path of every parser, and
/// the reusable buffer keeps it allocation-free while letting shared
/// implementations release their internal locks before returning.
pub trait ParserTables {
    /// The state in which parsing starts.
    fn start_state(&self) -> StateId;

    /// The paper's `ACTION(state, symbol)`: fills `out` with the set of
    /// possible actions for `state` with the terminal `symbol` as the
    /// current input symbol.
    fn actions_into(&self, state: StateId, symbol: SymbolId, out: &mut ActionCell);

    /// The paper's `GOTO(state, symbol)`: the successor state after
    /// reducing a rule that delivered the non-terminal `symbol`.
    fn goto(&self, state: StateId, symbol: SymbolId) -> Option<StateId>;

    /// Human-readable description of the table (used in reports).
    fn describe(&self) -> String {
        "parser tables".to_owned()
    }

    /// The grammar version this table handle answers for. Serving layers
    /// that keep several grammar epochs alive at once use this tag to
    /// label every parse with the exact table state it ran against; a
    /// fixed, single-version table reports the version of the grammar it
    /// was built from.
    fn grammar_version(&self) -> u64 {
        0
    }

    /// Convenience for cold paths and tests: the actions of one cell as a
    /// freshly allocated [`ActionCell`]. Hot loops should own a scratch
    /// cell and use [`ParserTables::actions_into`] instead.
    fn actions(&self, state: StateId, symbol: SymbolId) -> ActionCell {
        let mut cell = ActionCell::default();
        self.actions_into(state, symbol, &mut cell);
        cell
    }
}

/// The **write path** of a table: explicit, serialized materialisation.
///
/// [`ParserTables`] is the `&self` read interface; this companion trait is
/// the explicit `ensure`/expansion entry point for tables whose contents
/// appear on demand. For an eagerly generated [`ParseTable`] both methods
/// are no-ops; for the lazy tables of the `ipg` crate they funnel into the
/// item-set graph's serialized writer.
pub trait TableExpansion {
    /// Ensures `state` is fully materialised (expanded, with its dense row
    /// published), so that subsequent read-path queries for it are pure.
    fn ensure_state(&self, state: StateId);

    /// Fully materialises the table (turns lazy generation into eager
    /// generation). Used to warm a table before serving traffic.
    fn warm(&self) {}
}

/// One dense table cell. `target_plus1` holds shift targets in terminal
/// columns and GOTO targets in non-terminal columns (0 = none); reduces
/// live in a per-table rule pool addressed by `[red_start, red_start+red_len)`.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
struct Cell {
    target_plus1: u32,
    red_start: u32,
    red_len: u32,
    accept: bool,
}

/// A fully materialised ACTION/GOTO table with dense symbol-indexed rows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParseTable {
    kind: TableKind,
    start: StateId,
    num_states: usize,
    /// Version of the grammar the table was built from (see
    /// [`ParserTables::grammar_version`]).
    grammar_version: u64,
    /// Row stride: number of symbols interned when the table was built.
    num_symbols: usize,
    /// `true` for terminal columns (ACTION), `false` for non-terminal
    /// columns (GOTO).
    terminal_mask: Vec<bool>,
    /// `num_states * num_symbols` cells, row-major.
    cells: Vec<Cell>,
    /// Flattened reduce sets referenced by the cells.
    reduction_pool: Vec<RuleId>,
}

impl ParseTable {
    /// Builds an LR(0) table from an eagerly generated automaton: reduce
    /// actions are entered under *every* terminal (including `$`), exactly
    /// as in Fig. 4.1(b).
    pub fn lr0(automaton: &Lr0Automaton, grammar: &Grammar) -> Self {
        Self::from_automaton(automaton, grammar, TableKind::Lr0, |_rule, _terminal| true)
    }

    /// Builds an SLR(1) table: reduce `A ::= β` only under terminals in
    /// FOLLOW(A).
    pub fn slr1(automaton: &Lr0Automaton, grammar: &Grammar) -> Self {
        let analysis = GrammarAnalysis::compute(grammar);
        Self::from_automaton(automaton, grammar, TableKind::Slr1, |rule, terminal| {
            analysis.follow(grammar.rule(rule).lhs).contains(&terminal)
        })
    }

    fn empty(kind: TableKind, start: StateId, num_states: usize, grammar: &Grammar) -> Self {
        let num_symbols = grammar.symbols().len();
        let terminal_mask = (0..num_symbols)
            .map(|i| grammar.is_terminal(SymbolId::from_index(i)))
            .collect();
        ParseTable {
            kind,
            start,
            num_states,
            grammar_version: grammar.version(),
            num_symbols,
            terminal_mask,
            cells: vec![Cell::default(); num_states * num_symbols],
            reduction_pool: Vec::new(),
        }
    }

    #[inline]
    fn cell_index(&self, state: StateId, symbol: SymbolId) -> Option<usize> {
        let (s, c) = (state.index(), symbol.index());
        (s < self.num_states && c < self.num_symbols).then(|| s * self.num_symbols + c)
    }

    fn from_automaton(
        automaton: &Lr0Automaton,
        grammar: &Grammar,
        kind: TableKind,
        mut reduce_on: impl FnMut(RuleId, SymbolId) -> bool,
    ) -> Self {
        let terminals: Vec<SymbolId> = grammar.symbols().terminals().collect();
        let mut table = Self::empty(kind, automaton.start_state(), automaton.num_states(), grammar);
        for state in automaton.states() {
            for (&symbol, &target) in &state.transitions {
                let i = table.cell_index(state.id, symbol).expect("symbol in range");
                table.cells[i].target_plus1 = target.0 + 1;
            }
            for &terminal in &terminals {
                let i = table.cell_index(state.id, terminal).expect("terminal in range");
                let red_start = table.reduction_pool.len() as u32;
                table.reduction_pool.extend(
                    state
                        .reductions
                        .iter()
                        .copied()
                        .filter(|&rule| reduce_on(rule, terminal)),
                );
                let red_len = table.reduction_pool.len() as u32 - red_start;
                if red_len > 0 {
                    table.cells[i].red_start = red_start;
                    table.cells[i].red_len = red_len;
                }
            }
            if state.accepting {
                let i = table
                    .cell_index(state.id, grammar.eof_symbol())
                    .expect("eof in range");
                table.cells[i].accept = true;
            }
        }
        table
    }

    /// Creates a table from sparse rows; used by the LALR(1)/LR(1)
    /// constructions in [`crate::lalr`].
    pub(crate) fn from_rows(
        kind: TableKind,
        start: StateId,
        grammar: &Grammar,
        actions: Vec<BTreeMap<SymbolId, Vec<Action>>>,
        gotos: Vec<BTreeMap<SymbolId, StateId>>,
    ) -> Self {
        debug_assert_eq!(actions.len(), gotos.len());
        let mut table = Self::empty(kind, start, actions.len(), grammar);
        for (s, row) in actions.iter().enumerate() {
            for (&symbol, cell_actions) in row {
                let i = table
                    .cell_index(StateId::from_index(s), symbol)
                    .expect("symbol in range");
                let red_start = table.reduction_pool.len() as u32;
                for action in cell_actions {
                    match *action {
                        Action::Shift(target) => table.cells[i].target_plus1 = target.0 + 1,
                        Action::Reduce(rule) => table.reduction_pool.push(rule),
                        Action::Accept => table.cells[i].accept = true,
                    }
                }
                let red_len = table.reduction_pool.len() as u32 - red_start;
                if red_len > 0 {
                    table.cells[i].red_start = red_start;
                    table.cells[i].red_len = red_len;
                }
            }
        }
        for (s, row) in gotos.iter().enumerate() {
            for (&symbol, &target) in row {
                let i = table
                    .cell_index(StateId::from_index(s), symbol)
                    .expect("symbol in range");
                table.cells[i].target_plus1 = target.0 + 1;
            }
        }
        table
    }

    /// The lookahead discipline used to build this table.
    pub fn kind(&self) -> TableKind {
        self.kind
    }

    /// Number of states (rows).
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Total number of ACTION entries (counting every action in every cell).
    pub fn num_action_entries(&self) -> usize {
        self.for_each_action_cell_sum(|actions| actions.len())
    }

    /// Total number of GOTO entries.
    pub fn num_goto_entries(&self) -> usize {
        let mut total = 0;
        for s in 0..self.num_states {
            for c in 0..self.num_symbols {
                if !self.terminal_mask[c] && self.cells[s * self.num_symbols + c].target_plus1 != 0
                {
                    total += 1;
                }
            }
        }
        total
    }

    fn for_each_action_cell_sum(&self, mut f: impl FnMut(ActionsRef<'_>) -> usize) -> usize {
        let mut total = 0;
        for s in 0..self.num_states {
            for c in 0..self.num_symbols {
                if self.terminal_mask[c] {
                    total += f(self.actions_at(
                        StateId::from_index(s),
                        SymbolId::from_index(c),
                    ));
                }
            }
        }
        total
    }

    /// The actions of one cell (empty means error). Allocation-free.
    pub fn actions_at(&self, state: StateId, symbol: SymbolId) -> ActionsRef<'_> {
        let Some(i) = self.cell_index(state, symbol) else {
            return EMPTY_ACTIONS;
        };
        if !self.terminal_mask[symbol.index()] {
            return EMPTY_ACTIONS;
        }
        let cell = self.cells[i];
        ActionsRef {
            reductions: &self.reduction_pool
                [cell.red_start as usize..(cell.red_start + cell.red_len) as usize],
            shift: (cell.target_plus1 != 0).then(|| StateId(cell.target_plus1 - 1)),
            accept: cell.accept,
        }
    }

    /// The GOTO entry of a cell.
    pub fn goto_at(&self, state: StateId, symbol: SymbolId) -> Option<StateId> {
        let i = self.cell_index(state, symbol)?;
        if self.terminal_mask[symbol.index()] {
            return None;
        }
        let t = self.cells[i].target_plus1;
        (t != 0).then(|| StateId(t - 1))
    }

    /// All conflicting cells.
    pub fn conflicts(&self) -> Vec<Conflict> {
        let mut out = Vec::new();
        for s in 0..self.num_states {
            for c in 0..self.num_symbols {
                if !self.terminal_mask[c] {
                    continue;
                }
                let state = StateId::from_index(s);
                let symbol = SymbolId::from_index(c);
                let cell = self.actions_at(state, symbol);
                if cell.len() > 1 {
                    out.push(Conflict {
                        state,
                        symbol,
                        actions: cell.to_vec(),
                    });
                }
            }
        }
        out
    }

    /// `true` if no cell holds more than one action, i.e. the table can be
    /// used by a deterministic LR parser.
    pub fn is_deterministic(&self) -> bool {
        for s in 0..self.num_states {
            for c in 0..self.num_symbols {
                if self.terminal_mask[c]
                    && self
                        .actions_at(StateId::from_index(s), SymbolId::from_index(c))
                        .len()
                        > 1
                {
                    return false;
                }
            }
        }
        true
    }

    /// Renders the table in the style of Fig. 4.1(b): one row per state,
    /// one column per terminal (ACTION) and non-terminal (GOTO).
    pub fn render(&self, grammar: &Grammar) -> String {
        let terminals: Vec<SymbolId> = grammar.symbols().terminals().collect();
        let nonterminals: Vec<SymbolId> = grammar
            .symbols()
            .nonterminals()
            .filter(|&nt| nt != grammar.start_symbol())
            .collect();

        let mut out = String::new();
        out.push_str(&format!("{} parse table\n", self.kind));
        out.push_str("state |");
        for &t in &terminals {
            out.push_str(&format!(" {:>8}", grammar.name(t)));
        }
        out.push_str(" |");
        for &nt in &nonterminals {
            out.push_str(&format!(" {:>4}", grammar.name(nt)));
        }
        out.push('\n');
        for i in 0..self.num_states {
            let state = StateId::from_index(i);
            out.push_str(&format!("{:>5} |", i));
            for &t in &terminals {
                let cell = self
                    .actions_at(state, t)
                    .iter()
                    .map(render_action)
                    .collect::<Vec<_>>()
                    .join("/");
                out.push_str(&format!(" {cell:>8}"));
            }
            out.push_str(" |");
            for &nt in &nonterminals {
                let cell = self
                    .goto_at(state, nt)
                    .map(|s| s.to_string())
                    .unwrap_or_default();
                out.push_str(&format!(" {cell:>4}"));
            }
            out.push('\n');
        }
        out
    }
}

fn render_action(action: Action) -> String {
    match action {
        Action::Shift(s) => format!("s{}", s.0),
        Action::Reduce(r) => format!("r{}", r.index()),
        Action::Accept => "acc".to_owned(),
    }
}

impl ParserTables for ParseTable {
    fn start_state(&self) -> StateId {
        self.start
    }

    fn actions_into(&self, state: StateId, symbol: SymbolId, out: &mut ActionCell) {
        out.fill_from(self.actions_at(state, symbol));
    }

    fn goto(&self, state: StateId, symbol: SymbolId) -> Option<StateId> {
        self.goto_at(state, symbol)
    }

    fn describe(&self) -> String {
        format!("{} table with {} states", self.kind, self.num_states())
    }

    fn grammar_version(&self) -> u64 {
        self.grammar_version
    }
}

impl TableExpansion for ParseTable {
    /// An eager table is always fully materialised.
    fn ensure_state(&self, _state: StateId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;

    fn booleans_lr0() -> (ipg_grammar::Grammar, ParseTable) {
        let g = fixtures::booleans();
        let a = Lr0Automaton::build(&g);
        let t = ParseTable::lr0(&a, &g);
        (g, t)
    }

    #[test]
    fn booleans_lr0_table_shape() {
        let (g, t) = booleans_lr0();
        assert_eq!(t.num_states(), 8);
        assert_eq!(t.kind(), TableKind::Lr0);
        // Fig. 4.1(b): the LR(0) table of the (ambiguous) Booleans grammar
        // has shift/reduce conflicts in the states after `B or B` / `B and B`.
        assert!(!t.is_deterministic());
        let conflicts = t.conflicts();
        assert!(!conflicts.is_empty());
        assert!(conflicts.iter().all(Conflict::is_shift_reduce));
        assert!(conflicts.iter().all(|c| !c.is_reduce_reduce()));
        assert!(t.num_action_entries() > t.num_states());
        assert!(t.num_goto_entries() >= 3);
        let _ = g;
    }

    #[test]
    fn start_state_shifts_on_true() {
        let (g, t) = booleans_lr0();
        let tt = g.symbol("true").unwrap();
        let actions = t.actions_at(t.start_state(), tt);
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions.single(), Some(Action::Shift(_))));
    }

    #[test]
    fn accept_appears_under_eof() {
        let (g, t) = booleans_lr0();
        let b = g.symbol("B").unwrap();
        let after_b = t.goto_at(t.start_state(), b).unwrap();
        let actions = t.actions_at(after_b, g.eof_symbol());
        assert!(actions.contains(Action::Accept));
        assert!(actions.iter().any(|a| a == Action::Accept));
    }

    #[test]
    fn error_cells_are_empty() {
        let (g, t) = booleans_lr0();
        let or = g.symbol("or").unwrap();
        assert!(t.actions_at(t.start_state(), or).is_empty());
        assert_eq!(t.goto_at(t.start_state(), g.start_symbol()), None);
    }

    #[test]
    fn queries_with_unknown_symbols_are_error_cells() {
        // Symbols interned after the table was built fall outside the dense
        // rows; they must read as error cells, not out-of-bounds panics.
        let (mut g, t) = booleans_lr0();
        let new_terminal = g.terminal("brand-new");
        assert!(t.actions_at(t.start_state(), new_terminal).is_empty());
        assert_eq!(t.goto_at(t.start_state(), new_terminal), None);
        let b = g.symbol("B").unwrap();
        assert_eq!(t.goto_at(StateId::from_index(9999), b), None);
    }

    #[test]
    fn slr_table_of_arithmetic_is_deterministic() {
        let g = fixtures::arithmetic();
        let a = Lr0Automaton::build(&g);
        let lr0 = ParseTable::lr0(&a, &g);
        let slr = ParseTable::slr1(&a, &g);
        // The arithmetic grammar is not LR(0) but is SLR(1).
        assert!(!lr0.is_deterministic());
        assert!(slr.is_deterministic());
        assert_eq!(slr.kind(), TableKind::Slr1);
        assert!(slr.num_action_entries() < lr0.num_action_entries());
    }

    #[test]
    fn parser_tables_trait_round_trip() {
        let (g, t) = booleans_lr0();
        let tt = g.symbol("true").unwrap();
        let b = g.symbol("B").unwrap();
        let start = <ParseTable as ParserTables>::start_state(&t);
        assert_eq!(start, StateId(0));
        assert_eq!(t.actions(start, tt).len(), 1);
        assert!(t.goto(start, b).is_some());
        assert!(t.describe().contains("LR(0)"));
        // The read path is `&self`: two borrows may query concurrently.
        let (a, b2) = (&t, &t);
        assert_eq!(a.actions(start, tt).single(), b2.actions(start, tt).single());
        // The expansion entry point is a no-op for an eager table.
        t.ensure_state(start);
        t.warm();
    }

    #[test]
    fn action_cell_reuse_and_helpers() {
        let (g, t) = booleans_lr0();
        let tt = g.symbol("true").unwrap();
        let or = g.symbol("or").unwrap();
        let mut cell = ActionCell::default();
        t.actions_into(t.start_state(), tt, &mut cell);
        assert_eq!(cell.len(), 1);
        assert!(matches!(cell.single(), Some(Action::Shift(_))));
        assert!(cell.contains(cell.single().unwrap()));
        assert_eq!(cell.iter().count(), 1);
        assert_eq!((&cell).into_iter().count(), 1);
        // Refilling with an error cell clears the previous contents.
        t.actions_into(t.start_state(), or, &mut cell);
        assert!(cell.is_empty());
        assert!(cell.to_vec().is_empty());
        cell.clear();
        assert!(cell.is_empty());
    }

    #[test]
    fn actions_ref_iteration_order_and_helpers() {
        let reds = [ipg_grammar::RuleId::from_index(3)];
        let cell = ActionsRef {
            reductions: &reds,
            shift: Some(StateId(7)),
            accept: true,
        };
        assert_eq!(cell.len(), 3);
        assert!(!cell.is_empty());
        assert_eq!(cell.single(), None);
        let collected = cell.to_vec();
        assert_eq!(
            collected,
            vec![
                Action::Reduce(ipg_grammar::RuleId::from_index(3)),
                Action::Shift(StateId(7)),
                Action::Accept
            ]
        );
        assert!(EMPTY_ACTIONS.is_empty());
        assert_eq!(EMPTY_ACTIONS.single(), None);
    }

    #[test]
    fn render_produces_rows_for_every_state() {
        let (g, t) = booleans_lr0();
        let text = t.render(&g);
        assert!(text.contains("LR(0) parse table"));
        assert!(text.contains("acc"));
        assert_eq!(text.lines().count(), 2 + t.num_states());
    }

    #[test]
    fn table_kind_display() {
        assert_eq!(TableKind::Lalr1.to_string(), "LALR(1)");
        assert_eq!(TableKind::Lr0.to_string(), "LR(0)");
    }
}
