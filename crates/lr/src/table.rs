//! Parse tables: the tabular ACTION / GOTO representation of a graph of
//! item sets (Fig. 4.1(b)), conflict reporting, and the [`ParserTables`]
//! abstraction shared by every table-driven parser in this repository.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use ipg_grammar::{Grammar, GrammarAnalysis, RuleId, SymbolId};

use crate::automaton::{Lr0Automaton, StateId};

/// A single parser action, as returned by the paper's `ACTION` function.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Action {
    /// Push the given state and advance the input.
    Shift(StateId),
    /// Reduce by the given rule and consult GOTO.
    Reduce(RuleId),
    /// The input is a sentence of the language.
    Accept,
}

/// The source of lookahead information used when a table was constructed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TableKind {
    /// LR(0): reduce actions appear under every terminal.
    Lr0,
    /// SLR(1): reduce actions appear only under FOLLOW(lhs).
    Slr1,
    /// LALR(1): reduce actions appear under the merged LR(1) lookaheads.
    Lalr1,
    /// Canonical LR(1).
    Lr1,
}

impl fmt::Display for TableKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TableKind::Lr0 => "LR(0)",
            TableKind::Slr1 => "SLR(1)",
            TableKind::Lalr1 => "LALR(1)",
            TableKind::Lr1 => "LR(1)",
        };
        f.write_str(s)
    }
}

/// A conflict: a table cell with more than one action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conflict {
    /// State (row) of the conflicting cell.
    pub state: StateId,
    /// Terminal (column) of the conflicting cell.
    pub symbol: SymbolId,
    /// All actions in the cell.
    pub actions: Vec<Action>,
}

impl Conflict {
    /// `true` if the conflict involves a shift and a reduce.
    pub fn is_shift_reduce(&self) -> bool {
        self.actions.iter().any(|a| matches!(a, Action::Shift(_)))
            && self.actions.iter().any(|a| matches!(a, Action::Reduce(_)))
    }

    /// `true` if the conflict involves two different reduces.
    pub fn is_reduce_reduce(&self) -> bool {
        self.actions
            .iter()
            .filter(|a| matches!(a, Action::Reduce(_)))
            .count()
            > 1
    }
}

/// Access interface shared by all table-driven parsers.
///
/// The deterministic [`crate::parser::LrParser`] and the parallel parser in
/// `ipg-glr` are written against this trait, so the same driver runs over
/// an eagerly generated [`ParseTable`] *and* over the lazily generated
/// item-set graph of the `ipg` crate — whose `actions` implementation
/// expands item sets on demand, which is why the methods take `&mut self`.
pub trait ParserTables {
    /// The state in which parsing starts.
    fn start_state(&self) -> StateId;

    /// The paper's `ACTION(state, symbol)`: the set of possible actions for
    /// `state` with the terminal `symbol` as the current input symbol.
    fn actions(&mut self, state: StateId, symbol: SymbolId) -> Vec<Action>;

    /// The paper's `GOTO(state, symbol)`: the successor state after
    /// reducing a rule that delivered the non-terminal `symbol`.
    fn goto(&mut self, state: StateId, symbol: SymbolId) -> Option<StateId>;

    /// Human-readable description of the table (used in reports).
    fn describe(&self) -> String {
        "parser tables".to_owned()
    }
}

/// A fully materialised ACTION/GOTO table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParseTable {
    kind: TableKind,
    start: StateId,
    /// `actions[state][terminal] -> actions` (sparse, ordered for
    /// deterministic rendering).
    actions: Vec<BTreeMap<SymbolId, Vec<Action>>>,
    /// `gotos[state][nonterminal] -> state`.
    gotos: Vec<BTreeMap<SymbolId, StateId>>,
}

impl ParseTable {
    /// Builds an LR(0) table from an eagerly generated automaton: reduce
    /// actions are entered under *every* terminal (including `$`), exactly
    /// as in Fig. 4.1(b).
    pub fn lr0(automaton: &Lr0Automaton, grammar: &Grammar) -> Self {
        Self::from_automaton(automaton, grammar, TableKind::Lr0, |_rule, _terminal| true)
    }

    /// Builds an SLR(1) table: reduce `A ::= β` only under terminals in
    /// FOLLOW(A).
    pub fn slr1(automaton: &Lr0Automaton, grammar: &Grammar) -> Self {
        let analysis = GrammarAnalysis::compute(grammar);
        Self::from_automaton(automaton, grammar, TableKind::Slr1, |rule, terminal| {
            analysis.follow(grammar.rule(rule).lhs).contains(&terminal)
        })
    }

    fn from_automaton(
        automaton: &Lr0Automaton,
        grammar: &Grammar,
        kind: TableKind,
        mut reduce_on: impl FnMut(RuleId, SymbolId) -> bool,
    ) -> Self {
        let terminals: Vec<SymbolId> = grammar.symbols().terminals().collect();
        let mut actions = Vec::with_capacity(automaton.num_states());
        let mut gotos = Vec::with_capacity(automaton.num_states());
        for state in automaton.states() {
            let mut row: BTreeMap<SymbolId, Vec<Action>> = BTreeMap::new();
            let mut goto_row = BTreeMap::new();
            for (&symbol, &target) in &state.transitions {
                if grammar.is_terminal(symbol) {
                    row.entry(symbol).or_default().push(Action::Shift(target));
                } else {
                    goto_row.insert(symbol, target);
                }
            }
            for &rule in &state.reductions {
                for &terminal in &terminals {
                    if reduce_on(rule, terminal) {
                        row.entry(terminal).or_default().push(Action::Reduce(rule));
                    }
                }
            }
            if state.accepting {
                row.entry(grammar.eof_symbol())
                    .or_default()
                    .push(Action::Accept);
            }
            actions.push(row);
            gotos.push(goto_row);
        }
        ParseTable {
            kind,
            start: automaton.start_state(),
            actions,
            gotos,
        }
    }

    /// Creates a table directly from rows; used by the LALR(1)/LR(1)
    /// constructions in [`crate::lalr`].
    pub(crate) fn from_rows(
        kind: TableKind,
        start: StateId,
        actions: Vec<BTreeMap<SymbolId, Vec<Action>>>,
        gotos: Vec<BTreeMap<SymbolId, StateId>>,
    ) -> Self {
        ParseTable {
            kind,
            start,
            actions,
            gotos,
        }
    }

    /// The lookahead discipline used to build this table.
    pub fn kind(&self) -> TableKind {
        self.kind
    }

    /// Number of states (rows).
    pub fn num_states(&self) -> usize {
        self.actions.len()
    }

    /// Total number of ACTION entries (counting every action in every cell).
    pub fn num_action_entries(&self) -> usize {
        self.actions
            .iter()
            .map(|row| row.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Total number of GOTO entries.
    pub fn num_goto_entries(&self) -> usize {
        self.gotos.iter().map(BTreeMap::len).sum()
    }

    /// The actions of one cell (empty slice means error).
    pub fn actions_at(&self, state: StateId, symbol: SymbolId) -> &[Action] {
        self.actions[state.index()]
            .get(&symbol)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The GOTO entry of a cell.
    pub fn goto_at(&self, state: StateId, symbol: SymbolId) -> Option<StateId> {
        self.gotos[state.index()].get(&symbol).copied()
    }

    /// All conflicting cells.
    pub fn conflicts(&self) -> Vec<Conflict> {
        let mut out = Vec::new();
        for (i, row) in self.actions.iter().enumerate() {
            for (&symbol, cell) in row {
                if cell.len() > 1 {
                    out.push(Conflict {
                        state: StateId::from_index(i),
                        symbol,
                        actions: cell.clone(),
                    });
                }
            }
        }
        out
    }

    /// `true` if no cell holds more than one action, i.e. the table can be
    /// used by a deterministic LR parser.
    pub fn is_deterministic(&self) -> bool {
        self.actions
            .iter()
            .all(|row| row.values().all(|cell| cell.len() <= 1))
    }

    /// Renders the table in the style of Fig. 4.1(b): one row per state,
    /// one column per terminal (ACTION) and non-terminal (GOTO).
    pub fn render(&self, grammar: &Grammar) -> String {
        let terminals: Vec<SymbolId> = grammar.symbols().terminals().collect();
        let nonterminals: Vec<SymbolId> = grammar
            .symbols()
            .nonterminals()
            .filter(|&nt| nt != grammar.start_symbol())
            .collect();

        let mut out = String::new();
        out.push_str(&format!("{} parse table\n", self.kind));
        out.push_str("state |");
        for &t in &terminals {
            out.push_str(&format!(" {:>8}", grammar.name(t)));
        }
        out.push_str(" |");
        for &nt in &nonterminals {
            out.push_str(&format!(" {:>4}", grammar.name(nt)));
        }
        out.push('\n');
        for (i, row) in self.actions.iter().enumerate() {
            out.push_str(&format!("{:>5} |", i));
            for &t in &terminals {
                let cell = row
                    .get(&t)
                    .map(|actions| {
                        actions
                            .iter()
                            .map(|a| render_action(*a))
                            .collect::<Vec<_>>()
                            .join("/")
                    })
                    .unwrap_or_default();
                out.push_str(&format!(" {cell:>8}"));
            }
            out.push_str(" |");
            for &nt in &nonterminals {
                let cell = self.gotos[i]
                    .get(&nt)
                    .map(|s| s.to_string())
                    .unwrap_or_default();
                out.push_str(&format!(" {cell:>4}"));
            }
            out.push('\n');
        }
        out
    }
}

fn render_action(action: Action) -> String {
    match action {
        Action::Shift(s) => format!("s{}", s.0),
        Action::Reduce(r) => format!("r{}", r.index()),
        Action::Accept => "acc".to_owned(),
    }
}

impl ParserTables for ParseTable {
    fn start_state(&self) -> StateId {
        self.start
    }

    fn actions(&mut self, state: StateId, symbol: SymbolId) -> Vec<Action> {
        self.actions_at(state, symbol).to_vec()
    }

    fn goto(&mut self, state: StateId, symbol: SymbolId) -> Option<StateId> {
        self.goto_at(state, symbol)
    }

    fn describe(&self) -> String {
        format!("{} table with {} states", self.kind, self.num_states())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;

    fn booleans_lr0() -> (ipg_grammar::Grammar, ParseTable) {
        let g = fixtures::booleans();
        let a = Lr0Automaton::build(&g);
        let t = ParseTable::lr0(&a, &g);
        (g, t)
    }

    #[test]
    fn booleans_lr0_table_shape() {
        let (g, t) = booleans_lr0();
        assert_eq!(t.num_states(), 8);
        assert_eq!(t.kind(), TableKind::Lr0);
        // Fig. 4.1(b): the LR(0) table of the (ambiguous) Booleans grammar
        // has shift/reduce conflicts in the states after `B or B` / `B and B`.
        assert!(!t.is_deterministic());
        let conflicts = t.conflicts();
        assert!(!conflicts.is_empty());
        assert!(conflicts.iter().all(Conflict::is_shift_reduce));
        assert!(conflicts.iter().all(|c| !c.is_reduce_reduce()));
        assert!(t.num_action_entries() > t.num_states());
        assert!(t.num_goto_entries() >= 3);
        let _ = g;
    }

    #[test]
    fn start_state_shifts_on_true() {
        let (g, t) = booleans_lr0();
        let tt = g.symbol("true").unwrap();
        let actions = t.actions_at(t.start_state(), tt);
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], Action::Shift(_)));
    }

    #[test]
    fn accept_appears_under_eof() {
        let (g, t) = booleans_lr0();
        let b = g.symbol("B").unwrap();
        let after_b = t.goto_at(t.start_state(), b).unwrap();
        let actions = t.actions_at(after_b, g.eof_symbol());
        assert!(actions.contains(&Action::Accept));
    }

    #[test]
    fn error_cells_are_empty() {
        let (g, t) = booleans_lr0();
        let or = g.symbol("or").unwrap();
        assert!(t.actions_at(t.start_state(), or).is_empty());
        assert_eq!(t.goto_at(t.start_state(), g.start_symbol()), None);
    }

    #[test]
    fn slr_table_of_arithmetic_is_deterministic() {
        let g = fixtures::arithmetic();
        let a = Lr0Automaton::build(&g);
        let lr0 = ParseTable::lr0(&a, &g);
        let slr = ParseTable::slr1(&a, &g);
        // The arithmetic grammar is not LR(0) but is SLR(1).
        assert!(!lr0.is_deterministic());
        assert!(slr.is_deterministic());
        assert_eq!(slr.kind(), TableKind::Slr1);
        assert!(slr.num_action_entries() < lr0.num_action_entries());
    }

    #[test]
    fn parser_tables_trait_round_trip() {
        let (g, mut t) = booleans_lr0();
        let tt = g.symbol("true").unwrap();
        let b = g.symbol("B").unwrap();
        let start = <ParseTable as ParserTables>::start_state(&t);
        assert_eq!(start, StateId(0));
        assert_eq!(t.actions(start, tt).len(), 1);
        assert!(t.goto(start, b).is_some());
        assert!(t.describe().contains("LR(0)"));
    }

    #[test]
    fn render_produces_rows_for_every_state() {
        let (g, t) = booleans_lr0();
        let text = t.render(&g);
        assert!(text.contains("LR(0) parse table"));
        assert!(text.contains("acc"));
        assert_eq!(text.lines().count(), 2 + t.num_states());
    }

    #[test]
    fn table_kind_display() {
        assert_eq!(TableKind::Lalr1.to_string(), "LALR(1)");
        assert_eq!(TableKind::Lr0.to_string(), "LR(0)");
    }
}
