//! Sets of LR(0) items, closure and goto — the building blocks of the
//! "graph of item sets" from §4 of the paper.

use std::collections::{BTreeMap, BTreeSet};

use ipg_grammar::{Grammar, SymbolId};

use crate::item::Item;

/// A kernel (or closure) of LR(0) items, kept sorted so that kernels can be
/// compared for equality when searching `Itemsets` for an existing state.
pub type ItemSet = BTreeSet<Item>;

/// Computes the closure of `kernel` under the current grammar, exactly as
/// the paper's `CLOSURE`: whenever an item `A ::= α . B β` is in the
/// closure and `B ::= γ` is a rule, `B ::= . γ` is added.
pub fn closure(grammar: &Grammar, kernel: &ItemSet) -> ItemSet {
    let mut result = kernel.clone();
    let mut work: Vec<Item> = kernel.iter().copied().collect();
    while let Some(item) = work.pop() {
        let Some(next) = item.next_symbol(grammar) else {
            continue;
        };
        if !grammar.is_nonterminal(next) {
            continue;
        }
        for rule in grammar.rules_for(next) {
            let new_item = Item::start(rule.id);
            if result.insert(new_item) {
                work.push(new_item);
            }
        }
    }
    result
}

/// Partitions the items of a closed item set by the symbol after their dot,
/// producing the kernels of the successor states: the paper's `EXPAND`
/// phrase "this extended kernel is partitioned in subsets of rules having
/// the same symbol S after the dot ... the associated subset is transformed
/// into a new kernel by moving the dot over the S".
///
/// The returned map is ordered by symbol id so state numbering is
/// deterministic.
pub fn partition_by_next_symbol(
    grammar: &Grammar,
    closed: &ItemSet,
) -> BTreeMap<SymbolId, ItemSet> {
    let mut map: BTreeMap<SymbolId, ItemSet> = BTreeMap::new();
    for item in closed {
        if let Some(next) = item.next_symbol(grammar) {
            map.entry(next).or_default().insert(item.advance());
        }
    }
    map
}

/// Returns the completed items of a closed item set (dot at the end).
pub fn completed_items(grammar: &Grammar, closed: &ItemSet) -> Vec<Item> {
    closed
        .iter()
        .copied()
        .filter(|i| i.is_complete(grammar))
        .collect()
}

/// The kernel of the start state: every `START ::= . β` for the active
/// rules of the grammar.
pub fn start_kernel(grammar: &Grammar) -> ItemSet {
    grammar
        .rules_for(grammar.start_symbol())
        .map(|r| Item::start(r.id))
        .collect()
}

/// Computes the GOTO set of a *closed* item set for `symbol` directly
/// (closure of the moved kernel). Convenience used by tests and by the
/// Earley-style comparisons; the generators use
/// [`partition_by_next_symbol`] instead to build all successors at once.
pub fn goto_set(grammar: &Grammar, closed: &ItemSet, symbol: SymbolId) -> ItemSet {
    let kernel: ItemSet = closed
        .iter()
        .filter(|i| i.next_symbol(grammar) == Some(symbol))
        .map(|i| i.advance())
        .collect();
    closure(grammar, &kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;

    fn names(grammar: &Grammar, set: &ItemSet) -> Vec<String> {
        set.iter().map(|i| i.display(grammar).to_string()).collect()
    }

    #[test]
    fn closure_of_start_kernel_matches_fig_51b() {
        // Fig. 5.1(b): the start state of the Booleans contains the START
        // rule plus all four B rules with the dot at the start.
        let g = fixtures::booleans();
        let kernel = start_kernel(&g);
        assert_eq!(kernel.len(), 1);
        let closed = closure(&g, &kernel);
        assert_eq!(closed.len(), 5);
        let rendered = names(&g, &closed);
        assert!(rendered.contains(&"START ::= . B".to_owned()));
        assert!(rendered.contains(&"B ::= . true".to_owned()));
        assert!(rendered.contains(&"B ::= . B or B".to_owned()));
    }

    #[test]
    fn closure_is_idempotent() {
        let g = fixtures::booleans();
        let closed = closure(&g, &start_kernel(&g));
        assert_eq!(closure(&g, &closed), closed);
    }

    #[test]
    fn partition_groups_by_next_symbol() {
        let g = fixtures::booleans();
        let closed = closure(&g, &start_kernel(&g));
        let parts = partition_by_next_symbol(&g, &closed);
        let b = g.symbol("B").unwrap();
        let t = g.symbol("true").unwrap();
        let f = g.symbol("false").unwrap();
        // Successors on B, true and false — exactly the three arrows out of
        // state 0 in Fig. 4.1(c).
        assert_eq!(parts.len(), 3);
        assert!(parts.contains_key(&b));
        assert!(parts.contains_key(&t));
        assert!(parts.contains_key(&f));
        // The B successor contains three items: START ::= B ., B ::= B . or B,
        // B ::= B . and B.
        assert_eq!(parts[&b].len(), 3);
        assert_eq!(parts[&t].len(), 1);
    }

    #[test]
    fn completed_items_are_detected() {
        let g = fixtures::booleans();
        let closed = closure(&g, &start_kernel(&g));
        assert!(completed_items(&g, &closed).is_empty());
        let b = g.symbol("B").unwrap();
        let after_b = goto_set(&g, &closed, b);
        let done = completed_items(&g, &after_b);
        assert_eq!(done.len(), 1); // START ::= B .
        assert_eq!(g.rule(done[0].rule).lhs, g.start_symbol());
    }

    #[test]
    fn goto_set_on_terminal() {
        let g = fixtures::booleans();
        let closed = closure(&g, &start_kernel(&g));
        let t = g.symbol("true").unwrap();
        let after_true = goto_set(&g, &closed, t);
        assert_eq!(after_true.len(), 1); // B ::= true .
        assert!(after_true.iter().next().unwrap().is_complete(&g));
    }

    #[test]
    fn closure_handles_epsilon_rules() {
        let g = fixtures::palindromes();
        let closed = closure(&g, &start_kernel(&g));
        // S ::= . is both "dot at start" and complete.
        assert!(completed_items(&g, &closed).len() == 1);
    }

    #[test]
    fn closure_reflects_grammar_modification() {
        // The same kernel closes differently after `B ::= unknown` is added:
        // this is what drives the incremental generator's re-expansion.
        let mut g = fixtures::booleans();
        let before = closure(&g, &start_kernel(&g)).len();
        let b = g.symbol("B").unwrap();
        let unknown = g.terminal("unknown");
        g.add_rule(b, vec![unknown]);
        let after = closure(&g, &start_kernel(&g)).len();
        assert_eq!(after, before + 1);
    }
}
