//! LR items ("dotted rules").
//!
//! An LR(0) item is a grammar rule with a cursor (the *dot*) marking how far
//! the parser has progressed in recognising the rule — `B ::= B • or B` in
//! the paper's diagrams. An LR(1) item additionally carries one lookahead
//! terminal; it is used only by the canonical-LR(1)/LALR(1) baseline
//! generators, never by IPG itself (which is deliberately LR(0), see §8 of
//! the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

use ipg_grammar::{Grammar, RuleId, SymbolId};

/// An LR(0) item: a rule plus a dot position (`0 ..= rule.len()`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Item {
    /// The rule being recognised.
    pub rule: RuleId,
    /// Number of right-hand-side symbols already recognised.
    pub dot: usize,
}

impl Item {
    /// Creates an item with the dot at the start of the rule.
    pub fn start(rule: RuleId) -> Self {
        Item { rule, dot: 0 }
    }

    /// The symbol immediately after the dot, or `None` if the dot is at the
    /// end of the rule.
    pub fn next_symbol(&self, grammar: &Grammar) -> Option<SymbolId> {
        grammar.rule(self.rule).rhs.get(self.dot).copied()
    }

    /// Returns `true` if the dot is at the end of the rule (the rule has
    /// been recognised completely).
    pub fn is_complete(&self, grammar: &Grammar) -> bool {
        self.dot >= grammar.rule(self.rule).rhs.len()
    }

    /// The item with the dot advanced over one symbol.
    ///
    /// # Panics
    /// Panics (in debug builds) if the item is already complete.
    pub fn advance(&self) -> Item {
        Item {
            rule: self.rule,
            dot: self.dot + 1,
        }
    }

    /// Renders the item in the paper's notation, e.g. `B ::= B . or B`.
    pub fn display<'a>(&self, grammar: &'a Grammar) -> ItemDisplay<'a> {
        ItemDisplay {
            item: *self,
            grammar,
        }
    }
}

/// Helper returned by [`Item::display`].
pub struct ItemDisplay<'a> {
    item: Item,
    grammar: &'a Grammar,
}

impl fmt::Display for ItemDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rule = self.grammar.rule(self.item.rule);
        write!(f, "{} ::=", self.grammar.name(rule.lhs))?;
        for (i, &s) in rule.rhs.iter().enumerate() {
            if i == self.item.dot {
                write!(f, " .")?;
            }
            write!(f, " {}", self.grammar.name(s))?;
        }
        if self.item.dot == rule.rhs.len() {
            write!(f, " .")?;
        }
        Ok(())
    }
}

/// An LR(1) item: an LR(0) core plus a single lookahead terminal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Lr1Item {
    /// The LR(0) core of the item.
    pub core: Item,
    /// The lookahead terminal: the rule may be reduced only when this
    /// terminal is the next input symbol.
    pub lookahead: SymbolId,
}

impl Lr1Item {
    /// Creates an LR(1) item with the dot at the start of the rule.
    pub fn start(rule: RuleId, lookahead: SymbolId) -> Self {
        Lr1Item {
            core: Item::start(rule),
            lookahead,
        }
    }

    /// The item with the dot advanced over one symbol; the lookahead is
    /// unchanged.
    pub fn advance(&self) -> Lr1Item {
        Lr1Item {
            core: self.core.advance(),
            lookahead: self.lookahead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;

    #[test]
    fn item_progression() {
        let g = fixtures::booleans();
        let b = g.symbol("B").unwrap();
        let or = g.symbol("or").unwrap();
        let rule = g.find_rule(b, &[b, or, b]).unwrap();
        let mut item = Item::start(rule);
        assert_eq!(item.next_symbol(&g), Some(b));
        item = item.advance();
        assert_eq!(item.next_symbol(&g), Some(or));
        item = item.advance();
        assert_eq!(item.next_symbol(&g), Some(b));
        item = item.advance();
        assert!(item.is_complete(&g));
        assert_eq!(item.next_symbol(&g), None);
    }

    #[test]
    fn item_display_matches_paper_notation() {
        let g = fixtures::booleans();
        let b = g.symbol("B").unwrap();
        let or = g.symbol("or").unwrap();
        let rule = g.find_rule(b, &[b, or, b]).unwrap();
        let item = Item { rule, dot: 1 };
        assert_eq!(item.display(&g).to_string(), "B ::= B . or B");
        let done = Item { rule, dot: 3 };
        assert_eq!(done.display(&g).to_string(), "B ::= B or B .");
    }

    #[test]
    fn lr1_item_keeps_lookahead_on_advance() {
        let g = fixtures::booleans();
        let b = g.symbol("B").unwrap();
        let t = g.symbol("true").unwrap();
        let rule = g.find_rule(b, &[t]).unwrap();
        let item = Lr1Item::start(rule, g.eof_symbol());
        let advanced = item.advance();
        assert_eq!(advanced.lookahead, g.eof_symbol());
        assert_eq!(advanced.core.dot, 1);
    }

    #[test]
    fn items_order_deterministically() {
        let a = Item { rule: RuleId::from_index(0), dot: 1 };
        let b = Item { rule: RuleId::from_index(1), dot: 0 };
        assert!(a < b);
    }
}
