//! # ipg-lr
//!
//! Conventional LR parse-table generation and deterministic LR parsing for
//! the IPG reproduction (*Incremental Generation of Parsers*, Heering,
//! Klint & Rekers).
//!
//! This crate contains the two *non-incremental* generators the paper
//! measures against, plus everything they share with the lazy generator:
//!
//! * [`item`] / [`itemset`] — LR(0)/LR(1) items, `CLOSURE`, kernels;
//! * [`automaton`] — the eager LR(0) "graph of item sets" generator, i.e.
//!   the paper's **PG** (§4: `GENERATE-PARSER` / `EXPAND`);
//! * [`table`] — ACTION/GOTO parse tables (Fig. 4.1(b)), conflict
//!   reporting, and the [`ParserTables`] trait every table-driven parser in
//!   this repository is written against;
//! * [`lalr`] — canonical LR(1) and LALR(1) construction, the **Yacc**
//!   baseline of §7;
//! * [`parser`] — the deterministic `LR-PARSE` of §3.1 with tree building
//!   and tracing (Fig. 4.2);
//! * [`tree`] — concrete parse trees.
//!
//! ## Example: generate a table and parse
//!
//! ```
//! use ipg_grammar::fixtures;
//! use ipg_lr::{lalr1_table, LrParser, tokenize_names};
//!
//! let grammar = fixtures::arithmetic();
//! let table = lalr1_table(&grammar);
//! let parser = LrParser::new(&grammar);
//! let tokens = tokenize_names(&grammar, "id + num * id").unwrap();
//! let tree = parser.parse(&table, &tokens).unwrap();
//! assert_eq!(tree.leaf_count(), 5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod automaton;
pub mod item;
pub mod itemset;
pub mod lalr;
pub mod parser;
pub mod table;
pub mod tree;

pub use automaton::{AutomatonSize, Lr0Automaton, State, StateId};
pub use item::{Item, Lr1Item};
pub use itemset::{closure, goto_set, partition_by_next_symbol, start_kernel, ItemSet};
pub use lalr::{canonical_lr1_table, lalr1_table, lalr1_table_with_stats, LalrStats};
pub use parser::{render_trace, tokenize_names, LrCtx, LrParser, ParseError, TraceStep};
pub use table::{
    Action, ActionCell, ActionsIter, ActionsRef, Conflict, ParseTable, ParserTables,
    TableExpansion, TableKind, EMPTY_ACTIONS,
};
pub use tree::ParseTree;
