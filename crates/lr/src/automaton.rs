//! The conventional (eager) LR(0) "graph of item sets" generator — the
//! paper's parser generator **PG** from §4 (`GENERATE-PARSER`, `EXPAND`,
//! `CLOSURE`).
//!
//! The lazy/incremental generator in the `ipg` crate maintains the same
//! kind of graph but builds it on demand; this eager version is used as the
//! baseline ("PG") in the Fig. 7.1 measurements and as the reference
//! implementation that the lazy generator is checked against.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use ipg_grammar::{Grammar, RuleId, SymbolId};

use crate::item::Item;
use crate::itemset::{closure, completed_items, partition_by_next_symbol, start_kernel, ItemSet};

/// Identifier of a state (a set of items) in an LR automaton or parse
/// table. State 0 is always the start state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StateId(pub u32);

impl StateId {
    /// Raw index of the state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `StateId` from a raw index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        StateId(index as u32)
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "state#{}", self.0)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One state of the LR(0) automaton: a *complete* set of items in the
/// paper's terminology (its transitions and reductions have been computed).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct State {
    /// The state's identity.
    pub id: StateId,
    /// The kernel items (dotted rules) that define the state.
    pub kernel: ItemSet,
    /// The closure of the kernel.
    pub closure: ItemSet,
    /// Outgoing edges, labelled with the symbol that was moved over.
    pub transitions: BTreeMap<SymbolId, StateId>,
    /// Rules that are completely recognised in this state and may be
    /// reduced.
    pub reductions: Vec<RuleId>,
    /// `true` if this state contains a completed `START` rule, i.e. it has
    /// the paper's `($ accept)` transition.
    pub accepting: bool,
}

/// The eagerly generated LR(0) automaton (graph of item sets).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Lr0Automaton {
    states: Vec<State>,
    start: StateId,
    grammar_version: u64,
}

impl Lr0Automaton {
    /// Builds the complete graph of item sets for `grammar` — the paper's
    /// conventional `GENERATE-PARSER` of §4.
    pub fn build(grammar: &Grammar) -> Self {
        let mut builder = Builder {
            grammar,
            states: Vec::new(),
            kernel_index: HashMap::new(),
        };
        let start = builder.state_for_kernel(start_kernel(grammar));
        // Expand states until none is left initial. States are appended to
        // `states`, so a simple index loop visits them all.
        let mut i = 0;
        while i < builder.states.len() {
            builder.expand(StateId::from_index(i));
            i += 1;
        }
        Lr0Automaton {
            states: builder.states,
            start,
            grammar_version: grammar.version(),
        }
    }

    /// The start state (state 0).
    pub fn start_state(&self) -> StateId {
        self.start
    }

    /// Returns a state by id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this automaton.
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.index()]
    }

    /// All states in creation order.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// Number of states (rows of the would-be parse table).
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The grammar version the automaton was built from.
    pub fn grammar_version(&self) -> u64 {
        self.grammar_version
    }

    /// Total number of transitions (shift + goto edges).
    pub fn num_transitions(&self) -> usize {
        self.states.iter().map(|s| s.transitions.len()).sum()
    }

    /// Renders the graph of item sets as readable text, one box per state —
    /// the textual analogue of Fig. 4.1(c).
    pub fn render(&self, grammar: &Grammar) -> String {
        let mut out = String::new();
        for state in &self.states {
            out.push_str(&format!("state {}:\n", state.id));
            for item in &state.closure {
                let marker = if item.is_complete(grammar) { "*" } else { " " };
                out.push_str(&format!("  {} {}\n", marker, item.display(grammar)));
            }
            for (&sym, &target) in &state.transitions {
                out.push_str(&format!("    --{}--> state {}\n", grammar.name(sym), target));
            }
            if state.accepting {
                out.push_str("    --$--> accept\n");
            }
        }
        out
    }

    /// Renders the graph in Graphviz DOT format.
    pub fn to_dot(&self, grammar: &Grammar) -> String {
        let mut out = String::from("digraph itemsets {\n  node [shape=box, fontname=monospace];\n");
        for state in &self.states {
            let mut label = format!("{}\\n", state.id);
            for item in &state.kernel {
                label.push_str(&format!("{}\\l", item.display(grammar)));
            }
            out.push_str(&format!("  s{} [label=\"{}\"];\n", state.id, label));
            for (&sym, &target) in &state.transitions {
                out.push_str(&format!(
                    "  s{} -> s{} [label=\"{}\"];\n",
                    state.id,
                    target,
                    grammar.name(sym)
                ));
            }
            if state.accepting {
                out.push_str(&format!("  s{} -> accept [label=\"$\"];\n", state.id));
            }
        }
        out.push_str("}\n");
        out
    }
}

struct Builder<'g> {
    grammar: &'g Grammar,
    states: Vec<State>,
    kernel_index: HashMap<ItemSet, StateId>,
}

impl Builder<'_> {
    /// Finds or creates the state whose kernel is `kernel`.
    fn state_for_kernel(&mut self, kernel: ItemSet) -> StateId {
        if let Some(&id) = self.kernel_index.get(&kernel) {
            return id;
        }
        let id = StateId::from_index(self.states.len());
        self.kernel_index.insert(kernel.clone(), id);
        self.states.push(State {
            id,
            kernel,
            closure: ItemSet::new(),
            transitions: BTreeMap::new(),
            reductions: Vec::new(),
            accepting: false,
        });
        id
    }

    /// The paper's `EXPAND`: computes closure, successor kernels,
    /// transitions and reductions of one state.
    fn expand(&mut self, id: StateId) {
        let kernel = self.states[id.index()].kernel.clone();
        let closed = closure(self.grammar, &kernel);
        let successors = partition_by_next_symbol(self.grammar, &closed);

        let mut transitions = BTreeMap::new();
        for (symbol, kernel) in successors {
            let target = self.state_for_kernel(kernel);
            transitions.insert(symbol, target);
        }

        let mut reductions = Vec::new();
        let mut accepting = false;
        for item in completed_items(self.grammar, &closed) {
            let rule = self.grammar.rule(item.rule);
            if rule.lhs == self.grammar.start_symbol() {
                accepting = true;
            } else {
                reductions.push(item.rule);
            }
        }
        reductions.sort();
        reductions.dedup();

        let state = &mut self.states[id.index()];
        state.closure = closed;
        state.transitions = transitions;
        state.reductions = reductions;
        state.accepting = accepting;
    }
}

/// Convenience: the number of states and transitions the conventional
/// generator produces, used by the lazy-fraction measurements (§5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AutomatonSize {
    /// Number of states (sets of items).
    pub states: usize,
    /// Number of labelled edges.
    pub transitions: usize,
}

impl Lr0Automaton {
    /// Returns the size of the automaton.
    pub fn size(&self) -> AutomatonSize {
        AutomatonSize {
            states: self.num_states(),
            transitions: self.num_transitions(),
        }
    }

    /// Looks up a state by kernel, if the automaton contains one.
    pub fn find_state_by_kernel(&self, kernel: &ItemSet) -> Option<StateId> {
        self.states
            .iter()
            .find(|s| &s.kernel == kernel)
            .map(|s| s.id)
    }

    /// Iterates over `(state, item)` pairs of every kernel item — useful for
    /// statistics and debugging.
    pub fn kernel_items(&self) -> impl Iterator<Item = (StateId, Item)> + '_ {
        self.states
            .iter()
            .flat_map(|s| s.kernel.iter().map(move |&i| (s.id, i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;

    #[test]
    fn booleans_automaton_has_eight_states() {
        // Fig. 4.1(b)/(c): the Booleans grammar has states 0..=7.
        let g = fixtures::booleans();
        let a = Lr0Automaton::build(&g);
        assert_eq!(a.num_states(), 8);
    }

    #[test]
    fn start_state_is_state_zero() {
        let g = fixtures::booleans();
        let a = Lr0Automaton::build(&g);
        assert_eq!(a.start_state(), StateId(0));
        let start = a.state(a.start_state());
        assert_eq!(start.kernel.len(), 1);
        assert_eq!(start.closure.len(), 5);
        assert!(!start.accepting);
    }

    #[test]
    fn accept_state_follows_goto_on_b() {
        let g = fixtures::booleans();
        let a = Lr0Automaton::build(&g);
        let b = g.symbol("B").unwrap();
        let start = a.state(a.start_state());
        let after_b = a.state(start.transitions[&b]);
        assert!(after_b.accepting, "state after shifting B accepts on $");
        // It can also still shift `or` / `and`.
        assert!(after_b.transitions.contains_key(&g.symbol("or").unwrap()));
        assert!(after_b.transitions.contains_key(&g.symbol("and").unwrap()));
    }

    #[test]
    fn reduce_states_reference_the_right_rules() {
        let g = fixtures::booleans();
        let a = Lr0Automaton::build(&g);
        let t = g.symbol("true").unwrap();
        let b = g.symbol("B").unwrap();
        let start = a.state(a.start_state());
        let after_true = a.state(start.transitions[&t]);
        assert_eq!(after_true.reductions.len(), 1);
        let rule = g.rule(after_true.reductions[0]);
        assert_eq!(rule.lhs, b);
        assert_eq!(rule.rhs, vec![t]);
    }

    #[test]
    fn identical_kernels_are_shared() {
        // In the Booleans automaton, `B ::= true .` is reached from the
        // start state and from the states after `or`/`and`; the item set is
        // created only once.
        let g = fixtures::booleans();
        let a = Lr0Automaton::build(&g);
        let t = g.symbol("true").unwrap();
        let or = g.symbol("or").unwrap();
        let b = g.symbol("B").unwrap();
        let start = a.state(a.start_state());
        let s_true = start.transitions[&t];
        let s_b = start.transitions[&b];
        let s_or = a.state(s_b).transitions[&or];
        assert_eq!(a.state(s_or).transitions[&t], s_true);
    }

    #[test]
    fn fig62_automaton_builds() {
        let g = fixtures::fig62();
        let a = Lr0Automaton::build(&g);
        // Fig. 6.2(b) shows 10 item sets (0..=9).
        assert_eq!(a.num_states(), 10);
    }

    #[test]
    fn automaton_size_and_render() {
        let g = fixtures::booleans();
        let a = Lr0Automaton::build(&g);
        let size = a.size();
        assert_eq!(size.states, 8);
        assert!(size.transitions > 10);
        let text = a.render(&g);
        assert!(text.contains("state 0:"));
        assert!(text.contains("--$--> accept"));
        let dot = a.to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("accept"));
    }

    #[test]
    fn find_state_by_kernel_round_trips() {
        let g = fixtures::booleans();
        let a = Lr0Automaton::build(&g);
        for s in a.states() {
            assert_eq!(a.find_state_by_kernel(&s.kernel), Some(s.id));
        }
        assert!(a.kernel_items().count() >= a.num_states());
    }

    #[test]
    fn grammar_version_is_recorded() {
        let mut g = fixtures::booleans();
        let a = Lr0Automaton::build(&g);
        assert_eq!(a.grammar_version(), g.version());
        let b = g.symbol("B").unwrap();
        let u = g.terminal("unknown");
        g.add_rule(b, vec![u]);
        assert_ne!(a.grammar_version(), g.version());
    }

    #[test]
    fn epsilon_rules_produce_reductions_in_start_state() {
        let g = fixtures::palindromes();
        let a = Lr0Automaton::build(&g);
        let start = a.state(a.start_state());
        assert!(
            !start.reductions.is_empty(),
            "S ::= . is completed in the start state"
        );
    }
}
