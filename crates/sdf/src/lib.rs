//! # ipg-sdf
//!
//! A subset of **SDF**, the Syntax Definition Formalism in which grammar
//! definitions for IPG are written (and which serves as the benchmark
//! grammar of the paper's §7 measurements — Appendix B gives the SDF
//! definition of SDF itself).
//!
//! The crate provides:
//!
//! * the abstract syntax of SDF modules ([`ast`]),
//! * a hand-written parser for the textual notation ([`parse`]),
//! * normalisation into a context-free grammar plus a scanner derived from
//!   the lexical syntax ([`normalize`]) — iterations such as `A+`, `A*` and
//!   `{A ","}+` are expanded into auxiliary non-terminals, literals become
//!   keyword tokens, lexical sorts become token definitions,
//! * the paper's fixtures: the SDF definition of SDF and the four
//!   measurement inputs of Fig. 7.1 ([`fixtures`]).
//!
//! ```
//! use ipg_sdf::fixtures;
//!
//! // The paper's experimental setup: the SDF grammar drives ISG + IPG, and
//! // the inputs are themselves SDF definitions.
//! let normalized = fixtures::sdf_grammar_and_scanner();
//! let mut scanner = normalized.scanner;
//! let grammar = normalized.grammar;
//! let tokens = scanner.tokenize_for(&grammar, fixtures::EXP_SDF).unwrap();
//! assert!(tokens.len() > 20);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod fixtures;
pub mod normalize;
pub mod parse;

pub use ast::{CfElem, CfFunction, LexElem, LexicalFunction, SdfDefinition, SdfIterator};
pub use fixtures::{measurement_inputs, MeasurementInput};
pub use normalize::{normalize, to_grammar, to_scanner, NormalizeError, NormalizedSdf};
pub use parse::{parse_sdf, SdfParseError};
