//! Normalisation of an SDF definition into the two artefacts the rest of
//! the system consumes:
//!
//! * a context-free [`Grammar`] (iterations `A+`, `A*` and `{A ","}+` are
//!   expanded into auxiliary non-terminals, literals become terminals,
//!   lexical sorts become terminals), and
//! * a [`Scanner`] whose token definitions are derived from the lexical
//!   syntax (layout sorts become skipped tokens, context-free literals
//!   become keywords).
//!
//! This mirrors what the ASF/SDF system does before handing the grammar to
//! ISG/IPG.

use std::collections::HashSet;
use std::fmt;

use ipg_grammar::{Associativity, Grammar, SymbolId};
use ipg_lexer::{Regex, Scanner, TokenDef};

use crate::ast::{CfElem, LexElem, SdfDefinition, SdfIterator};

/// Errors produced during normalisation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NormalizeError {
    /// The definition has no context-free sort to use as the start sort.
    NoStartSort,
    /// A sort is referenced but declared neither as a lexical nor as a
    /// context-free sort with functions.
    UndefinedLexicalSort(String),
    /// Lexical sorts may not be (mutually) recursive: their definitions
    /// must reduce to regular expressions.
    RecursiveLexicalSort(String),
}

impl fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalizeError::NoStartSort => write!(f, "the definition declares no start sort"),
            NormalizeError::UndefinedLexicalSort(s) => {
                write!(f, "lexical sort `{s}` has no defining function")
            }
            NormalizeError::RecursiveLexicalSort(s) => {
                write!(f, "lexical sort `{s}` is defined recursively")
            }
        }
    }
}

impl std::error::Error for NormalizeError {}

/// The result of normalising an SDF definition.
#[derive(Debug)]
pub struct NormalizedSdf {
    /// The context-free grammar (with `START ::= <start sort>`).
    pub grammar: Grammar,
    /// The scanner derived from the lexical syntax plus the grammar's
    /// keyword literals.
    pub scanner: Scanner,
}

/// The name of the auxiliary non-terminal generated for an iterated sort,
/// e.g. `CF-ELEM+`. Exposed so that grammar modifications (like the one in
/// the paper's §7 measurement) can refer to the same symbol.
pub fn iter_symbol_name(sort: &str, iter: SdfIterator) -> String {
    format!("{sort}{iter}")
}

/// The name of the auxiliary non-terminal generated for a separated
/// iteration, e.g. `{SORT ","}+`.
pub fn sep_iter_symbol_name(sort: &str, separator: &str, iter: SdfIterator) -> String {
    format!("{{{sort} \"{separator}\"}}{iter}")
}

/// Converts the definition into a grammar and a scanner.
pub fn normalize(def: &SdfDefinition) -> Result<NormalizedSdf, NormalizeError> {
    let grammar = to_grammar(def)?;
    let scanner = to_scanner(def)?;
    Ok(NormalizedSdf { grammar, scanner })
}

/// Converts only the context-free part into a grammar.
pub fn to_grammar(def: &SdfDefinition) -> Result<Grammar, NormalizeError> {
    let start_sort = def.start_sort().ok_or(NormalizeError::NoStartSort)?.to_owned();
    let mut grammar = Grammar::new();
    let mut generated_aux: HashSet<String> = HashSet::new();

    for function in &def.cf_functions {
        let lhs = grammar.nonterminal(&function.sort);
        let mut rhs = Vec::with_capacity(function.elems.len());
        for elem in &function.elems {
            let symbol = cf_elem_symbol(def, &mut grammar, &mut generated_aux, elem);
            rhs.push(symbol);
        }
        let assoc = associativity_of(&function.attributes);
        grammar.add_rule_with(lhs, rhs, None, assoc, 0);
    }

    let start_nt = grammar.nonterminal(&start_sort);
    grammar.add_start_rule(start_nt);
    Ok(grammar)
}

fn associativity_of(attributes: &[String]) -> Associativity {
    for attr in attributes {
        match attr.as_str() {
            "left-assoc" | "assoc" => return Associativity::Left,
            "right-assoc" => return Associativity::Right,
            "non-assoc" => return Associativity::NonAssoc,
            _ => {}
        }
    }
    Associativity::None
}

/// Maps a context-free element to a grammar symbol, creating auxiliary
/// iteration non-terminals (and their rules) on first use.
fn cf_elem_symbol(
    def: &SdfDefinition,
    grammar: &mut Grammar,
    generated: &mut HashSet<String>,
    elem: &CfElem,
) -> SymbolId {
    match elem {
        CfElem::Literal(text) => grammar.terminal(text),
        CfElem::Sort(name) => sort_symbol(def, grammar, name),
        CfElem::Iter(name, iter) => {
            let aux_name = iter_symbol_name(name, *iter);
            let aux = grammar.nonterminal(&aux_name);
            if generated.insert(aux_name) {
                let element = sort_symbol(def, grammar, name);
                // aux+ ::= aux+ elem | elem       aux* ::= aux* elem | <empty>
                grammar.add_rule(aux, vec![aux, element]);
                match iter {
                    SdfIterator::Plus => grammar.add_rule(aux, vec![element]),
                    SdfIterator::Star => grammar.add_rule(aux, vec![]),
                };
            }
            aux
        }
        CfElem::SepIter { sort, separator, iter } => {
            let aux_name = sep_iter_symbol_name(sort, separator, *iter);
            let aux = grammar.nonterminal(&aux_name);
            if generated.insert(aux_name) {
                let element = sort_symbol(def, grammar, sort);
                let sep = grammar.terminal(separator);
                grammar.add_rule(aux, vec![aux, sep, element]);
                match iter {
                    SdfIterator::Plus => grammar.add_rule(aux, vec![element]),
                    SdfIterator::Star => {
                        grammar.add_rule(aux, vec![element]);
                        grammar.add_rule(aux, vec![])
                    }
                };
            }
            aux
        }
    }
}

fn sort_symbol(def: &SdfDefinition, grammar: &mut Grammar, name: &str) -> SymbolId {
    if def.is_lexical_sort(name) {
        grammar.terminal(name)
    } else {
        grammar.nonterminal(name)
    }
}

/// Derives the scanner: layout definitions, keyword literals of the
/// context-free syntax, then the lexical sorts used as terminals.
pub fn to_scanner(def: &SdfDefinition) -> Result<Scanner, NormalizeError> {
    let mut definitions = Vec::new();
    for layout in &def.layout_sorts {
        let regex = regex_for_sort(def, layout, &mut HashSet::new())?;
        definitions.push(TokenDef::layout(layout, regex));
    }
    for keyword in def.cf_literals() {
        definitions.push(TokenDef::keyword(&keyword));
    }
    for sort in def.terminal_sorts() {
        let regex = regex_for_sort(def, &sort, &mut HashSet::new())?;
        definitions.push(TokenDef::new(&sort, regex));
    }
    Ok(Scanner::new(definitions))
}

/// Builds the regular expression of a lexical sort by inlining the sorts it
/// references (lexical definitions must be non-recursive).
fn regex_for_sort(
    def: &SdfDefinition,
    sort: &str,
    visiting: &mut HashSet<String>,
) -> Result<Regex, NormalizeError> {
    if !visiting.insert(sort.to_owned()) {
        return Err(NormalizeError::RecursiveLexicalSort(sort.to_owned()));
    }
    let mut alternatives = Vec::new();
    for function in def.lexical_functions.iter().filter(|f| f.sort == sort) {
        let mut parts = Vec::with_capacity(function.elems.len());
        for elem in &function.elems {
            let part = match elem {
                LexElem::Literal(text) => Regex::literal(text),
                LexElem::Class(class) => Regex::class(class.clone()),
                LexElem::ClassIter(class, SdfIterator::Plus) => Regex::class(class.clone()).plus(),
                LexElem::ClassIter(class, SdfIterator::Star) => Regex::class(class.clone()).star(),
                LexElem::Sort(name) => regex_for_sort(def, name, visiting)?,
                LexElem::Iter(name, SdfIterator::Plus) => {
                    regex_for_sort(def, name, visiting)?.plus()
                }
                LexElem::Iter(name, SdfIterator::Star) => {
                    regex_for_sort(def, name, visiting)?.star()
                }
            };
            parts.push(part);
        }
        alternatives.push(Regex::concat(parts));
    }
    visiting.remove(sort);
    if alternatives.is_empty() {
        return Err(NormalizeError::UndefinedLexicalSort(sort.to_owned()));
    }
    Ok(Regex::alt(alternatives))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sdf;
    use ipg::IpgSession;
    use ipg_glr::GssParser;
    use ipg_lr::{Lr0Automaton, ParseTable};

    const BOOLEANS: &str = r#"
        module Booleans
        begin
            lexical syntax
                sorts IDENT
                layout WHITE-SPACE
                functions
                    [a-z] [a-z0-9]*  -> IDENT
                    [ \t\n]+         -> WHITE-SPACE
            context-free syntax
                sorts B
                functions
                    "true"       -> B
                    "false"      -> B
                    B "or" B     -> B {left-assoc}
                    B "and" B    -> B {left-assoc}
        end Booleans
    "#;

    const LISTS: &str = r#"
        module Lists
        begin
            lexical syntax
                sorts NAME
                layout WS
                functions
                    [a-zA-Z]+   -> NAME
                    [ \t\n]+    -> WS
            context-free syntax
                sorts DECLS, DECL
                functions
                    "declare" {DECL ","}+ "end"  -> DECLS
                    NAME NAME*                   -> DECL
        end Lists
    "#;

    #[test]
    fn boolean_module_round_trips_to_a_working_parser() {
        let def = parse_sdf(BOOLEANS).unwrap();
        let normalized = normalize(&def).unwrap();
        let scanner = normalized.scanner;
        let grammar = normalized.grammar;
        grammar.validate().unwrap();
        let tokens = scanner.tokenize_for(&grammar, "true or false and true").unwrap();
        assert_eq!(tokens.len(), 5);
        let table = ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar);
        let parser = GssParser::new(&grammar);
        assert!(parser.recognize(&table, &tokens));
        let bad = scanner.tokenize_for(&grammar, "true or or").unwrap();
        assert!(!parser.recognize(&table, &bad));
    }

    #[test]
    fn associativity_attributes_are_applied() {
        let def = parse_sdf(BOOLEANS).unwrap();
        let grammar = to_grammar(&def).unwrap();
        let b = grammar.symbol("B").unwrap();
        let or = grammar.symbol("or").unwrap();
        let rule = grammar.find_rule(b, &[b, or, b]).unwrap();
        assert_eq!(grammar.rule(rule).assoc, Associativity::Left);
    }

    #[test]
    fn iterations_expand_to_auxiliary_nonterminals() {
        let def = parse_sdf(LISTS).unwrap();
        let grammar = to_grammar(&def).unwrap();
        grammar.validate().unwrap();
        let star = grammar.symbol(&iter_symbol_name("NAME", SdfIterator::Star)).unwrap();
        assert!(grammar.is_nonterminal(star));
        assert_eq!(grammar.rules_for(star).count(), 2);
        let seplist = grammar
            .symbol(&sep_iter_symbol_name("DECL", ",", SdfIterator::Plus))
            .unwrap();
        assert_eq!(grammar.rules_for(seplist).count(), 2);
        // Lexical sorts become terminals.
        assert!(grammar.is_terminal(grammar.symbol("NAME").unwrap()));
    }

    #[test]
    fn normalized_module_parses_separated_lists_end_to_end() {
        let def = parse_sdf(LISTS).unwrap();
        let NormalizedSdf { grammar, scanner } = normalize(&def).unwrap();
        let text = "declare point x y, circle centre radius, empty end";
        let tokens = scanner.tokenize_for(&grammar, text).unwrap();
        let session = IpgSession::new(grammar);
        assert!(session.parse(&tokens).accepted);
        let bad = scanner
            .tokenize_for(session.grammar(), "declare , end")
            .unwrap();
        assert!(!session.parse(&bad).accepted);
    }

    #[test]
    fn missing_lexical_definitions_are_reported() {
        let def = parse_sdf(
            r#"
            module Broken
            begin
                lexical syntax
                    sorts ID
                context-free syntax
                    sorts S
                    functions
                        ID -> S
            end Broken
            "#,
        )
        .unwrap();
        assert!(to_grammar(&def).is_ok());
        assert_eq!(
            to_scanner(&def).unwrap_err(),
            NormalizeError::UndefinedLexicalSort("ID".to_owned())
        );
    }

    #[test]
    fn recursive_lexical_sorts_are_rejected() {
        let def = parse_sdf(
            r#"
            module Rec
            begin
                lexical syntax
                    sorts A
                    functions
                        "x" A -> A
                context-free syntax
                    sorts S
                    functions
                        A -> S
            end Rec
            "#,
        )
        .unwrap();
        assert_eq!(
            to_scanner(&def).unwrap_err(),
            NormalizeError::RecursiveLexicalSort("A".to_owned())
        );
    }

    #[test]
    fn empty_definition_has_no_start() {
        let def = SdfDefinition::default();
        assert_eq!(to_grammar(&def).unwrap_err(), NormalizeError::NoStartSort);
        let err = NormalizeError::NoStartSort;
        assert!(err.to_string().contains("start sort"));
    }
}
