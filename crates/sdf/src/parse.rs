//! A hand-written parser for the SDF subset.
//!
//! This is the bootstrap parser: it reads SDF definitions as text (most
//! importantly the SDF definition of SDF from Appendix B) so that the
//! resulting grammar can in turn be handed to PG / IPG — which is exactly
//! the paper's experimental setup, where "the grammar of SDF has to be
//! expressed in SDF itself to be acceptable to PG and IPG".

use std::fmt;

use ipg_lexer::CharClass;

use crate::ast::{CfElem, CfFunction, LexElem, LexicalFunction, SdfDefinition, SdfIterator};

/// A parse error with a line number and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SdfParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for SdfParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SDF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SdfParseError {}

/// Tokens of the SDF notation itself.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Literal(String),
    Class(String),
    Arrow,
    Plus,
    Star,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Greater,
    Less,
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
}

fn tokenize(text: &str) -> Result<Vec<Spanned>, SdfParseError> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // Comment to end of line.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '"' => {
                let mut lit = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            let escaped = chars.get(i + 1).copied().ok_or_else(|| SdfParseError {
                                line,
                                message: "dangling escape in literal".to_owned(),
                            })?;
                            lit.push(match escaped {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                            i += 2;
                        }
                        Some(&ch) => {
                            if ch == '\n' {
                                line += 1;
                            }
                            lit.push(ch);
                            i += 1;
                        }
                        None => {
                            return Err(SdfParseError {
                                line,
                                message: "unterminated literal".to_owned(),
                            })
                        }
                    }
                }
                out.push(Spanned { tok: Tok::Literal(lit), line });
            }
            '[' | '~' => {
                let start = i;
                if chars[i] == '~' {
                    i += 1;
                    if chars.get(i) != Some(&'[') {
                        return Err(SdfParseError {
                            line,
                            message: "expected `[` after `~`".to_owned(),
                        });
                    }
                }
                i += 1;
                loop {
                    match chars.get(i) {
                        Some(']') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => i += 2,
                        Some(_) => i += 1,
                        None => {
                            return Err(SdfParseError {
                                line,
                                message: "unterminated character class".to_owned(),
                            })
                        }
                    }
                }
                let class: String = chars[start..i].iter().collect();
                out.push(Spanned { tok: Tok::Class(class), line });
            }
            '-' if chars.get(i + 1) == Some(&'>') => {
                out.push(Spanned { tok: Tok::Arrow, line });
                i += 2;
            }
            '+' => {
                out.push(Spanned { tok: Tok::Plus, line });
                i += 1;
            }
            '*' => {
                out.push(Spanned { tok: Tok::Star, line });
                i += 1;
            }
            '{' => {
                out.push(Spanned { tok: Tok::LBrace, line });
                i += 1;
            }
            '}' => {
                out.push(Spanned { tok: Tok::RBrace, line });
                i += 1;
            }
            '(' => {
                out.push(Spanned { tok: Tok::LParen, line });
                i += 1;
            }
            ')' => {
                out.push(Spanned { tok: Tok::RParen, line });
                i += 1;
            }
            ',' => {
                out.push(Spanned { tok: Tok::Comma, line });
                i += 1;
            }
            '>' => {
                out.push(Spanned { tok: Tok::Greater, line });
                i += 1;
            }
            '<' => {
                out.push(Spanned { tok: Tok::Less, line });
                i += 1;
            }
            c if c.is_alphabetic() => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '-' || chars[i] == '_')
                {
                    // Do not swallow a `--` comment or `->` arrow that
                    // immediately follows an identifier.
                    if chars[i] == '-'
                        && matches!(chars.get(i + 1), Some(&'-') | Some(&'>'))
                    {
                        break;
                    }
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                out.push(Spanned { tok: Tok::Ident(ident), line });
            }
            other => {
                return Err(SdfParseError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> SdfParseError {
        SdfParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect_ident(&mut self, expected: &str) -> Result<(), SdfParseError> {
        match self.bump() {
            Some(Tok::Ident(id)) if id == expected => Ok(()),
            other => Err(self.error(format!("expected `{expected}`, found {other:?}"))),
        }
    }

    fn take_ident(&mut self) -> Result<String, SdfParseError> {
        match self.bump() {
            Some(Tok::Ident(id)) => Ok(id),
            other => Err(self.error(format!("expected an identifier, found {other:?}"))),
        }
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(id)) if id == word)
    }
}

/// Parses an SDF module.
pub fn parse_sdf(text: &str) -> Result<SdfDefinition, SdfParseError> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut def = SdfDefinition::default();

    p.expect_ident("module")?;
    def.name = p.take_ident()?;
    p.expect_ident("begin")?;

    // Sections may appear in any order; Appendix B uses lexical syntax then
    // context-free syntax.
    loop {
        if p.at_ident("end") {
            break;
        }
        if p.at_ident("lexical") {
            p.bump();
            p.expect_ident("syntax")?;
            parse_lexical_section(&mut p, &mut def)?;
        } else if p.at_ident("context-free") {
            p.bump();
            p.expect_ident("syntax")?;
            parse_context_free_section(&mut p, &mut def)?;
        } else {
            return Err(p.error(format!(
                "expected `lexical syntax`, `context-free syntax` or `end`, found {:?}",
                p.peek()
            )));
        }
    }
    p.expect_ident("end")?;
    let closing = p.take_ident()?;
    if closing != def.name {
        return Err(p.error(format!(
            "module `{}` closed by `end {closing}`",
            def.name
        )));
    }
    Ok(def)
}

fn parse_sort_list(p: &mut Parser) -> Result<Vec<String>, SdfParseError> {
    let mut sorts = vec![p.take_ident()?];
    while matches!(p.peek(), Some(Tok::Comma)) {
        p.bump();
        sorts.push(p.take_ident()?);
    }
    Ok(sorts)
}

fn section_keyword(p: &Parser) -> bool {
    p.at_ident("sorts")
        || p.at_ident("layout")
        || p.at_ident("functions")
        || p.at_ident("priorities")
        || p.at_ident("lexical")
        || p.at_ident("context-free")
        || p.at_ident("end")
}

fn parse_lexical_section(p: &mut Parser, def: &mut SdfDefinition) -> Result<(), SdfParseError> {
    loop {
        if p.at_ident("sorts") {
            p.bump();
            def.lexical_sorts.extend(parse_sort_list(p)?);
        } else if p.at_ident("layout") {
            p.bump();
            def.layout_sorts.extend(parse_sort_list(p)?);
        } else if p.at_ident("functions") {
            p.bump();
            while !section_keyword(p) && p.peek().is_some() {
                def.lexical_functions.push(parse_lexical_function(p)?);
            }
        } else {
            return Ok(());
        }
    }
}

fn parse_lexical_function(p: &mut Parser) -> Result<LexicalFunction, SdfParseError> {
    let mut elems = Vec::new();
    loop {
        match p.peek() {
            Some(Tok::Arrow) => {
                p.bump();
                let sort = p.take_ident()?;
                return Ok(LexicalFunction { elems, sort });
            }
            Some(Tok::Ident(_)) => {
                let name = p.take_ident()?;
                match p.peek() {
                    Some(Tok::Plus) => {
                        p.bump();
                        elems.push(LexElem::Iter(name, SdfIterator::Plus));
                    }
                    Some(Tok::Star) => {
                        p.bump();
                        elems.push(LexElem::Iter(name, SdfIterator::Star));
                    }
                    _ => elems.push(LexElem::Sort(name)),
                }
            }
            Some(Tok::Literal(_)) => {
                if let Some(Tok::Literal(l)) = p.bump() {
                    elems.push(LexElem::Literal(l));
                }
            }
            Some(Tok::Class(_)) => {
                if let Some(Tok::Class(text)) = p.bump() {
                    let class = CharClass::parse(&text)
                        .map_err(|e| p.error(format!("bad character class: {e}")))?;
                    match p.peek() {
                        Some(Tok::Plus) => {
                            p.bump();
                            elems.push(LexElem::ClassIter(class, SdfIterator::Plus));
                        }
                        Some(Tok::Star) => {
                            p.bump();
                            elems.push(LexElem::ClassIter(class, SdfIterator::Star));
                        }
                        _ => elems.push(LexElem::Class(class)),
                    }
                }
            }
            other => return Err(p.error(format!("unexpected {other:?} in lexical function"))),
        }
    }
}

fn parse_context_free_section(
    p: &mut Parser,
    def: &mut SdfDefinition,
) -> Result<(), SdfParseError> {
    loop {
        if p.at_ident("sorts") {
            p.bump();
            def.cf_sorts.extend(parse_sort_list(p)?);
        } else if p.at_ident("priorities") {
            p.bump();
            // Priorities are recorded as raw token text up to the next
            // section keyword; they are not needed for the measurements.
            let mut raw = String::new();
            while !section_keyword(p) && p.peek().is_some() {
                raw.push_str(&format!("{:?} ", p.bump().expect("peeked")));
            }
            def.priorities.push(raw.trim().to_owned());
        } else if p.at_ident("functions") {
            p.bump();
            while !section_keyword(p) && p.peek().is_some() {
                def.cf_functions.push(parse_cf_function(p)?);
            }
        } else {
            return Ok(());
        }
    }
}

fn parse_cf_function(p: &mut Parser) -> Result<CfFunction, SdfParseError> {
    let mut elems = Vec::new();
    loop {
        match p.peek() {
            Some(Tok::Arrow) => {
                p.bump();
                let sort = p.take_ident()?;
                let mut attributes = Vec::new();
                // A `{` after the sort is an attribute list only if it looks
                // like `{ ident , ... }`; otherwise it is the start of the
                // next function's `{SORT "sep"}+` element.
                let looks_like_attributes = matches!(p.peek(), Some(Tok::LBrace))
                    && matches!(p.tokens.get(p.pos + 1).map(|s| &s.tok), Some(Tok::Ident(_)))
                    && matches!(
                        p.tokens.get(p.pos + 2).map(|s| &s.tok),
                        Some(Tok::Comma) | Some(Tok::RBrace)
                    );
                if looks_like_attributes {
                    p.bump();
                    loop {
                        match p.bump() {
                            Some(Tok::Ident(a)) => attributes.push(a),
                            Some(Tok::Comma) => {}
                            Some(Tok::RBrace) => break,
                            other => {
                                return Err(
                                    p.error(format!("unexpected {other:?} in attribute list"))
                                )
                            }
                        }
                    }
                }
                return Ok(CfFunction { elems, sort, attributes });
            }
            Some(Tok::Ident(_)) => {
                let name = p.take_ident()?;
                match p.peek() {
                    Some(Tok::Plus) => {
                        p.bump();
                        elems.push(CfElem::Iter(name, SdfIterator::Plus));
                    }
                    Some(Tok::Star) => {
                        p.bump();
                        elems.push(CfElem::Iter(name, SdfIterator::Star));
                    }
                    _ => elems.push(CfElem::Sort(name)),
                }
            }
            Some(Tok::Literal(_)) => {
                if let Some(Tok::Literal(l)) = p.bump() {
                    elems.push(CfElem::Literal(l));
                }
            }
            Some(Tok::LBrace) => {
                p.bump();
                let sort = p.take_ident()?;
                let separator = match p.bump() {
                    Some(Tok::Literal(l)) => l,
                    other => {
                        return Err(p.error(format!("expected separator literal, found {other:?}")))
                    }
                };
                match p.bump() {
                    Some(Tok::RBrace) => {}
                    other => return Err(p.error(format!("expected `}}`, found {other:?}"))),
                }
                let iter = match p.bump() {
                    Some(Tok::Plus) => SdfIterator::Plus,
                    Some(Tok::Star) => SdfIterator::Star,
                    other => {
                        return Err(p.error(format!("expected `+` or `*`, found {other:?}")))
                    }
                };
                elems.push(CfElem::SepIter { sort, separator, iter });
            }
            other => return Err(p.error(format!("unexpected {other:?} in context-free function"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SdfIterator;

    const SMALL: &str = r#"
        module Booleans
        begin
            lexical syntax
                sorts ID
                layout WHITE-SPACE
                functions
                    [a-z]+          -> ID
                    [ \t\n]         -> WHITE-SPACE
            context-free syntax
                sorts B
                functions
                    "true"          -> B
                    "false"         -> B
                    B "or" B        -> B  {left-assoc}
                    B "and" B       -> B  {left-assoc}
        end Booleans
    "#;

    #[test]
    fn parses_a_small_module() {
        let def = parse_sdf(SMALL).unwrap();
        assert_eq!(def.name, "Booleans");
        assert_eq!(def.lexical_sorts, vec!["ID"]);
        assert_eq!(def.layout_sorts, vec!["WHITE-SPACE"]);
        assert_eq!(def.lexical_functions.len(), 2);
        assert_eq!(def.cf_sorts, vec!["B"]);
        assert_eq!(def.cf_functions.len(), 4);
        assert_eq!(def.cf_functions[2].attributes, vec!["left-assoc"]);
        assert_eq!(def.start_sort(), Some("B"));
    }

    #[test]
    fn parses_iterations_and_separated_lists() {
        let def = parse_sdf(
            r#"
            module Lists
            begin
                context-free syntax
                    sorts LIST, ELEM
                    functions
                        "[" {ELEM ","}* "]" -> LIST
                        ELEM+               -> LIST
                        "x"                 -> ELEM
            end Lists
            "#,
        )
        .unwrap();
        assert_eq!(def.cf_functions.len(), 3);
        match &def.cf_functions[0].elems[1] {
            CfElem::SepIter { sort, separator, iter } => {
                assert_eq!(sort, "ELEM");
                assert_eq!(separator, ",");
                assert_eq!(*iter, SdfIterator::Star);
            }
            other => panic!("expected separated iteration, got {other:?}"),
        }
        match &def.cf_functions[1].elems[0] {
            CfElem::Iter(sort, SdfIterator::Plus) => assert_eq!(sort, "ELEM"),
            other => panic!("expected iteration, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_empty_productions() {
        let def = parse_sdf(
            r#"
            module Empties
            begin
                context-free syntax
                    sorts OPT
                    functions
                        -- empty --
                                -> OPT
                        "x"     -> OPT
            end Empties
            "#,
        )
        .unwrap();
        assert_eq!(def.cf_functions.len(), 2);
        assert!(def.cf_functions[0].elems.is_empty());
    }

    #[test]
    fn priorities_are_recorded_but_not_interpreted() {
        let def = parse_sdf(
            r#"
            module Prio
            begin
                context-free syntax
                    sorts E
                    priorities
                        "*" > "+"
                    functions
                        E "+" E -> E
                        E "*" E -> E
                        "id"    -> E
            end Prio
            "#,
        )
        .unwrap();
        assert_eq!(def.priorities.len(), 1);
        assert!(def.priorities[0].contains('*'));
        assert_eq!(def.cf_functions.len(), 3);
    }

    #[test]
    fn error_reporting_mentions_lines() {
        let err = parse_sdf("module X begin garbage end X").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        assert!(parse_sdf("module X begin end Y").is_err());
        assert!(parse_sdf("module X begin lexical syntax functions \"a -> B end X").is_err());
    }

    #[test]
    fn mismatched_class_and_literal_errors() {
        assert!(parse_sdf("module X begin lexical syntax functions [a-z -> ID end X").is_err());
        assert!(parse_sdf("module X begin context-free syntax functions { B \",\" -> L end X").is_err());
    }
}
