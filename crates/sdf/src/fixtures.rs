//! The paper's SDF fixtures.
//!
//! * [`SDF_OF_SDF`] — the SDF definition of SDF itself (Appendix B),
//!   adapted to the subset implemented by this crate (see below);
//! * the four measurement inputs of §7 / Fig. 7.1: `exp.sdf` (37 tokens in
//!   the paper), `Exam.sdf` (166), `SDF.sdf` (342) and `ASF.sdf` (475).
//!   The originals are not available, so `exp`, `Exam` and `ASF` are
//!   synthesised SDF modules of comparable size; `SDF.sdf` is — as in the
//!   paper — the SDF definition of SDF itself;
//! * [`paper_modification_rule`] — the grammar rule the paper adds during
//!   the measurements: `"(" CF-ELEM+ ")?" -> CF-ELEM`.
//!
//! Adaptations with respect to the verbatim Appendix B text (documented in
//! DESIGN.md): string escapes inside literals are avoided by using
//! character classes (`["]` instead of `"\""`), the difference operator on
//! character classes is written `~[...]` instead of `- [...]`, and the
//! lexical chain `ORD-CHAR`/`C-CHAR`/`CHAR-RANGE` is folded into a single
//! `CC-CHAR` sort. None of these changes affect the context-free grammar
//! that the parser generators are measured on.

use crate::ast::{SdfDefinition, SdfIterator};
use crate::normalize::{iter_symbol_name, normalize, NormalizedSdf};
use crate::parse::parse_sdf;

/// The SDF definition of SDF (Appendix B, adapted to the implemented
/// subset).
pub const SDF_OF_SDF: &str = r#"
module SDF
begin
    -- The SDF definition of SDF --
    lexical syntax
        sorts LETTER, ID-CHAR, ID, ITERATOR, L-CHAR, LITERAL, CC-CHAR, CHAR-CLASS
        layout WHITE-SPACE, COMMENT
        functions
            [a-zA-Z]                    -> LETTER
            [a-zA-Z0-9_\-]              -> ID-CHAR
            LETTER ID-CHAR*             -> ID
            "+"                         -> ITERATOR
            "*"                         -> ITERATOR
            ~["\n]                      -> L-CHAR
            ["] L-CHAR* ["]             -> LITERAL
            ~[\]\\]                     -> CC-CHAR
            "\\" [\]nrt\\-]             -> CC-CHAR
            "[" CC-CHAR* "]"            -> CHAR-CLASS
            "~" "[" CC-CHAR* "]"        -> CHAR-CLASS
            [ \t\n\r]                   -> WHITE-SPACE
            "--" ~[\n]*                 -> COMMENT

    context-free syntax
        sorts SDF-DEFINITION, LEXICAL-SYNTAX, SORTS-DECL, SORT, LAYOUT,
              LEXICAL-FUNCTIONS, LEXICAL-FUNCTION-DEF, LEX-ELEM,
              CONTEXT-FREE-SYNTAX, PRIORITIES, PRIO-DEF, ABBREV-F-LIST,
              ABBREV-F-DEF, FUNCTIONS, FUNCTION-DEF, CF-ELEM, ATTRIBUTES,
              ATTRIBUTE
        functions
            "module" ID
            "begin"
                LEXICAL-SYNTAX
                CONTEXT-FREE-SYNTAX
            "end" ID                                   -> SDF-DEFINITION

            "lexical" "syntax"
                SORTS-DECL
                LAYOUT
                LEXICAL-FUNCTIONS                      -> LEXICAL-SYNTAX
                                                       -> LEXICAL-SYNTAX

            "sorts" {SORT ","}+                        -> SORTS-DECL
                                                       -> SORTS-DECL
            ID                                         -> SORT
            "layout" {SORT ","}+                       -> LAYOUT
                                                       -> LAYOUT

            "functions" LEXICAL-FUNCTION-DEF+          -> LEXICAL-FUNCTIONS
            LEX-ELEM+ "->" SORT                        -> LEXICAL-FUNCTION-DEF
            SORT                                       -> LEX-ELEM
            SORT ITERATOR                              -> LEX-ELEM
            LITERAL                                    -> LEX-ELEM
            CHAR-CLASS                                 -> LEX-ELEM
            CHAR-CLASS ITERATOR                        -> LEX-ELEM
            "~" CHAR-CLASS                             -> LEX-ELEM

            "context-free" "syntax"
                SORTS-DECL
                PRIORITIES
                FUNCTIONS                              -> CONTEXT-FREE-SYNTAX

            "priorities" {PRIO-DEF ","}+               -> PRIORITIES
                                                       -> PRIORITIES
            {ABBREV-F-LIST ">"}+                       -> PRIO-DEF
            {ABBREV-F-LIST "<"}+                       -> PRIO-DEF
            ABBREV-F-DEF                               -> ABBREV-F-LIST
            "(" {ABBREV-F-DEF ","}+ ")"                -> ABBREV-F-LIST
            CF-ELEM+                                   -> ABBREV-F-DEF
            CF-ELEM* "->" SORT                         -> ABBREV-F-DEF

            "functions" FUNCTION-DEF+                  -> FUNCTIONS
            CF-ELEM* "->" SORT ATTRIBUTES              -> FUNCTION-DEF
            SORT                                       -> CF-ELEM
            LITERAL                                    -> CF-ELEM
            SORT ITERATOR                              -> CF-ELEM
            "{" SORT LITERAL "}" ITERATOR              -> CF-ELEM

            "{" {ATTRIBUTE ","}+ "}"                   -> ATTRIBUTES
                                                       -> ATTRIBUTES
            "par"                                      -> ATTRIBUTE
            "assoc"                                    -> ATTRIBUTE
            "left-assoc"                               -> ATTRIBUTE
            "right-assoc"                              -> ATTRIBUTE
end SDF
"#;

/// `exp.sdf`: the smallest measurement input (37 tokens in the paper) — a
/// tiny expression-language definition.
pub const EXP_SDF: &str = r#"
module Exp
begin
    lexical syntax
        sorts ID
        functions
            [a-z]+ -> ID
    context-free syntax
        sorts EXP
        functions
            EXP "+" EXP -> EXP {left-assoc}
            EXP "*" EXP -> EXP {left-assoc}
            ID          -> EXP
end Exp
"#;

/// `Exam.sdf`: the second measurement input (166 tokens in the paper) — a
/// small imperative language with declarations, statements and expressions.
pub const EXAM_SDF: &str = r#"
module Exam
begin
    lexical syntax
        sorts LETTER, DIGIT, ID, NAT
        layout WHITE-SPACE, COMMENT
        functions
            [a-zA-Z]            -> LETTER
            [0-9]               -> DIGIT
            LETTER LETTER*      -> ID
            DIGIT DIGIT*        -> NAT
            [ \t\n]             -> WHITE-SPACE
            "%" ~[\n]*          -> COMMENT
    context-free syntax
        sorts PROGRAM, DECLS, DECL, TYPE, STATS, STAT, EXP
        functions
            "program" ID DECLS "begin" STATS "end"     -> PROGRAM
            "declare" {DECL ","}*                      -> DECLS
            ID ":" TYPE                                -> DECL
            "natural"                                  -> TYPE
            "string"                                   -> TYPE
            {STAT ";"}+                                -> STATS
            ID ":=" EXP                                -> STAT
            "if" EXP "then" STATS "else" STATS "fi"    -> STAT
            "while" EXP "do" STATS "od"                -> STAT
            "read" ID                                  -> STAT
            "write" EXP                                -> STAT
            "skip"                                     -> STAT
            EXP "+" EXP                                -> EXP {left-assoc}
            EXP "-" EXP                                -> EXP {left-assoc}
            EXP "=" EXP                                -> EXP
            "(" EXP ")"                                -> EXP
            ID                                         -> EXP
            NAT                                        -> EXP
end Exam
"#;

/// `ASF.sdf`: the largest measurement input (475 tokens in the paper) — an
/// algebraic-specification formalism in the spirit of ASF, with modules,
/// imports, signatures, variables and conditional equations.
pub const ASF_SDF: &str = r##"
module ASF
begin
    lexical syntax
        sorts UC-LETTER, LC-LETTER, DIGIT, SORT-ID, FUN-ID, VAR-ID, NUMBER, TAG
        layout WHITE-SPACE, COMMENT
        functions
            [A-Z]                           -> UC-LETTER
            [a-z]                           -> LC-LETTER
            [0-9]                           -> DIGIT
            UC-LETTER UC-LETTER*            -> SORT-ID
            LC-LETTER LC-LETTER*            -> FUN-ID
            UC-LETTER DIGIT DIGIT*          -> VAR-ID
            DIGIT DIGIT*                    -> NUMBER
            "[" DIGIT DIGIT* "]"            -> TAG
            [ \t\n\r]                       -> WHITE-SPACE
            "%" "%" ~[\n]*                  -> COMMENT
    context-free syntax
        sorts SPECIFICATION, MODULE, IMPORTS, EXPORTS, SIGNATURE,
              SORTS-SECTION, FUNCTIONS-SECTION, FUNCTION-DECL, SORT-LIST,
              VARIABLES, VARIABLE-DECL, EQUATIONS, EQUATION, CONDITIONS,
              CONDITION, TERM, TERM-LIST
        functions
            MODULE+                                            -> SPECIFICATION
            "module" SORT-ID IMPORTS EXPORTS "endmodule"       -> MODULE
            "imports" {SORT-ID ","}*                           -> IMPORTS
                                                               -> IMPORTS
            "exports" SIGNATURE VARIABLES EQUATIONS            -> EXPORTS
            SORTS-SECTION FUNCTIONS-SECTION                    -> SIGNATURE
            "sorts" {SORT-ID ","}+                             -> SORTS-SECTION
                                                               -> SORTS-SECTION
            "functions" FUNCTION-DECL+                         -> FUNCTIONS-SECTION
                                                               -> FUNCTIONS-SECTION
            FUN-ID ":" SORT-LIST "->" SORT-ID                  -> FUNCTION-DECL
            FUN-ID ":" "->" SORT-ID                            -> FUNCTION-DECL
            {SORT-ID "#"}+                                     -> SORT-LIST
            "variables" VARIABLE-DECL+                         -> VARIABLES
                                                               -> VARIABLES
            VAR-ID ":" "->" SORT-ID                            -> VARIABLE-DECL
            "equations" EQUATION+                              -> EQUATIONS
                                                               -> EQUATIONS
            TAG TERM "=" TERM                                  -> EQUATION
            TAG CONDITIONS "==>" TERM "=" TERM                 -> EQUATION
            "when" {CONDITION ","}+                            -> CONDITIONS
            TERM "=" TERM                                      -> CONDITION
            TERM "!=" TERM                                     -> CONDITION
            FUN-ID                                             -> TERM
            VAR-ID                                             -> TERM
            NUMBER                                             -> TERM
            FUN-ID "(" TERM-LIST ")"                           -> TERM
            "(" TERM ")"                                       -> TERM
            TERM "+" TERM                                      -> TERM {left-assoc}
            TERM "-" TERM                                      -> TERM {left-assoc}
            TERM "*" TERM                                      -> TERM {left-assoc}
            "if" TERM "then" TERM "else" TERM "fi"             -> TERM
            "let" VAR-ID "be" TERM "in" TERM                   -> TERM
            "succ" "(" TERM ")"                                -> TERM
            "pred" "(" TERM ")"                                -> TERM
            "true"                                             -> TERM
            "false"                                            -> TERM
            "nil"                                              -> TERM
            "cons" "(" TERM "," TERM ")"                       -> TERM
            "head" "(" TERM ")"                                -> TERM
            "tail" "(" TERM ")"                                -> TERM
            TERM "and" TERM                                    -> TERM {assoc}
            TERM "or" TERM                                     -> TERM {assoc}
            "not" "(" TERM ")"                                 -> TERM
            TERM "eq" TERM                                     -> TERM
            TERM "lt" TERM                                     -> TERM
            TERM "gt" TERM                                     -> TERM
            {TERM ","}+                                        -> TERM-LIST
            {TERM ","}*                                        -> TERM-LIST
end ASF
"##;

/// One measurement input of Fig. 7.1.
#[derive(Clone, Debug)]
pub struct MeasurementInput {
    /// File name used in the paper (`exp.sdf`, `Exam.sdf`, ...).
    pub name: &'static str,
    /// The SDF text of the input.
    pub text: &'static str,
    /// The token count the paper reports for its original input.
    pub paper_tokens: usize,
}

/// The four inputs of Fig. 7.1, smallest to largest.
pub fn measurement_inputs() -> Vec<MeasurementInput> {
    vec![
        MeasurementInput { name: "exp.sdf", text: EXP_SDF, paper_tokens: 37 },
        MeasurementInput { name: "Exam.sdf", text: EXAM_SDF, paper_tokens: 166 },
        MeasurementInput { name: "SDF.sdf", text: SDF_OF_SDF, paper_tokens: 342 },
        MeasurementInput { name: "ASF.sdf", text: ASF_SDF, paper_tokens: 475 },
    ]
}

/// Parses [`SDF_OF_SDF`] into an [`SdfDefinition`].
pub fn sdf_of_sdf_definition() -> SdfDefinition {
    parse_sdf(SDF_OF_SDF).expect("the bundled SDF definition of SDF parses")
}

/// The normalised SDF grammar and scanner — the paper's benchmark grammar.
pub fn sdf_grammar_and_scanner() -> NormalizedSdf {
    normalize(&sdf_of_sdf_definition()).expect("the bundled SDF definition normalises")
}

/// The grammar modification used in the paper's measurements (§7): the rule
/// `"(" CF-ELEM+ ")?" -> CF-ELEM` is *added* to the SDF grammar. Returned
/// as `(lhs, rhs)` symbol names against the normalised grammar: the
/// left-hand side `CF-ELEM`, and the right-hand side `(`, `CF-ELEM+`
/// (the auxiliary iteration non-terminal that already exists) and the new
/// terminal `")?"`.
pub fn paper_modification_rule() -> (String, Vec<String>) {
    (
        "CF-ELEM".to_owned(),
        vec![
            "(".to_owned(),
            iter_symbol_name("CF-ELEM", SdfIterator::Plus),
            ")?".to_owned(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdf_of_sdf_parses_and_normalises() {
        let def = sdf_of_sdf_definition();
        assert_eq!(def.name, "SDF");
        assert_eq!(def.start_sort(), Some("SDF-DEFINITION"));
        assert!(def.num_cf_functions() >= 35);
        assert!(def.is_lexical_sort("ID"));
        assert!(def.is_lexical_sort("COMMENT"));
        let normalized = sdf_grammar_and_scanner();
        normalized.grammar.validate().unwrap();
        assert!(normalized.grammar.num_active_rules() > 40);
    }

    #[test]
    fn all_measurement_inputs_parse_as_sdf_text() {
        for input in measurement_inputs() {
            let def = parse_sdf(input.text).expect(input.name);
            assert!(!def.cf_functions.is_empty(), "{}", input.name);
        }
    }

    #[test]
    fn measurement_inputs_are_ordered_by_size() {
        let inputs = measurement_inputs();
        assert_eq!(inputs.len(), 4);
        let NormalizedSdf { grammar, scanner } = sdf_grammar_and_scanner();
        let sizes: Vec<usize> = inputs
            .iter()
            .map(|i| scanner.tokenize_for(&grammar, i.text).expect(i.name).len())
            .collect();
        for pair in inputs.windows(2) {
            assert!(pair[0].paper_tokens < pair[1].paper_tokens);
        }
        for pair in sizes.windows(2) {
            assert!(pair[0] < pair[1], "token counts must increase: {sizes:?}");
        }
    }

    #[test]
    fn scanner_tokenizes_every_measurement_input() {
        let NormalizedSdf { grammar, scanner } = sdf_grammar_and_scanner();
        for input in measurement_inputs() {
            let tokens = scanner
                .tokenize_for(&grammar, input.text)
                .unwrap_or_else(|e| panic!("{}: {e}", input.name));
            assert!(
                !tokens.is_empty(),
                "{} should produce tokens",
                input.name
            );
            // The synthesised inputs are within a factor of two of the
            // paper's token counts (exact counts are reported in
            // EXPERIMENTS.md).
            let lo = input.paper_tokens / 2;
            let hi = input.paper_tokens * 2;
            assert!(
                (lo..=hi).contains(&tokens.len()),
                "{}: {} tokens, paper reports {}",
                input.name,
                tokens.len(),
                input.paper_tokens
            );
        }
    }

    #[test]
    fn modification_rule_refers_to_existing_symbols() {
        let NormalizedSdf { grammar, .. } = sdf_grammar_and_scanner();
        let (lhs, rhs) = paper_modification_rule();
        assert!(grammar.symbol(&lhs).is_some());
        assert!(grammar.symbol(&rhs[0]).is_some());
        assert!(grammar.symbol(&rhs[1]).is_some());
        // `")?"` is new — it is interned by whoever applies the modification.
        assert!(grammar.symbol(&rhs[2]).is_none());
    }
}
