//! Abstract syntax of the SDF subset.
//!
//! SDF ("Syntax Definition Formalism") is the language in which grammar
//! definitions for IPG are written; the paper uses (an LR(1) version of)
//! the SDF grammar as its benchmark grammar and gives the SDF definition of
//! SDF itself in Appendix B. An SDF definition has a lexical-syntax section
//! (sorts, layout, lexical functions over character classes) and a
//! context-free-syntax section (sorts, priorities, functions). An SDF
//! function `β -> A` is equivalent to a BNF rule `A ::= β`.

use std::fmt;

use ipg_lexer::CharClass;

/// The two SDF iteration operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SdfIterator {
    /// `+`: one or more.
    Plus,
    /// `*`: zero or more.
    Star,
}

impl fmt::Display for SdfIterator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SdfIterator::Plus => "+",
            SdfIterator::Star => "*",
        })
    }
}

/// An element of a lexical function's left-hand side.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LexElem {
    /// Reference to another lexical sort.
    Sort(String),
    /// Iterated reference to a lexical sort (`ID-TAIL*`).
    Iter(String, SdfIterator),
    /// A literal string.
    Literal(String),
    /// A character class (possibly negated).
    Class(CharClass),
    /// An iterated character class (`[a-z]+`). A small extension over
    /// Appendix B, which only iterates sorts; see DESIGN.md.
    ClassIter(CharClass, SdfIterator),
}

/// A lexical function `elems -> SORT`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexicalFunction {
    /// The elements that make up the token.
    pub elems: Vec<LexElem>,
    /// The lexical sort the token belongs to.
    pub sort: String,
}

/// An element of a context-free function's left-hand side.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CfElem {
    /// A sort (lexical sorts become terminals, context-free sorts become
    /// non-terminals).
    Sort(String),
    /// A literal keyword or punctuation symbol.
    Literal(String),
    /// An iterated sort, `SORT+` or `SORT*`.
    Iter(String, SdfIterator),
    /// A separated iteration, `{SORT ","}+` or `{SORT ","}*`.
    SepIter {
        /// The repeated sort.
        sort: String,
        /// The separator literal.
        separator: String,
        /// `+` or `*`.
        iter: SdfIterator,
    },
}

/// A context-free function `elems -> SORT attributes`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CfFunction {
    /// The elements of the right-hand side (empty for `-- empty --`
    /// productions).
    pub elems: Vec<CfElem>,
    /// The sort the function produces (the BNF left-hand side).
    pub sort: String,
    /// Attribute names (`left-assoc`, `assoc`, `par`, ...).
    pub attributes: Vec<String>,
}

/// A parsed SDF module (the subset used by this reproduction).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SdfDefinition {
    /// The module name (`module NAME begin ... end NAME`).
    pub name: String,
    /// Sorts declared in the lexical syntax.
    pub lexical_sorts: Vec<String>,
    /// Layout sorts (whitespace, comments).
    pub layout_sorts: Vec<String>,
    /// Lexical functions.
    pub lexical_functions: Vec<LexicalFunction>,
    /// Sorts declared in the context-free syntax.
    pub cf_sorts: Vec<String>,
    /// Priority declarations, kept as raw text (they do not affect the
    /// token streams the benchmarks feed to the parsers).
    pub priorities: Vec<String>,
    /// Context-free functions.
    pub cf_functions: Vec<CfFunction>,
}

impl SdfDefinition {
    /// `true` if `sort` is declared in the lexical-syntax section (and thus
    /// becomes a terminal of the context-free grammar).
    pub fn is_lexical_sort(&self, sort: &str) -> bool {
        self.lexical_sorts.iter().any(|s| s == sort)
            || self.layout_sorts.iter().any(|s| s == sort)
    }

    /// The start sort of the definition: the first declared context-free
    /// sort (SDF uses the outermost sort of the module; for the Appendix B
    /// definition that is `SDF-DEFINITION`).
    pub fn start_sort(&self) -> Option<&str> {
        self.cf_sorts.first().map(String::as_str).or_else(|| {
            self.cf_functions.first().map(|f| f.sort.as_str())
        })
    }

    /// All literals used in context-free functions (the keyword terminals).
    pub fn cf_literals(&self) -> Vec<String> {
        let mut out = Vec::new();
        for f in &self.cf_functions {
            for elem in &f.elems {
                match elem {
                    CfElem::Literal(l) => push_unique(&mut out, l),
                    CfElem::SepIter { separator, .. } => push_unique(&mut out, separator),
                    _ => {}
                }
            }
        }
        out
    }

    /// The lexical sorts referenced from context-free functions; these are
    /// the token sorts the scanner must produce.
    pub fn terminal_sorts(&self) -> Vec<String> {
        let mut out = Vec::new();
        for f in &self.cf_functions {
            for elem in &f.elems {
                let name = match elem {
                    CfElem::Sort(s) | CfElem::Iter(s, _) | CfElem::SepIter { sort: s, .. } => s,
                    CfElem::Literal(_) => continue,
                };
                if self.is_lexical_sort(name) {
                    push_unique(&mut out, name);
                }
            }
        }
        out
    }

    /// Number of context-free functions (BNF rules before iteration
    /// expansion).
    pub fn num_cf_functions(&self) -> usize {
        self.cf_functions.len()
    }
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_owned());
    }
}

impl fmt::Display for CfElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfElem::Sort(s) => write!(f, "{s}"),
            CfElem::Literal(l) => write!(f, "\"{l}\""),
            CfElem::Iter(s, it) => write!(f, "{s}{it}"),
            CfElem::SepIter { sort, separator, iter } => {
                write!(f, "{{{sort} \"{separator}\"}}{iter}")
            }
        }
    }
}

impl fmt::Display for CfFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let elems: Vec<String> = self.elems.iter().map(|e| e.to_string()).collect();
        write!(f, "{} -> {}", elems.join(" "), self.sort)?;
        if !self.attributes.is_empty() {
            write!(f, " {{{}}}", self.attributes.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SdfDefinition {
        SdfDefinition {
            name: "Sample".to_owned(),
            lexical_sorts: vec!["ID".to_owned(), "NUM".to_owned()],
            layout_sorts: vec!["WHITE-SPACE".to_owned()],
            lexical_functions: vec![],
            cf_sorts: vec!["PROGRAM".to_owned(), "STMT".to_owned()],
            priorities: vec![],
            cf_functions: vec![
                CfFunction {
                    elems: vec![
                        CfElem::Literal("begin".to_owned()),
                        CfElem::SepIter {
                            sort: "STMT".to_owned(),
                            separator: ";".to_owned(),
                            iter: SdfIterator::Plus,
                        },
                        CfElem::Literal("end".to_owned()),
                    ],
                    sort: "PROGRAM".to_owned(),
                    attributes: vec![],
                },
                CfFunction {
                    elems: vec![
                        CfElem::Sort("ID".to_owned()),
                        CfElem::Literal(":=".to_owned()),
                        CfElem::Sort("NUM".to_owned()),
                    ],
                    sort: "STMT".to_owned(),
                    attributes: vec!["par".to_owned()],
                },
            ],
        }
    }

    #[test]
    fn sort_classification() {
        let d = sample();
        assert!(d.is_lexical_sort("ID"));
        assert!(d.is_lexical_sort("WHITE-SPACE"));
        assert!(!d.is_lexical_sort("STMT"));
        assert_eq!(d.start_sort(), Some("PROGRAM"));
        assert_eq!(d.num_cf_functions(), 2);
    }

    #[test]
    fn literal_and_terminal_collection() {
        let d = sample();
        assert_eq!(d.cf_literals(), vec!["begin", ";", "end", ":="]);
        assert_eq!(d.terminal_sorts(), vec!["ID", "NUM"]);
    }

    #[test]
    fn display_forms() {
        let d = sample();
        assert_eq!(
            d.cf_functions[0].to_string(),
            "\"begin\" {STMT \";\"}+ \"end\" -> PROGRAM"
        );
        assert_eq!(d.cf_functions[1].to_string(), "ID \":=\" NUM -> STMT {par}");
        assert_eq!(SdfIterator::Star.to_string(), "*");
    }

    #[test]
    fn empty_definition_has_no_start_sort() {
        assert_eq!(SdfDefinition::default().start_sort(), None);
    }
}
