//! A small blocking client for the frontend protocol.
//!
//! One request in flight at a time; the response's `request_id` is checked
//! against the request's. Load generators that want pipelining should use
//! the [`crate::protocol`] functions directly on split read/write halves
//! and correlate by `request_id` themselves.

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    read_response, write_request, FrameError, Response, Verb, DEFAULT_MAX_FRAME,
};

/// Converts a client-side frame-read failure into an `io::Error`.
pub fn frame_to_io(e: FrameError) -> io::Error {
    match e {
        FrameError::Idle | FrameError::SlowClient => {
            io::Error::new(io::ErrorKind::TimedOut, "timed out waiting for a response")
        }
        FrameError::Eof => io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        ),
        FrameError::Malformed { reason, .. } => io::Error::new(io::ErrorKind::InvalidData, reason),
        FrameError::Io(e) => e,
    }
}

/// A blocking request/response client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    buf: Vec<u8>,
    next_id: u64,
    max_frame: usize,
    tenant: u32,
}

impl Client {
    /// Connects with a generous (30 s) response timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::from_stream(TcpStream::connect(addr)?)
    }

    /// Wraps an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> io::Result<Client> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            buf: Vec::new(),
            next_id: 0,
            max_frame: DEFAULT_MAX_FRAME,
            tenant: 0,
        })
    }

    /// Overrides how long [`Client::request`] waits for a response.
    pub fn set_response_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Addresses every subsequent request to grammar tenant `tenant`
    /// (0 = the default tenant the frontend was built with).
    pub fn set_tenant(&mut self, tenant: u32) {
        self.tenant = tenant;
    }

    /// The tenant id requests are currently addressed to.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, verb: Verb, deadline_us: u32, payload: &[u8]) -> io::Result<Response> {
        self.next_id += 1;
        let id = self.next_id;
        write_request(
            &mut self.writer,
            &mut self.buf,
            id,
            verb,
            deadline_us,
            self.tenant,
            payload,
        )?;
        let response = read_response(&mut self.reader, self.max_frame).map_err(frame_to_io)?;
        if response.request_id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response for request {} while awaiting {id}", response.request_id),
            ));
        }
        Ok(response)
    }

    /// `PING`.
    pub fn ping(&mut self) -> io::Result<Response> {
        self.request(Verb::Ping, 0, &[])
    }

    /// `PARSE-TEXT` with an optional deadline budget (0 = none).
    pub fn parse_text(&mut self, text: &str, deadline_us: u32) -> io::Result<Response> {
        self.request(Verb::ParseText, deadline_us, text.as_bytes())
    }

    /// `PARSE-TOKENS` (whitespace-separated terminal names).
    pub fn parse_tokens(&mut self, sentence: &str, deadline_us: u32) -> io::Result<Response> {
        self.request(Verb::ParseTokens, deadline_us, sentence.as_bytes())
    }

    /// `ADD-RULE` in the textual BNF notation.
    pub fn add_rule(&mut self, rule: &str) -> io::Result<Response> {
        self.request(Verb::AddRule, 0, rule.as_bytes())
    }

    /// `DELETE-RULE` in the textual BNF notation.
    pub fn delete_rule(&mut self, rule: &str) -> io::Result<Response> {
        self.request(Verb::DeleteRule, 0, rule.as_bytes())
    }

    /// `OPEN-DOC`: open a document session with `text`. On `OK` the
    /// payload is `[doc_id: u64][accepted: u8][grammar_version: u64]`
    /// (decode with [`Client::open_doc_outcome`]).
    pub fn open_doc(&mut self, text: &str, deadline_us: u32) -> io::Result<Response> {
        self.request(Verb::OpenDoc, deadline_us, text.as_bytes())
    }

    /// Decodes an `OPEN-DOC` reply into `(doc_id, accepted,
    /// grammar_version)`.
    pub fn open_doc_outcome(response: &Response) -> Option<(u64, bool, u64)> {
        if response.payload.len() != 17 {
            return None;
        }
        let doc_id = u64::from_le_bytes(response.payload[0..8].try_into().ok()?);
        let version = u64::from_le_bytes(response.payload[9..17].try_into().ok()?);
        Some((doc_id, response.payload[8] != 0, version))
    }

    /// `PARSE-DELTA`: replace bytes `start..end` of document `doc_id`
    /// with `replacement` and re-parse.
    pub fn parse_delta(
        &mut self,
        doc_id: u64,
        start: u32,
        end: u32,
        replacement: &str,
        deadline_us: u32,
    ) -> io::Result<Response> {
        let payload =
            crate::protocol::parse_delta_payload(doc_id, start, end, replacement.as_bytes());
        self.request(Verb::ParseDelta, deadline_us, &payload)
    }

    /// `CLOSE-DOC`.
    pub fn close_doc(&mut self, doc_id: u64) -> io::Result<Response> {
        self.request(Verb::CloseDoc, 0, &doc_id.to_le_bytes())
    }

    /// `ATTACH-TENANT`: attach a tenant named `name`. With a non-empty
    /// `base`, the new tenant is a copy-on-write dialect fork of that
    /// tenant with `rules` added; with an empty `base`, `rules` is a full
    /// BNF grammar for an independent tenant. On `OK` the payload is the
    /// new tenant id as a little-endian `u32` (decode with
    /// [`Client::attach_tenant_outcome`]).
    pub fn attach_tenant(&mut self, name: &str, base: &str, rules: &str) -> io::Result<Response> {
        let payload = crate::protocol::attach_tenant_payload(name, base, rules);
        self.request(Verb::AttachTenant, 0, &payload)
    }

    /// Decodes an `ATTACH-TENANT` reply into the new tenant id.
    pub fn attach_tenant_outcome(response: &Response) -> Option<u32> {
        Some(u32::from_le_bytes(response.payload.as_slice().try_into().ok()?))
    }

    /// `CANCEL`: note a cancellation for `target_id` on this connection.
    /// The `OK` reply acknowledges the note; if the target is still queued
    /// it will be answered `CANCELLED` at dequeue. Mostly useful through
    /// the raw [`crate::protocol`] functions on a pipelined connection —
    /// this client waits for each reply, so by the time `cancel` can be
    /// called the previous request has already been answered.
    pub fn cancel(&mut self, target_id: u64) -> io::Result<Response> {
        self.request(Verb::Cancel, 0, &target_id.to_le_bytes())
    }

    /// The id of the most recently sent request (0 before any).
    pub fn last_id(&self) -> u64 {
        self.next_id
    }

    /// `STATS` as the raw JSON document.
    pub fn stats_json(&mut self) -> io::Result<String> {
        let response = self.request(Verb::Stats, 0, &[])?;
        String::from_utf8(response.payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "stats payload is not UTF-8"))
    }
}
