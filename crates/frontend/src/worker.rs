//! The worker pool: executes admitted requests against the shared
//! [`IpgServer`].
//!
//! Each worker thread maps 1:1 onto the serving layer's per-thread
//! request-context pool slot (PR 5): popping a job and calling a pooled
//! parse entry point *is* a context checkout, so the warm wire path runs
//! scan → parse → forest in recycled memory. Grammar edits (`ADD-RULE` /
//! `DELETE-RULE`) go through the server's non-draining epoch publication
//! like any library caller — they serialize among themselves on the
//! server's writer lock but never against in-flight parses.
//!
//! Deadline discipline (see [`crate::deadline`]): checked **at dequeue**,
//! again **at epoch-pin time** (after payload decoding, immediately
//! before the server call commits parser time), and — new with per-request
//! budgets — **inside the parse** via the `ParseBudget` the worker folds
//! the wire deadline into. All three reply `DEADLINE_EXCEEDED` and count
//! into `GenStats::shed_deadline`.
//!
//! Containment: each request executes under [`std::panic::catch_unwind`].
//! A panicking parse (injected fault or real bug) answers `ERROR` exactly
//! once, its request context is dropped instead of recycled
//! (`ctx_quarantined`), the tenant's registry accounting is still
//! refunded, and the worker thread survives at full pool strength
//! (`worker_panics`). Budget-killed parses answer `RESOURCE_EXHAUSTED`
//! (or `DEADLINE_EXCEEDED` for the deadline axis) the same exactly-once
//! way.
//!
//! Tenancy: jobs carry the wire tenant id; workers resolve it through
//! the shared [`GrammarRegistry`] (touching the tenant's clock position)
//! and complete with [`GrammarRegistry::after_request`], which drives
//! re-lazification accounting and byte-budget enforcement on the request
//! cadence. `ATTACH-TENANT` bypasses routing — it *creates* the route.

use std::collections::VecDeque;
use std::io::Write;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ipg::{ExhaustReason, GenStats, GrammarRegistry, IpgServer, LatencyHistogram, ServerError};

use crate::deadline::Deadline;
use crate::protocol::{
    decode_attach_tenant, decode_parse_delta, open_doc_payload, parse_outcome_payload,
    write_response, Status, Verb,
};
use crate::queue::BoundedQueue;
use crate::FrontendConfig;

/// The write side of one client connection, shared between its reader
/// thread (admission-time sheds) and whichever workers execute its jobs.
/// Replies from concurrent workers serialize on the mutex; the reply
/// buffer inside is reused, so steady-state replies do not allocate.
#[derive(Debug)]
pub(crate) struct Conn {
    writer: Mutex<ReplyWriter>,
    /// Cleared when the connection is poisoned (write failure/timeout);
    /// the reader loop exits and further replies are dropped on the floor
    /// (the peer is gone or hopeless).
    alive: AtomicBool,
    /// Request ids this connection has asked to cancel (`CANCEL` verb),
    /// consulted by workers at dequeue. Bounded: a client spamming cancels
    /// for ids that never existed evicts its own oldest notes, nothing
    /// else.
    cancelled: Mutex<VecDeque<u64>>,
}

/// Cap on remembered cancel notes per connection.
const MAX_CANCEL_NOTES: usize = 64;

#[derive(Debug)]
struct ReplyWriter {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            writer: Mutex::new(ReplyWriter {
                stream,
                buf: Vec::with_capacity(64),
            }),
            alive: AtomicBool::new(true),
            cancelled: Mutex::new(VecDeque::new()),
        }
    }

    pub(crate) fn alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    pub(crate) fn poison(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Notes a `CANCEL` for `request_id` (called by the connection
    /// reader, inline — cancels never queue behind the work they cancel).
    pub(crate) fn note_cancel(&self, request_id: u64) {
        let mut cancelled = self.cancelled.lock().unwrap();
        if cancelled.len() >= MAX_CANCEL_NOTES {
            cancelled.pop_front();
        }
        cancelled.push_back(request_id);
    }

    /// Consumes a cancel note for `request_id` if one exists.
    fn take_cancel(&self, request_id: u64) -> bool {
        let mut cancelled = self.cancelled.lock().unwrap();
        match cancelled.iter().position(|&id| id == request_id) {
            Some(at) => {
                cancelled.remove(at);
                true
            }
            None => false,
        }
    }
}

/// One admitted request, queued for a worker.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) conn: Arc<Conn>,
    pub(crate) request_id: u64,
    pub(crate) verb: Verb,
    /// Which registry tenant the request addresses (0 = the default
    /// tenant). Validated at admission; workers route through the
    /// registry so eviction/re-lazification bookkeeping sees every touch.
    pub(crate) tenant: u32,
    pub(crate) payload: Vec<u8>,
    pub(crate) deadline: Deadline,
    /// When the frame was read — latency is measured admit→reply, so the
    /// histograms include queueing delay (what the client experiences).
    pub(crate) admitted: Instant,
}

/// State shared by the accept loop, connection readers and workers.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) server: Arc<IpgServer>,
    /// The multi-tenant registry; the default `server` is attached as
    /// tenant 0. `ATTACH-TENANT` adds tenants at runtime, and every
    /// request routes through it (clock touch + budget enforcement).
    pub(crate) registry: Arc<GrammarRegistry>,
    pub(crate) queue: BoundedQueue<Job>,
    pub(crate) config: FrontendConfig,
    /// Frontend-side counters and the admit→reply latency histogram (the
    /// server keeps its own parse-time histogram underneath).
    pub(crate) stats: Mutex<GenStats>,
    /// Set once shutdown begins: stop accepting and admitting.
    pub(crate) draining: AtomicBool,
    /// With `draining`: shed queued jobs with `SHUTTING_DOWN` instead of
    /// executing them ([`crate::ShutdownMode::Shed`]).
    pub(crate) shed_on_drain: AtomicBool,
}

impl Shared {
    pub(crate) fn note(&self, f: impl FnOnce(&mut GenStats)) {
        f(&mut self.stats.lock().unwrap());
    }

    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// A point-in-time copy of the frontend stats with the queue's
    /// high-water mark folded in.
    pub(crate) fn stats_snapshot(&self) -> GenStats {
        let mut stats = *self.stats.lock().unwrap();
        stats.queue_depth_high_water =
            stats.queue_depth_high_water.max(self.queue.high_water());
        stats
    }
}

/// Writes one response frame to a connection; a failed or timed-out write
/// poisons the connection (slow-client protection on the write side).
pub(crate) fn reply(
    shared: &Shared,
    conn: &Conn,
    request_id: u64,
    status: Status,
    payload: &[u8],
) {
    if !conn.alive() {
        return;
    }
    let mut writer = conn.writer.lock().unwrap();
    let ReplyWriter { stream, buf } = &mut *writer;
    let result = write_response(stream, buf, request_id, status, payload)
        .and_then(|()| stream.flush());
    if let Err(e) = result {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            shared.note(|s| s.io_timeouts += 1);
        }
        conn.poison();
    }
}

/// The worker thread body: drain the admission queue until it closes.
pub(crate) fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        handle(shared, job);
    }
}

fn handle(shared: &Shared, job: Job) {
    // Deadline check #1: at dequeue. A request whose budget died in the
    // queue is shed without parsing — a worker-time refund that under
    // overload goes to requests that can still make their deadlines.
    if job.deadline.expired(Instant::now()) {
        shared.note(|s| s.shed_deadline += 1);
        reply(
            shared,
            &job.conn,
            job.request_id,
            Status::DeadlineExceeded,
            b"deadline expired in the admission queue",
        );
        return;
    }
    // Client cancellation: a `CANCEL` that raced ahead of this job answers
    // it `CANCELLED` at dequeue — definitive, no parser time spent.
    if job.conn.take_cancel(job.request_id) {
        shared.note(|s| s.parses_cancelled += 1);
        reply(
            shared,
            &job.conn,
            job.request_id,
            Status::Cancelled,
            b"cancelled by client request",
        );
        return;
    }
    // Shed-mode drain: queued jobs get a definitive reply, not execution.
    if shared.draining() && shared.shed_on_drain.load(Ordering::Acquire) {
        shared.note(|s| s.shed_shutdown += 1);
        reply(
            shared,
            &job.conn,
            job.request_id,
            Status::ShuttingDown,
            b"shutting down",
        );
        return;
    }
    let (status, payload) = execute(shared, &job);
    match status {
        Status::DeadlineExceeded => {
            // Deadline check #2 or the mid-parse budget fired inside
            // `execute`.
            shared.note(|s| s.shed_deadline += 1);
        }
        Status::ResourceExhausted => {
            let latency = job.admitted.elapsed();
            shared.note(|s| {
                s.parses += 1;
                s.parses_exhausted += 1;
                s.latency.record(latency);
            });
        }
        _ => {
            let latency = job.admitted.elapsed();
            shared.note(|s| {
                s.parses += 1;
                s.latency.record(latency);
            });
        }
    }
    reply(shared, &job.conn, job.request_id, status, &payload);
}

/// Executes one verb, returning the reply. `ATTACH-TENANT` goes to the
/// registry; everything else routes to the addressed tenant's server
/// (touching its clock position) and completes with
/// [`GrammarRegistry::after_request`] so re-lazification accounting and
/// budget enforcement run on the request cadence.
fn execute(shared: &Shared, job: &Job) -> (Status, Vec<u8>) {
    if job.verb == Verb::AttachTenant {
        return attach_tenant(shared, &job.payload);
    }
    // Admission already vetoed unknown tenants; a tenant can still be
    // unknown here only through a racing attach view, and the answer is
    // the same ERROR either way.
    let Some(server) = shared.registry.server(job.tenant) else {
        return (
            Status::Error,
            format!("unknown tenant {}", job.tenant).into_bytes(),
        );
    };
    // Panic isolation: a panicking parse (a grammar-triggered bug, an
    // injected fault) must not take the worker thread — and with it a
    // permanent slice of pool capacity — down. The unwind is caught here,
    // *inside* the tenant bracket, so `after_request` still refunds the
    // registry's per-request accounting; the request context unwinding
    // through the pooled entry points drops instead of recycling (its TLS
    // slot stays empty), which is exactly the quarantine a corrupted
    // context needs.
    let reply = catch_unwind(AssertUnwindSafe(|| route(shared, &server, job)));
    shared.registry.after_request(job.tenant);
    match reply {
        Ok(reply) => reply,
        Err(_) => {
            shared.note(|s| {
                s.worker_panics += 1;
                s.ctx_quarantined += 1;
            });
            (
                Status::Error,
                b"internal error: the parse panicked; its context was quarantined".to_vec(),
            )
        }
    }
}

/// Maps a server error to its wire status: budget exhaustion splits into
/// `DEADLINE_EXCEEDED` (the wire deadline observed mid-parse) and
/// `RESOURCE_EXHAUSTED` (fuel/byte caps); everything else is `ERROR`.
fn error_reply(e: ServerError) -> (Status, Vec<u8>) {
    let status = match e {
        ServerError::Exhausted(ExhaustReason::Deadline) => Status::DeadlineExceeded,
        ServerError::Exhausted(_) => Status::ResourceExhausted,
        _ => Status::Error,
    };
    (status, e.to_string().into_bytes())
}

/// Handles the `ATTACH-TENANT` verb: an empty base attaches an
/// independent tenant built from the BNF rules; a non-empty base forks
/// that tenant's epoch copy-on-write and applies the rules as a dialect
/// delta. The OK payload is the new tenant id (little-endian `u32`).
fn attach_tenant(shared: &Shared, payload: &[u8]) -> (Status, Vec<u8>) {
    let Some((name, base, rules)) = decode_attach_tenant(payload) else {
        return (
            Status::Error,
            b"attach-tenant payload shorter than its name/base prefix".to_vec(),
        );
    };
    let attached = if base.is_empty() {
        match IpgServer::from_bnf(rules) {
            Ok(server) => shared.registry.attach(name, server),
            Err(e) => return (Status::Error, e.to_string().into_bytes()),
        }
    } else {
        shared.registry.attach_dialect(name, base, rules)
    };
    match attached {
        Ok(id) => (Status::Ok, id.to_le_bytes().to_vec()),
        Err(e) => (Status::Error, e.to_string().into_bytes()),
    }
}

/// Executes one routed verb against the addressed tenant's server.
fn route(shared: &Shared, server: &IpgServer, job: &Job) -> (Status, Vec<u8>) {
    let utf8 = |payload: &[u8]| -> Result<String, (Status, Vec<u8>)> {
        String::from_utf8(payload.to_vec())
            .map_err(|_| (Status::Error, b"payload is not valid UTF-8".to_vec()))
    };
    // Deadline check #2: at epoch-pin time — the last moment before the
    // server call pins an epoch and commits parser time.
    let pin_expired = || job.deadline.expired(Instant::now());
    // The parse budget: the tenant's default, tightened by the frontend's
    // per-request config, tightened again by the wire deadline — so a
    // deadline that expires *after* the pin still cancels the parse from
    // inside the GSS loop at the next budget stride.
    let budget = server
        .default_budget()
        .merged(shared.config.parse_budget)
        .tightened_deadline(job.deadline.instant());
    match job.verb {
        Verb::Ping => (Status::Ok, Vec::new()),
        Verb::ParseText => match utf8(&job.payload) {
            Err(reply) => reply,
            Ok(text) => {
                if pin_expired() {
                    return (
                        Status::DeadlineExceeded,
                        b"deadline expired before epoch pin".to_vec(),
                    );
                }
                match server.parse_text_budgeted(&text, budget) {
                    Ok(parsed) => (
                        Status::Ok,
                        parse_outcome_payload(parsed.accepted(), parsed.grammar_version())
                            .to_vec(),
                    ),
                    Err(e) => error_reply(e),
                }
            }
        },
        Verb::ParseTokens => match utf8(&job.payload) {
            Err(reply) => reply,
            Ok(sentence) => {
                if pin_expired() {
                    return (
                        Status::DeadlineExceeded,
                        b"deadline expired before epoch pin".to_vec(),
                    );
                }
                match server.parse_sentence_budgeted(&sentence, budget) {
                    Ok(result) => (
                        Status::Ok,
                        parse_outcome_payload(result.accepted, result.grammar_version).to_vec(),
                    ),
                    Err(e) => error_reply(e),
                }
            }
        },
        Verb::AddRule => match utf8(&job.payload) {
            Err(reply) => reply,
            Ok(text) => {
                if pin_expired() {
                    return (
                        Status::DeadlineExceeded,
                        b"deadline expired before epoch pin".to_vec(),
                    );
                }
                match server.add_rule_text(&text) {
                    Ok(_) => (
                        Status::Ok,
                        parse_outcome_payload(true, server.grammar_version()).to_vec(),
                    ),
                    Err(e) => (Status::Error, e.to_string().into_bytes()),
                }
            }
        },
        Verb::DeleteRule => match utf8(&job.payload) {
            Err(reply) => reply,
            Ok(text) => {
                if pin_expired() {
                    return (
                        Status::DeadlineExceeded,
                        b"deadline expired before epoch pin".to_vec(),
                    );
                }
                match server.remove_rule_text(&text) {
                    Ok(_) => (
                        Status::Ok,
                        parse_outcome_payload(true, server.grammar_version()).to_vec(),
                    ),
                    Err(e) => (Status::Error, e.to_string().into_bytes()),
                }
            }
        },
        Verb::Stats => (Status::Ok, stats_json(shared).into_bytes()),
        Verb::OpenDoc => match utf8(&job.payload) {
            Err(reply) => reply,
            Ok(text) => {
                if pin_expired() {
                    return (
                        Status::DeadlineExceeded,
                        b"deadline expired before epoch pin".to_vec(),
                    );
                }
                match server.open_document_budgeted(&text, budget) {
                    Ok(id) => {
                        let accepted = server
                            .document_info(id)
                            .map(|info| info.accepted)
                            .unwrap_or(false);
                        (
                            Status::Ok,
                            open_doc_payload(id, accepted, server.grammar_version()).to_vec(),
                        )
                    }
                    Err(e) => error_reply(e),
                }
            }
        },
        Verb::ParseDelta => match decode_parse_delta(&job.payload) {
            None => (
                Status::Error,
                b"parse-delta payload shorter than its fixed prefix".to_vec(),
            ),
            Some((doc_id, start, end, replacement)) => match std::str::from_utf8(replacement) {
                Err(_) => (Status::Error, b"replacement is not valid UTF-8".to_vec()),
                Ok(replacement) => {
                    // The deadline is checked *before* the edit is applied:
                    // an expired delta is shed without mutating the session,
                    // so the client can retry it verbatim.
                    if pin_expired() {
                        return (
                            Status::DeadlineExceeded,
                            b"deadline expired before epoch pin".to_vec(),
                        );
                    }
                    match server.apply_edit_budgeted(
                        doc_id,
                        start as usize..end as usize,
                        replacement,
                        budget,
                    ) {
                        Ok(outcome) => (
                            Status::Ok,
                            parse_outcome_payload(outcome.accepted(), outcome.grammar_version())
                                .to_vec(),
                        ),
                        Err(e) => error_reply(e),
                    }
                }
            },
        },
        Verb::CloseDoc => {
            if job.payload.len() != 8 {
                return (Status::Error, b"close-doc payload must be a doc id".to_vec());
            }
            let doc_id = u64::from_le_bytes(job.payload[..8].try_into().expect("8 bytes"));
            match server.close_document(doc_id) {
                Ok(()) => (Status::Ok, Vec::new()),
                Err(e) => (Status::Error, e.to_string().into_bytes()),
            }
        }
        // Handled in `execute` before tenant routing.
        Verb::AttachTenant => unreachable!("attach-tenant is not tenant-routed"),
        // Handled inline by the connection reader; never queued.
        Verb::Cancel => unreachable!("cancel is handled at admission"),
    }
}

fn histogram_json(h: &LatencyHistogram) -> String {
    let (p50, p99, p999) = h.percentiles_us();
    format!(
        "{{\"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {p50}, \"p99_us\": {p99}, \
         \"p999_us\": {p999}, \"max_us\": {}}}",
        h.count(),
        h.mean_us(),
        h.max_us()
    )
}

/// The STATS verb's payload: frontend admission/latency counters, the
/// default server's merged [`GenStats`], and the registry's residency
/// gauges (deduped across tenants; `budget` 0 means unbounded) —
/// hand-rolled JSON (the vendored serde stub has no serializer).
pub(crate) fn stats_json(shared: &Shared) -> String {
    let frontend = shared.stats_snapshot();
    let server = shared.server.stats();
    let merged = server.merged();
    let registry = shared.registry.stats();
    let budget = shared.registry.budget();
    format!(
        "{{\n  \"workers\": {},\n  \"queue_capacity\": {},\n  \"queue_depth\": {},\n  \
         \"queue_high_water\": {},\n  \"draining\": {},\n  \"grammar_version\": {},\n  \
         \"epoch\": {},\n  \"frontend\": {{\"requests\": {}, \"shed_overload\": {}, \
         \"shed_deadline\": {}, \"shed_shutdown\": {}, \"malformed\": {}, \"io_timeouts\": {}, \
         \"cancelled\": {}, \"resource_exhausted\": {}, \"worker_panics\": {}, \
         \"ctx_quarantined\": {}, \
         \"latency_us\": {}}},\n  \"server\": {{\"parses\": {}, \"action_calls\": {}, \
         \"epochs_published\": {}, \"ctx_reused\": {}, \"effective_workers\": {}, \
         \"open_documents\": {}, \"reparse_incremental\": {}, \"reparse_full\": {}, \
         \"tokens_relexed\": {}, \"states_rerun\": {}, \
         \"parses_cancelled\": {}, \"parses_exhausted\": {}, \"ctx_quarantined\": {}, \
         \"latency_us\": {}}},\n  \"registry\": {{\"tenants_active\": {}, \"budget_bytes\": {}, \
         \"resident_bytes\": {}, \"resident_high_water\": {}, \"chunks_evicted\": {}, \
         \"chunks_relazified\": {}}}\n}}",
        frontend.effective_workers,
        shared.queue.capacity(),
        shared.queue.depth(),
        frontend.queue_depth_high_water,
        shared.draining(),
        shared.server.grammar_version(),
        shared.server.epoch_number(),
        frontend.parses,
        frontend.shed_overload,
        frontend.shed_deadline,
        frontend.shed_shutdown,
        frontend.rejected_malformed,
        frontend.io_timeouts,
        frontend.parses_cancelled,
        frontend.parses_exhausted,
        frontend.worker_panics,
        frontend.ctx_quarantined,
        histogram_json(&frontend.latency),
        merged.parses,
        merged.action_calls,
        merged.epochs_published,
        merged.ctx_reused,
        merged.effective_workers,
        shared.server.open_documents(),
        merged.reparse_incremental,
        merged.reparse_full,
        merged.tokens_relexed,
        merged.states_rerun,
        merged.parses_cancelled,
        merged.parses_exhausted,
        merged.ctx_quarantined,
        histogram_json(&merged.latency),
        registry.tenants_active,
        if budget == usize::MAX { 0 } else { budget },
        registry.resident_bytes,
        registry.resident_high_water,
        registry.chunks_evicted,
        registry.chunks_relazified,
    )
}
