//! Per-request deadlines.
//!
//! The protocol carries a *relative* budget (`deadline_us`, measured from
//! the moment the server read the frame), converted here to an absolute
//! [`Instant`] once, on admission. The frontend checks it twice:
//!
//! 1. **at dequeue** — a request whose budget was consumed while it sat in
//!    the admission queue is shed with `DEADLINE_EXCEEDED` *without
//!    parsing* (spending a worker on it could not produce a useful reply,
//!    and under overload would steal time from requests that can still
//!    make their deadlines), and
//! 2. **at epoch-pin time** — immediately before the worker pins a grammar
//!    epoch and commits parser time, after payload decoding; a request
//!    whose budget ran out between dequeue and pin is shed the same way —
//!    and then
//! 3. **mid-parse**: the deadline is folded into the request's
//!    `ParseBudget` ([`Deadline::instant`]), so the GSS driver and the
//!    fused token source observe it cooperatively every budget stride. A
//!    runaway parse (ambiguity blow-up, adversarial input) is cancelled
//!    from the inside with `DEADLINE_EXCEEDED`, its ballooned context
//!    quarantined instead of recycled, and the worker moves on — a late
//!    reply is bounded by one stride, not by the whole parse.

use std::time::{Duration, Instant};

/// An absolute per-request deadline (or none).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No deadline: the request waits as long as the queue lets it.
    pub fn none() -> Deadline {
        Deadline(None)
    }

    /// Converts the protocol's relative budget (`0` = none) into an
    /// absolute deadline anchored at `now` (the frame-read instant).
    pub fn from_budget_us(deadline_us: u32, now: Instant) -> Deadline {
        if deadline_us == 0 {
            Deadline(None)
        } else {
            Deadline(Some(now + Duration::from_micros(u64::from(deadline_us))))
        }
    }

    /// Whether the deadline has passed at `now`.
    pub fn expired(&self, now: Instant) -> bool {
        match self.0 {
            Some(deadline) => now >= deadline,
            None => false,
        }
    }

    /// The absolute deadline instant, if any — for folding into a
    /// `ParseBudget` so the parse loops observe it mid-flight.
    pub fn instant(&self) -> Option<Instant> {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_means_no_deadline() {
        let now = Instant::now();
        let deadline = Deadline::from_budget_us(0, now);
        assert_eq!(deadline, Deadline::none());
        assert!(!deadline.expired(now + Duration::from_secs(3600)));
    }

    #[test]
    fn budgets_expire_relative_to_their_anchor() {
        let now = Instant::now();
        let deadline = Deadline::from_budget_us(1_000, now);
        assert!(!deadline.expired(now));
        assert!(!deadline.expired(now + Duration::from_micros(999)));
        assert!(deadline.expired(now + Duration::from_micros(1_000)));
        assert!(deadline.expired(now + Duration::from_secs(1)));
    }
}
