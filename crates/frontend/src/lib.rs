//! # ipg-frontend — the network face of the IPG serving stack
//!
//! A std-only TCP frontend (hand-rolled accept loop + worker pool; no
//! async runtime) exposing the incremental parser generator over the
//! length-prefixed binary protocol of [`protocol`]: `PING`, `PARSE-TEXT`,
//! `PARSE-TOKENS`, `ADD-RULE`, `DELETE-RULE`, `STATS`, the document verbs
//! (`OPEN-DOC`, `PARSE-DELTA`, `CLOSE-DOC`) and `ATTACH-TENANT`.
//!
//! The frontend is **multi-tenant**: every request header carries a
//! tenant id, routed through a shared [`ipg::GrammarRegistry`] whose
//! tenant 0 is the server passed to [`Frontend::bind`]. `ATTACH-TENANT`
//! adds tenants at runtime — independent grammars, or copy-on-write
//! dialect forks of an attached base that share its resident chunks.
//! A configurable byte budget ([`FrontendConfig::registry_budget`])
//! bounds the combined derived state; over budget, cold tenants are
//! evicted back to their persistent grammars and rebuilt lazily on their
//! next touch. Requests addressing unknown tenants are answered `ERROR`
//! at admission, before they can consume a queue slot or a worker parse.
//!
//! ## The wire path
//!
//! ```text
//! accept ─▶ reader thread (per connection)
//!              │  read frame (max-size checked, timeouts classified)
//!              ▼
//!          admission: BoundedQueue::try_push
//!              │            │
//!              │            └─ full/closed ─▶ OVERLOADED / SHUTTING_DOWN
//!              ▼                              (immediate, never silent)
//!          worker pool (1:1 with pooled parse contexts)
//!              │  deadline check at dequeue ─▶ DEADLINE_EXCEEDED
//!              │  deadline check at epoch pin ─▶ DEADLINE_EXCEEDED
//!              ▼
//!          checkout ctx ─▶ pin epoch ─▶ scan+parse (zero-alloc warm path)
//!              │
//!              ▼
//!          reply (reused buffer, write timeout poisons slow clients)
//! ```
//!
//! ## Robustness properties
//!
//! * **Every request gets exactly one reply.** Admission failure, deadline
//!   expiry, shutdown and parse errors are all *replies*, not drops; the
//!   only requests without a reply are those on connections the client
//!   itself broke (or poisoned with a malformed/stalled frame).
//! * **Bounded backlog.** The admission queue is the only buffer; beyond
//!   it, offered load is shed in microseconds with `OVERLOADED`. Admitted
//!   latency stays bounded by `queue depth × service time` — under
//!   overload the latency curve plateaus instead of collapsing.
//! * **Slow clients cannot wedge the server.** Reads and writes carry
//!   timeouts; a peer that stalls mid-frame (or never drains its replies)
//!   poisons only its own connection. Frame sizes are validated before
//!   allocation.
//! * **Graceful drain.** [`Frontend::shutdown`] stops accepting, lets
//!   already-admitted requests finish ([`ShutdownMode::Drain`]) or sheds
//!   them with definitive `SHUTTING_DOWN` replies ([`ShutdownMode::Shed`]),
//!   then joins every thread. No request admitted before the drain began
//!   is left unanswered.
//! * **Runaway parses are contained.** Every routed parse runs under a
//!   [`ipg::ParseBudget`] (tenant default ∧ [`FrontendConfig::parse_budget`]
//!   ∧ wire deadline) that the GSS loop observes cooperatively every few
//!   dozen steps: an ambiguity blow-up or adversarial input is cancelled
//!   mid-flight with `RESOURCE_EXHAUSTED`/`DEADLINE_EXCEEDED` instead of
//!   monopolising a worker, and its ballooned request context is
//!   quarantined, not recycled. `CANCEL` (handled inline by the reader)
//!   answers still-queued requests `CANCELLED` at dequeue.
//! * **Panics don't shrink the pool.** Workers run each request under
//!   `catch_unwind`: a panicking parse answers `ERROR` exactly once, its
//!   context is dropped, registry accounting is refunded, and the worker
//!   thread keeps serving — proven by the fault-injection chaos suite
//!   (`ipg_glr::FaultPlan`), not assumed.

pub mod client;
pub mod deadline;
pub mod protocol;
pub mod queue;
mod worker;

pub use client::Client;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ipg::{GenStats, GrammarRegistry, IpgServer};

use deadline::Deadline;
use protocol::{read_request, FrameError, Status, Verb};
use queue::{BoundedQueue, PushError};
use worker::{reply, Conn, Job, Shared};

/// Tuning knobs of a [`Frontend`]. The defaults favour robustness tests
/// and small machines; a production deployment would mainly raise
/// `queue_depth` to its latency budget divided by the mean service time.
#[derive(Clone, Copy, Debug)]
pub struct FrontendConfig {
    /// Worker threads (0 = one per available core). Each worker owns one
    /// pooled parse context once warm.
    pub workers: usize,
    /// Admission queue capacity (min 1). This bounds the worst-case
    /// queueing delay of an *admitted* request.
    pub queue_depth: usize,
    /// Maximum frame size accepted from a client, checked before any
    /// allocation.
    pub max_frame: usize,
    /// Socket read timeout: how long a reader blocks before re-checking
    /// the drain flag (idle) or giving up on a mid-frame stall (slow
    /// client). Also bounds shutdown's reader-join time.
    pub read_timeout: Duration,
    /// Socket write timeout: a client that never drains its replies is
    /// poisoned after this long.
    pub write_timeout: Duration,
    /// Global byte budget over the deduped resident derived state of all
    /// registry tenants (0 = unbounded, never evict). Over budget, the
    /// coldest tenants are re-lazified back to their persistent grammars
    /// — see [`ipg::GrammarRegistry`].
    pub registry_budget: usize,
    /// Budget-enforcement cadence: one pass per this many completed
    /// requests (clamped to at least 1; irrelevant when unbounded).
    pub registry_sweep_every: usize,
    /// Per-request parse budget applied to every routed parse, merged
    /// (tightest-per-axis) with the tenant server's own default budget and
    /// tightened by the request's wire deadline. [`ipg::ParseBudget::UNLIMITED`]
    /// (the default) adds no caps beyond the wire deadline — which alone
    /// already makes `DEADLINE_EXCEEDED` fire *mid-parse* instead of only
    /// at dequeue/pin time.
    pub parse_budget: ipg::ParseBudget,
}

impl Default for FrontendConfig {
    fn default() -> FrontendConfig {
        FrontendConfig {
            workers: 0,
            queue_depth: 256,
            max_frame: protocol::DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(1_000),
            registry_budget: 0,
            registry_sweep_every: 64,
            parse_budget: ipg::ParseBudget::UNLIMITED,
        }
    }
}

/// What happens to already-admitted requests on shutdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Execute everything already in the queue, then stop. New arrivals
    /// are refused with `SHUTTING_DOWN`.
    Drain,
    /// Reply `SHUTTING_DOWN` to queued requests instead of executing them
    /// — fastest exit that still answers everything.
    Shed,
}

/// A running network frontend: an accept thread, one reader thread per
/// connection, and a worker pool sharing one [`IpgServer`].
#[derive(Debug)]
pub struct Frontend {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
}

impl Frontend {
    /// Binds `addr` and starts serving `server` with `config`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        mut config: FrontendConfig,
        server: Arc<IpgServer>,
    ) -> io::Result<Frontend> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        if config.workers == 0 {
            config.workers = thread::available_parallelism().map_or(1, |n| n.get());
        }
        let worker_count = config.workers;
        let stats = GenStats {
            effective_workers: worker_count,
            ..GenStats::default()
        };
        let registry = Arc::new(if config.registry_budget == 0 {
            GrammarRegistry::unbounded()
        } else {
            GrammarRegistry::new(config.registry_budget, config.registry_sweep_every)
        });
        registry
            .attach_shared("default", Arc::clone(&server))
            .expect("fresh registry accepts the default tenant");
        let shared = Arc::new(Shared {
            server,
            registry,
            queue: BoundedQueue::new(config.queue_depth),
            config,
            stats: Mutex::new(stats),
            draining: AtomicBool::new(false),
            shed_on_drain: AtomicBool::new(false),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ipg-fe-worker-{i}"))
                    .spawn(move || worker::worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("ipg-fe-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conns))?
        };
        Ok(Frontend {
            shared,
            local_addr,
            accept: Some(accept),
            conns,
            workers,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server behind the frontend (registry tenant 0, `"default"`).
    pub fn server(&self) -> &Arc<IpgServer> {
        &self.shared.server
    }

    /// The multi-tenant grammar registry behind the frontend. Tenants
    /// attached here (or over the wire with `ATTACH-TENANT`) are
    /// addressable by the request header's tenant field.
    pub fn registry(&self) -> &Arc<GrammarRegistry> {
        &self.shared.registry
    }

    /// A snapshot of the frontend-side counters (sheds, malformed frames,
    /// admit→reply latency, queue high-water mark).
    pub fn stats(&self) -> GenStats {
        self.shared.stats_snapshot()
    }

    /// The `STATS` verb's JSON document, server side.
    pub fn stats_json(&self) -> String {
        worker::stats_json(&self.shared)
    }

    /// Stops the frontend: stop accepting, answer or shed everything
    /// admitted (per `mode`), join every thread. Returns the final
    /// frontend stats. Connections still held open by clients are given
    /// `SHUTTING_DOWN` replies for frames that arrive during the drain and
    /// are closed once idle for one read-timeout.
    pub fn shutdown(mut self, mode: ShutdownMode) -> GenStats {
        self.shutdown_in_place(mode)
    }

    fn shutdown_in_place(&mut self, mode: ShutdownMode) -> GenStats {
        if mode == ShutdownMode::Shed {
            self.shared.shed_on_drain.store(true, Ordering::Release);
        }
        self.shared.draining.store(true, Ordering::Release);
        // The accept thread blocks in `accept`; a throwaway connection
        // wakes it to observe the drain flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // No reader can be spawned past this point. Existing readers wake
        // at least every read-timeout, see the flag, and exit once their
        // connection is idle.
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for conn in conns {
            let _ = conn.join();
        }
        // Close admissions for good; the workers drain what was admitted
        // (executing or shedding it, per mode) and exit on the closed
        // queue.
        self.shared.queue.close();
        for worker in std::mem::take(&mut self.workers) {
            let _ = worker.join();
        }
        self.shared.stats_snapshot()
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        // A dropped-without-shutdown frontend still drains cleanly (shed
        // mode: fastest exit that answers everything). After an explicit
        // `shutdown` the handles are empty and this is a no-op.
        if self.accept.is_some() || !self.workers.is_empty() {
            self.shutdown_in_place(ShutdownMode::Shed);
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, conns: &Mutex<Vec<JoinHandle<()>>>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.draining() {
                    // The shutdown wake-up connection (or a very late
                    // client): refuse by closing.
                    break;
                }
                let reader = {
                    let shared = Arc::clone(shared);
                    thread::Builder::new()
                        .name("ipg-fe-conn".into())
                        .spawn(move || connection_loop(stream, &shared))
                };
                // On spawn failure (resource exhaustion) the connection is
                // dropped — refusing is the shed, not a hang.
                if let Ok(handle) = reader {
                    conns.lock().unwrap().push(handle);
                }
            }
            Err(_) if shared.draining() => break,
            Err(_) => {
                // Transient accept failure (EMFILE, ECONNABORTED, ...):
                // back off briefly instead of spinning.
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// One connection's reader: decode frames, admit or shed, loop. Exits on
/// EOF, poison (slow client, malformed frame, dead writer) or idle during
/// a drain.
fn connection_loop(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(Conn::new(write_half));
    let mut read_half = io::BufReader::new(stream);
    loop {
        if !conn.alive() {
            return;
        }
        match read_request(&mut read_half, shared.config.max_frame) {
            Ok(request) => {
                let admitted = Instant::now();
                if shared.draining() {
                    // Frames that were already in flight when the drain
                    // began still get their one definitive reply.
                    shared.note(|s| s.shed_shutdown += 1);
                    reply(
                        shared,
                        &conn,
                        request.request_id,
                        Status::ShuttingDown,
                        b"shutting down",
                    );
                    continue;
                }
                // `CANCEL` is handled inline by the reader — queueing a
                // cancel behind the very request it cancels would defeat
                // it. The note is consumed by whichever worker dequeues
                // the target; the `OK` here only acknowledges the note.
                if request.verb == Verb::Cancel {
                    if request.payload.len() == 8 {
                        let target =
                            u64::from_le_bytes(request.payload[..8].try_into().expect("8 bytes"));
                        conn.note_cancel(target);
                        reply(shared, &conn, request.request_id, Status::Ok, &[]);
                    } else {
                        reply(
                            shared,
                            &conn,
                            request.request_id,
                            Status::Error,
                            b"cancel payload must be a request id",
                        );
                    }
                    continue;
                }
                // Unknown tenants are refused at admission — an `ERROR`
                // reply that never consumes a queue slot or a worker
                // parse. (`ATTACH-TENANT` is exempt: it creates tenants,
                // it doesn't address one.)
                if request.verb != Verb::AttachTenant
                    && shared.registry.name_of(request.tenant).is_none()
                {
                    reply(
                        shared,
                        &conn,
                        request.request_id,
                        Status::Error,
                        format!("unknown tenant {}", request.tenant).as_bytes(),
                    );
                    continue;
                }
                let job = Job {
                    conn: Arc::clone(&conn),
                    request_id: request.request_id,
                    verb: request.verb,
                    tenant: request.tenant,
                    payload: request.payload,
                    deadline: Deadline::from_budget_us(request.deadline_us, admitted),
                    admitted,
                };
                match shared.queue.try_push(job) {
                    Ok(()) => {}
                    Err(PushError::Full(job)) => {
                        shared.note(|s| s.shed_overload += 1);
                        reply(
                            shared,
                            &job.conn,
                            job.request_id,
                            Status::Overloaded,
                            b"admission queue full",
                        );
                    }
                    Err(PushError::Closed(job)) => {
                        shared.note(|s| s.shed_shutdown += 1);
                        reply(
                            shared,
                            &job.conn,
                            job.request_id,
                            Status::ShuttingDown,
                            b"shutting down",
                        );
                    }
                }
            }
            // No traffic: poll the drain flag, keep listening otherwise.
            Err(FrameError::Idle) => {
                if shared.draining() {
                    return;
                }
            }
            Err(FrameError::Eof) => return,
            Err(FrameError::SlowClient) => {
                shared.note(|s| s.io_timeouts += 1);
                conn.poison();
                return;
            }
            Err(FrameError::Malformed { request_id, reason }) => {
                shared.note(|s| s.rejected_malformed += 1);
                if let Some(id) = request_id {
                    reply(shared, &conn, id, Status::Malformed, reason.as_bytes());
                }
                // A malformed frame desynchronises the stream; only this
                // connection pays for it.
                conn.poison();
                return;
            }
            Err(FrameError::Io(_)) => return,
        }
    }
}
