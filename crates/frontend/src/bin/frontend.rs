//! `ipg-frontend` — serve an incremental parser generator over TCP.
//!
//! ```text
//! ipg-frontend [--addr HOST:PORT] [--grammar sdf|boolean] [--workers N]
//!              [--queue-depth N] [--read-timeout-ms N] [--write-timeout-ms N]
//!              [--no-prewarm]
//! ```
//!
//! Serves the SDF-definition-of-SDF benchmark grammar (default) or the
//! small boolean-expression grammar over the frame protocol of
//! `ipg_frontend::protocol`. The process runs until killed; admission
//! control (bounded queue, deadlines, load shedding) is always on. Prints
//! the bound address on stdout (`listening on ...`) so harnesses binding
//! port 0 can discover it.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use ipg::{IpgServer, IpgSession};
use ipg_frontend::{Frontend, FrontendConfig};
use ipg_grammar::fixtures;
use ipg_lexer::simple_scanner;
use ipg_sdf::fixtures::{measurement_inputs, sdf_grammar_and_scanner};
use ipg_sdf::NormalizedSdf;

struct Options {
    addr: String,
    grammar: String,
    prewarm: bool,
    config: FrontendConfig,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7433".to_owned(),
        grammar: "sdf".to_owned(),
        prewarm: true,
        config: FrontendConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--grammar" => options.grammar = value("--grammar")?,
            "--workers" => {
                options.config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects a number".to_owned())?;
            }
            "--queue-depth" => {
                options.config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth expects a number".to_owned())?;
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|_| "--read-timeout-ms expects a number".to_owned())?;
                options.config.read_timeout = Duration::from_millis(ms);
            }
            "--write-timeout-ms" => {
                let ms: u64 = value("--write-timeout-ms")?
                    .parse()
                    .map_err(|_| "--write-timeout-ms expects a number".to_owned())?;
                options.config.write_timeout = Duration::from_millis(ms);
            }
            "--no-prewarm" => options.prewarm = false,
            "--help" | "-h" => {
                return Err("usage: ipg-frontend [--addr HOST:PORT] [--grammar sdf|boolean] \
                            [--workers N] [--queue-depth N] [--read-timeout-ms N] \
                            [--write-timeout-ms N] [--no-prewarm]"
                    .to_owned());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(options)
}

fn build_server(grammar: &str) -> Result<(IpgServer, Vec<&'static str>), String> {
    match grammar {
        "sdf" => {
            let NormalizedSdf { grammar, scanner } = sdf_grammar_and_scanner();
            let prewarm = measurement_inputs().into_iter().map(|i| i.text).collect();
            Ok((
                IpgServer::new(IpgSession::new(grammar)).with_scanner(scanner),
                prewarm,
            ))
        }
        "boolean" => Ok((
            IpgServer::new(IpgSession::new(fixtures::booleans()))
                .with_scanner(simple_scanner(&["true", "false", "or", "and"])),
            vec!["true or false and true"],
        )),
        other => Err(format!("unknown grammar {other} (expected sdf or boolean)")),
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let (server, prewarm) = match build_server(&options.grammar) {
        Ok(built) => built,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let server = Arc::new(server);
    if options.prewarm {
        // Expand the tables and populate the DFA snapshot once so the
        // first network requests hit the warm zero-alloc path instead of
        // paying first-parse expansion.
        for text in prewarm {
            if let Err(e) = server.parse_text_pooled(text) {
                eprintln!("prewarm parse failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let frontend = match Frontend::bind(&options.addr, options.config, server) {
        Ok(frontend) => frontend,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", options.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", frontend.local_addr());
    // Serve until killed. The frontend's own threads do all the work;
    // parking the main thread keeps the process alive without spinning.
    loop {
        std::thread::park();
    }
}
