//! The bounded admission queue.
//!
//! This queue is the frontend's overload valve: its depth is the *only*
//! backlog the server ever accumulates. When it is full, [`BoundedQueue::
//! try_push`] fails **immediately** and the caller sheds the request with
//! an `OVERLOADED` reply — never a silent drop, never an unbounded buffer
//! whose queueing delay grows until every reply is useless. Under offered
//! load beyond capacity the latency of *admitted* requests is therefore
//! bounded by `depth × service time` while the excess is turned away in
//! microseconds: the load/latency curve flattens into a plateau instead of
//! collapsing.
//!
//! Plain `Mutex<VecDeque> + Condvar` — push and pop are a few dozen
//! nanoseconds against parse times in the tens of microseconds, and a
//! mutex keeps close/drain semantics exact (no lock-free ABA corner
//! cases in the shutdown path). The queue also tracks its depth
//! high-water mark, reported through `GenStats::queue_depth_high_water`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused; the rejected item rides back to the caller so
/// it can be shed with a reply.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — shed with `OVERLOADED`.
    Full(T),
    /// The queue is closed (draining for shutdown) — shed with
    /// `SHUTTING_DOWN`.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// A bounded multi-producer multi-consumer queue with immediate-failure
/// admission and drain-on-close semantics.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                high_water: 0,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits `item`, or fails immediately — no blocking producer path
    /// exists, by design: admission control must answer *now*.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        inner.high_water = inner.high_water.max(depth);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Takes the oldest item, blocking while the queue is empty and open.
    /// Returns `None` only when the queue is closed **and** empty — after
    /// close, every already-admitted item is still handed out, so each
    /// admitted request gets its reply (executed or shed by the worker,
    /// depending on the drain mode).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).unwrap();
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and consumers drain the remaining items before seeing `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.available.notify_all();
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.inner.lock().unwrap().high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn admits_to_capacity_then_sheds() {
        let queue = BoundedQueue::new(2);
        assert!(queue.try_push(1).is_ok());
        assert!(queue.try_push(2).is_ok());
        match queue.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.high_water(), 2);
        // Popping frees a slot again: shedding is load-, not history-based.
        assert_eq!(queue.pop(), Some(1));
        assert!(queue.try_push(4).is_ok());
        assert_eq!(queue.high_water(), 2);
    }

    #[test]
    fn close_drains_admitted_items_then_reports_none() {
        let queue = BoundedQueue::new(4);
        queue.try_push("a").unwrap();
        queue.try_push("b").unwrap();
        queue.close();
        match queue.try_push("c") {
            Err(PushError::Closed("c")) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        // Every admitted item still comes out; then the closed signal.
        assert_eq!(queue.pop(), Some("a"));
        assert_eq!(queue.pop(), Some("b"));
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let queue = Arc::new(BoundedQueue::<u32>::new(1));
        let consumer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.pop())
        };
        // Give the consumer time to block, then close; it must wake with
        // `None` instead of sleeping forever.
        thread::sleep(std::time::Duration::from_millis(20));
        queue.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let queue = BoundedQueue::new(0);
        assert_eq!(queue.capacity(), 1);
        assert!(queue.try_push(1).is_ok());
        assert!(matches!(queue.try_push(2), Err(PushError::Full(2))));
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let queue = Arc::new(BoundedQueue::new(8));
        let popped = Arc::new(Mutex::new(Vec::new()));
        let shed = Arc::new(Mutex::new(0usize));
        thread::scope(|scope| {
            for producer in 0..4 {
                let queue = Arc::clone(&queue);
                let shed = Arc::clone(&shed);
                scope.spawn(move || {
                    for i in 0..100 {
                        if queue.try_push(producer * 1000 + i).is_err() {
                            *shed.lock().unwrap() += 1;
                        }
                    }
                });
            }
            for _ in 0..2 {
                let queue = Arc::clone(&queue);
                let popped = Arc::clone(&popped);
                scope.spawn(move || {
                    while let Some(item) = queue.pop() {
                        popped.lock().unwrap().push(item);
                    }
                });
            }
            // Let the producers finish, then close to release consumers.
            thread::sleep(std::time::Duration::from_millis(50));
            queue.close();
        });
        let popped = popped.lock().unwrap();
        let shed = *shed.lock().unwrap();
        assert_eq!(popped.len() + shed, 400, "no item lost or duplicated");
        assert!(queue.high_water() <= 8);
    }
}
