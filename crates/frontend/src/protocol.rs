//! The wire protocol: simple length-prefixed binary frames.
//!
//! Every frame is a little-endian `u32` length prefix (counting the bytes
//! *after* the prefix) followed by a fixed header and a verb-specific
//! payload:
//!
//! ```text
//! request:   u32 len | u64 request_id | u8 verb   | u32 deadline_us | u32 tenant | payload
//! response:  u32 len | u64 request_id | u8 status | payload
//! ```
//!
//! * `deadline_us` is a **relative time budget** in microseconds, measured
//!   from the moment the server reads the frame (0 = no deadline). A
//!   relative budget needs no clock synchronisation between client and
//!   server; the server converts it to an absolute instant on arrival and
//!   checks it at dequeue, at epoch-pin time, and **inside the parse
//!   loops** (the GSS driver re-checks every budget stride, so a deadline
//!   that expires mid-parse still cancels cooperatively).
//! * `CANCEL` (verb 10) cancels a queued request by id; `RESOURCE_EXHAUSTED`
//!   and `CANCELLED` are the matching terminal statuses for budget-killed
//!   and client-cancelled requests — both are definitive: every admitted
//!   request still gets exactly one reply.
//! * `tenant` addresses a grammar tenant of the server's registry
//!   (`ipg::GrammarRegistry`); tenant 0 is the default tenant every
//!   frontend has. Requests naming an unattached tenant are answered
//!   `ERROR` at admission, before a worker parse is consumed.
//! * Parse responses carry `[accepted: u8][grammar_version: u64]`; edit
//!   responses carry `[1][grammar_version]`; `STATS` carries a JSON
//!   document; errors carry a UTF-8 message.
//!
//! Reading is defensive by construction: the length prefix is validated
//! against the configured maximum frame size *before* anything is
//! allocated or read, unknown verbs are rejected, and a read timeout is
//! classified as **idle** (at a frame boundary — the connection simply has
//! no traffic) or **slow-client** (mid-frame — the peer started a frame
//! and stalled, the case the timeouts exist to bound). Malformed input
//! poisons only the connection that sent it.

use std::io::{self, Read, Write};

/// Bytes of a request header after the length prefix
/// (`request_id` + `verb` + `deadline_us` + `tenant`).
pub const REQUEST_HEADER_LEN: usize = 8 + 1 + 4 + 4;

/// Bytes of a response header after the length prefix
/// (`request_id` + `status`).
pub const RESPONSE_HEADER_LEN: usize = 8 + 1;

/// Default cap on a frame's post-prefix length (1 MiB).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Request verbs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Verb {
    /// Liveness probe; empty payload, empty `OK` reply.
    Ping = 0,
    /// Scan + parse the payload (UTF-8 text) with the epoch's scanner.
    ParseText = 1,
    /// Parse the payload as a whitespace-separated sentence of terminal
    /// names (the pre-lexed form).
    ParseTokens = 2,
    /// `ADD-RULE`: the payload is a rule in the textual BNF notation.
    AddRule = 3,
    /// `DELETE-RULE`: the payload is a rule in the textual BNF notation.
    DeleteRule = 4,
    /// Server + frontend statistics as a JSON document.
    Stats = 5,
    /// `OPEN-DOC`: open a document session for incremental re-parse. The
    /// payload is the initial UTF-8 text; the `OK` reply carries
    /// `[doc_id: u64][accepted: u8][grammar_version: u64]`.
    OpenDoc = 6,
    /// `PARSE-DELTA`: apply one edit to an open document and re-parse
    /// (incrementally when the pinned epoch is current). The payload is
    /// `[doc_id: u64][start: u32][end: u32][replacement bytes]` with
    /// `start..end` a byte range of the current text; the reply is the
    /// standard parse-outcome payload.
    ParseDelta = 7,
    /// `CLOSE-DOC`: close a document session. The payload is
    /// `[doc_id: u64]`; the reply is empty `OK`.
    CloseDoc = 8,
    /// `ATTACH-TENANT`: attach a new grammar tenant to the registry. The
    /// payload is `[name_len: u8][name][base_len: u8][base][rules: utf-8]`
    /// (see [`attach_tenant_payload`]): with a base name, the tenant is a
    /// copy-on-write **dialect** fork of that tenant with `rules` added;
    /// without one, `rules` is a full BNF grammar for an independent
    /// tenant. The `OK` reply carries `[tenant_id: u32]`.
    AttachTenant = 9,
    /// `CANCEL`: ask the frontend to cancel a previously sent request on
    /// the same connection. The payload is the target `[request_id: u64]`.
    /// Handled inline by the connection reader (never queued); the reply
    /// is empty `OK` meaning "noted", not "cancelled" — if the target is
    /// still queued it is answered `CANCELLED` at dequeue, and if it
    /// already executed (or was never seen) the note is a no-op. Best
    /// effort by design: a request already running on a worker completes
    /// under its own deadline/budget.
    Cancel = 10,
}

impl Verb {
    /// Decodes a verb byte.
    pub fn from_byte(byte: u8) -> Option<Verb> {
        match byte {
            0 => Some(Verb::Ping),
            1 => Some(Verb::ParseText),
            2 => Some(Verb::ParseTokens),
            3 => Some(Verb::AddRule),
            4 => Some(Verb::DeleteRule),
            5 => Some(Verb::Stats),
            6 => Some(Verb::OpenDoc),
            7 => Some(Verb::ParseDelta),
            8 => Some(Verb::CloseDoc),
            9 => Some(Verb::AttachTenant),
            10 => Some(Verb::Cancel),
            _ => None,
        }
    }
}

/// Response statuses. Every admitted or shed request gets **exactly one**
/// response; the non-`Ok` statuses say which protection fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The request was executed; the payload is verb-specific.
    Ok = 0,
    /// The request was executed and failed (unknown token, BNF error,
    /// scanner-less server, ...); the payload is a UTF-8 message.
    Error = 1,
    /// Load shed: the admission queue was full. The request was never
    /// queued; retry with backoff.
    Overloaded = 2,
    /// The request's deadline expired before it reached a parser (at
    /// dequeue or at epoch-pin time); it was shed without parsing.
    DeadlineExceeded = 3,
    /// The frontend is draining for shutdown and no longer executes new
    /// requests.
    ShuttingDown = 4,
    /// The frame was malformed (bad length, unknown verb); the connection
    /// is closed after this reply.
    Malformed = 5,
    /// The request started parsing but exhausted a per-request resource
    /// budget (step fuel, GSS bytes, forest bytes); the parse was
    /// cancelled cooperatively mid-flight and its context quarantined.
    /// The payload names the exhausted axis. Deterministic for a given
    /// input and budget — retrying without a larger budget will exhaust
    /// again.
    ResourceExhausted = 6,
    /// The request was cancelled by a client `CANCEL` verb while still
    /// queued; it never reached a parser. Safe to retry.
    Cancelled = 7,
}

impl Status {
    /// Decodes a status byte.
    pub fn from_byte(byte: u8) -> Option<Status> {
        match byte {
            0 => Some(Status::Ok),
            1 => Some(Status::Error),
            2 => Some(Status::Overloaded),
            3 => Some(Status::DeadlineExceeded),
            4 => Some(Status::ShuttingDown),
            5 => Some(Status::Malformed),
            6 => Some(Status::ResourceExhausted),
            7 => Some(Status::Cancelled),
            _ => None,
        }
    }
}

/// One decoded request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// What to do.
    pub verb: Verb,
    /// Relative deadline budget in microseconds (0 = none).
    pub deadline_us: u32,
    /// Addressed grammar tenant (0 = the default tenant).
    pub tenant: u32,
    /// Verb-specific payload bytes.
    pub payload: Vec<u8>,
}

/// One decoded response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The request id this responds to.
    pub request_id: u64,
    /// Outcome class.
    pub status: Status,
    /// Status/verb-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Response {
    /// Decodes an `[accepted][grammar_version]` parse payload.
    pub fn parse_outcome(&self) -> Option<(bool, u64)> {
        if self.status != Status::Ok || self.payload.len() != 9 {
            return None;
        }
        let version = u64::from_le_bytes(self.payload[1..9].try_into().ok()?);
        Some((self.payload[0] != 0, version))
    }
}

/// Why reading a frame failed. The server reacts per variant: `Idle` polls
/// the shutdown flag and keeps waiting, `Eof` closes quietly, `SlowClient`
/// and `Malformed` poison the connection (counted separately), `Io` closes.
#[derive(Debug)]
pub enum FrameError {
    /// Read timeout with the connection at a frame boundary: no traffic,
    /// not a protocol violation.
    Idle,
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// Read timeout (or mid-frame close) *inside* a frame: the peer
    /// started a frame and stalled — the slow-client case.
    SlowClient,
    /// The frame violates the protocol; the optional id is the request id
    /// when enough of the header arrived to know it.
    Malformed {
        /// Request id to address the rejection to, if known.
        request_id: Option<u64>,
        /// Human-readable reason (also sent to the client).
        reason: &'static str,
    },
    /// Any other I/O error.
    Io(io::Error),
}

/// Reads exactly `buf.len()` bytes. `at_boundary` selects how a timeout
/// with zero bytes read is classified (idle at a boundary, slow-client
/// mid-frame); any timeout after partial progress is a slow client.
fn read_exact_classified(
    stream: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    FrameError::Eof
                } else {
                    // A mid-frame close truncates the frame; treat it like
                    // a stalled sender (nothing left to reply to).
                    FrameError::SlowClient
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(if at_boundary && filled == 0 {
                    FrameError::Idle
                } else {
                    FrameError::SlowClient
                });
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one request frame, enforcing `max_frame` **before** allocating.
pub fn read_request(stream: &mut impl Read, max_frame: usize) -> Result<Request, FrameError> {
    let mut prefix = [0u8; 4];
    read_exact_classified(stream, &mut prefix, true)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len < REQUEST_HEADER_LEN {
        return Err(FrameError::Malformed {
            request_id: None,
            reason: "frame shorter than the request header",
        });
    }
    if len > max_frame {
        return Err(FrameError::Malformed {
            request_id: None,
            reason: "frame exceeds the maximum frame size",
        });
    }
    let mut frame = vec![0u8; len];
    read_exact_classified(stream, &mut frame, false)?;
    let request_id = u64::from_le_bytes(frame[0..8].try_into().expect("8 bytes"));
    let Some(verb) = Verb::from_byte(frame[8]) else {
        return Err(FrameError::Malformed {
            request_id: Some(request_id),
            reason: "unknown verb",
        });
    };
    let deadline_us = u32::from_le_bytes(frame[9..13].try_into().expect("4 bytes"));
    let tenant = u32::from_le_bytes(frame[13..17].try_into().expect("4 bytes"));
    Ok(Request {
        request_id,
        verb,
        deadline_us,
        tenant,
        payload: frame[REQUEST_HEADER_LEN..].to_vec(),
    })
}

/// Reads one response frame (the client side of [`read_request`]).
pub fn read_response(stream: &mut impl Read, max_frame: usize) -> Result<Response, FrameError> {
    let mut prefix = [0u8; 4];
    read_exact_classified(stream, &mut prefix, true)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len < RESPONSE_HEADER_LEN {
        return Err(FrameError::Malformed {
            request_id: None,
            reason: "frame shorter than the response header",
        });
    }
    if len > max_frame {
        return Err(FrameError::Malformed {
            request_id: None,
            reason: "frame exceeds the maximum frame size",
        });
    }
    let mut frame = vec![0u8; len];
    read_exact_classified(stream, &mut frame, false)?;
    let request_id = u64::from_le_bytes(frame[0..8].try_into().expect("8 bytes"));
    let Some(status) = Status::from_byte(frame[8]) else {
        return Err(FrameError::Malformed {
            request_id: Some(request_id),
            reason: "unknown status",
        });
    };
    Ok(Response {
        request_id,
        status,
        payload: frame[RESPONSE_HEADER_LEN..].to_vec(),
    })
}

/// Encodes a request frame into `buf` (cleared first) and writes it.
pub fn write_request(
    stream: &mut impl Write,
    buf: &mut Vec<u8>,
    request_id: u64,
    verb: Verb,
    deadline_us: u32,
    tenant: u32,
    payload: &[u8],
) -> io::Result<()> {
    let len = REQUEST_HEADER_LEN + payload.len();
    buf.clear();
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.extend_from_slice(&request_id.to_le_bytes());
    buf.push(verb as u8);
    buf.extend_from_slice(&deadline_us.to_le_bytes());
    buf.extend_from_slice(&tenant.to_le_bytes());
    buf.extend_from_slice(payload);
    stream.write_all(buf)
}

/// Encodes a response frame into `buf` (cleared first — the per-connection
/// reply buffer is reused, so steady-state replies do not allocate) and
/// writes it.
pub fn write_response(
    stream: &mut impl Write,
    buf: &mut Vec<u8>,
    request_id: u64,
    status: Status,
    payload: &[u8],
) -> io::Result<()> {
    let len = RESPONSE_HEADER_LEN + payload.len();
    buf.clear();
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.extend_from_slice(&request_id.to_le_bytes());
    buf.push(status as u8);
    buf.extend_from_slice(payload);
    stream.write_all(buf)
}

/// Encodes the `[accepted][grammar_version]` parse-outcome payload.
pub fn parse_outcome_payload(accepted: bool, grammar_version: u64) -> [u8; 9] {
    let mut payload = [0u8; 9];
    payload[0] = accepted as u8;
    payload[1..9].copy_from_slice(&grammar_version.to_le_bytes());
    payload
}

/// Encodes the `OPEN-DOC` reply payload:
/// `[doc_id][accepted][grammar_version]`.
pub fn open_doc_payload(doc_id: u64, accepted: bool, grammar_version: u64) -> [u8; 17] {
    let mut payload = [0u8; 17];
    payload[0..8].copy_from_slice(&doc_id.to_le_bytes());
    payload[8] = accepted as u8;
    payload[9..17].copy_from_slice(&grammar_version.to_le_bytes());
    payload
}

/// Encodes a `PARSE-DELTA` request payload:
/// `[doc_id][start][end][replacement]`.
pub fn parse_delta_payload(doc_id: u64, start: u32, end: u32, replacement: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + replacement.len());
    payload.extend_from_slice(&doc_id.to_le_bytes());
    payload.extend_from_slice(&start.to_le_bytes());
    payload.extend_from_slice(&end.to_le_bytes());
    payload.extend_from_slice(replacement);
    payload
}

/// Decodes a `PARSE-DELTA` request payload. `None` if it is shorter than
/// the fixed `[doc_id][start][end]` prefix.
pub fn decode_parse_delta(payload: &[u8]) -> Option<(u64, u32, u32, &[u8])> {
    if payload.len() < 16 {
        return None;
    }
    let doc_id = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let start = u32::from_le_bytes(payload[8..12].try_into().ok()?);
    let end = u32::from_le_bytes(payload[12..16].try_into().ok()?);
    Some((doc_id, start, end, &payload[16..]))
}

/// Encodes an `ATTACH-TENANT` request payload:
/// `[name_len: u8][name][base_len: u8][base][rules: utf-8]`. Name and base
/// are capped at 255 bytes by the length prefix; an empty `base` attaches
/// an independent tenant from `rules` as a full BNF grammar.
pub fn attach_tenant_payload(name: &str, base: &str, rules: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(2 + name.len() + base.len() + rules.len());
    payload.push(name.len().min(255) as u8);
    payload.extend_from_slice(&name.as_bytes()[..name.len().min(255)]);
    payload.push(base.len().min(255) as u8);
    payload.extend_from_slice(&base.as_bytes()[..base.len().min(255)]);
    payload.extend_from_slice(rules.as_bytes());
    payload
}

/// Decodes an `ATTACH-TENANT` request payload into `(name, base, rules)`.
/// `None` if the length prefixes overrun the payload or a field is not
/// UTF-8.
pub fn decode_attach_tenant(payload: &[u8]) -> Option<(&str, &str, &str)> {
    let (&name_len, rest) = payload.split_first()?;
    if rest.len() < name_len as usize {
        return None;
    }
    let (name, rest) = rest.split_at(name_len as usize);
    let (&base_len, rest) = rest.split_first()?;
    if rest.len() < base_len as usize {
        return None;
    }
    let (base, rules) = rest.split_at(base_len as usize);
    Some((
        std::str::from_utf8(name).ok()?,
        std::str::from_utf8(base).ok()?,
        std::str::from_utf8(rules).ok()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_frames_round_trip() {
        let mut wire = Vec::new();
        let mut buf = Vec::new();
        write_request(&mut wire, &mut buf, 42, Verb::ParseText, 1_500, 3, b"true or false").unwrap();
        let decoded = read_request(&mut Cursor::new(&wire), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(decoded.request_id, 42);
        assert_eq!(decoded.verb, Verb::ParseText);
        assert_eq!(decoded.deadline_us, 1_500);
        assert_eq!(decoded.tenant, 3);
        assert_eq!(decoded.payload, b"true or false");
    }

    #[test]
    fn response_frames_round_trip() {
        let mut wire = Vec::new();
        let mut buf = Vec::new();
        let payload = parse_outcome_payload(true, 7);
        write_response(&mut wire, &mut buf, 9, Status::Ok, &payload).unwrap();
        let decoded = read_response(&mut Cursor::new(&wire), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(decoded.request_id, 9);
        assert_eq!(decoded.status, Status::Ok);
        assert_eq!(decoded.parse_outcome(), Some((true, 7)));
        // Non-parse payloads decode to no outcome.
        let mut wire = Vec::new();
        write_response(&mut wire, &mut buf, 9, Status::Overloaded, &[]).unwrap();
        let decoded = read_response(&mut Cursor::new(&wire), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(decoded.parse_outcome(), None);
    }

    #[test]
    fn oversized_and_short_frames_are_malformed_before_allocation() {
        // Length prefix promises 100 MiB: rejected by the cap alone.
        let wire = (100u32 << 20).to_le_bytes();
        match read_request(&mut Cursor::new(&wire[..]), DEFAULT_MAX_FRAME) {
            Err(FrameError::Malformed { request_id: None, reason }) => {
                assert!(reason.contains("maximum frame size"));
            }
            other => panic!("expected malformed, got {other:?}"),
        }
        // Length prefix shorter than the header.
        let wire = 4u32.to_le_bytes();
        assert!(matches!(
            read_request(&mut Cursor::new(&wire[..]), DEFAULT_MAX_FRAME),
            Err(FrameError::Malformed { request_id: None, .. })
        ));
    }

    #[test]
    fn unknown_verbs_are_malformed_with_the_request_id() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(REQUEST_HEADER_LEN as u32).to_le_bytes());
        wire.extend_from_slice(&77u64.to_le_bytes());
        wire.push(250); // no such verb
        wire.extend_from_slice(&0u32.to_le_bytes()); // deadline
        wire.extend_from_slice(&0u32.to_le_bytes()); // tenant
        match read_request(&mut Cursor::new(&wire), DEFAULT_MAX_FRAME) {
            Err(FrameError::Malformed { request_id: Some(77), reason }) => {
                assert_eq!(reason, "unknown verb");
            }
            other => panic!("expected malformed with id, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_classified_by_position() {
        // EOF at a frame boundary is a clean close...
        assert!(matches!(
            read_request(&mut Cursor::new(&[][..]), DEFAULT_MAX_FRAME),
            Err(FrameError::Eof)
        ));
        // ...but a frame cut off mid-way is a stalled/vanished sender.
        let mut wire = Vec::new();
        let mut buf = Vec::new();
        write_request(&mut wire, &mut buf, 1, Verb::Ping, 0, 0, &[]).unwrap();
        wire.truncate(wire.len() - 2);
        assert!(matches!(
            read_request(&mut Cursor::new(&wire), DEFAULT_MAX_FRAME),
            Err(FrameError::SlowClient)
        ));
    }

    #[test]
    fn verb_and_status_bytes_round_trip() {
        for verb in [
            Verb::Ping,
            Verb::ParseText,
            Verb::ParseTokens,
            Verb::AddRule,
            Verb::DeleteRule,
            Verb::Stats,
            Verb::OpenDoc,
            Verb::ParseDelta,
            Verb::CloseDoc,
            Verb::AttachTenant,
            Verb::Cancel,
        ] {
            assert_eq!(Verb::from_byte(verb as u8), Some(verb));
        }
        for status in [
            Status::Ok,
            Status::Error,
            Status::Overloaded,
            Status::DeadlineExceeded,
            Status::ShuttingDown,
            Status::Malformed,
            Status::ResourceExhausted,
            Status::Cancelled,
        ] {
            assert_eq!(Status::from_byte(status as u8), Some(status));
        }
        assert_eq!(Verb::from_byte(99), None);
        assert_eq!(Status::from_byte(99), None);
    }

    #[test]
    fn parse_delta_payloads_round_trip() {
        let payload = parse_delta_payload(1234, 7, 12, b"replacement");
        assert_eq!(
            decode_parse_delta(&payload),
            Some((1234, 7, 12, &b"replacement"[..]))
        );
        // An empty replacement (pure deletion) is valid...
        let payload = parse_delta_payload(u64::MAX, 0, 0, b"");
        assert_eq!(decode_parse_delta(&payload), Some((u64::MAX, 0, 0, &b""[..])));
        // ...but a truncated fixed prefix is not.
        assert_eq!(decode_parse_delta(&payload[..15]), None);
    }
}
