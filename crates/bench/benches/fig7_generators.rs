//! Criterion benchmarks behind Fig. 7.1: table construction, parsing and
//! grammar modification for the three generators (Yacc-like LALR(1), PG,
//! IPG) on the SDF grammar and its four measurement inputs.
//!
//! The `fig7_report` binary prints the same scenario as one table; this
//! bench gives statistically solid per-phase numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ipg::{GcPolicy, ItemSetGraph, LazyTables};
use ipg_bench::SdfWorkload;
use ipg_glr::GssParser;
use ipg_lr::{lalr1_table, Lr0Automaton, ParseTable};

fn bench_construction(c: &mut Criterion) {
    let workload = SdfWorkload::load();
    let grammar = &workload.grammar;
    let mut group = c.benchmark_group("fig7/construct_table");
    group.sample_size(10);
    group.bench_function("yacc_lalr1", |b| b.iter(|| lalr1_table(grammar)));
    group.bench_function("pg_lr0", |b| {
        b.iter(|| ParseTable::lr0(&Lr0Automaton::build(grammar), grammar))
    });
    group.bench_function("ipg_lazy", |b| {
        b.iter(|| ItemSetGraph::with_policy(grammar, GcPolicy::RefCount))
    });
    group.finish();
}

fn bench_first_and_second_parse(c: &mut Criterion) {
    let workload = SdfWorkload::load();
    let grammar = &workload.grammar;
    let mut group = c.benchmark_group("fig7/parse");
    group.sample_size(10);
    for input in &workload.inputs {
        // PG: the table already exists; parse cost only.
        let pg_table = ParseTable::lr0(&Lr0Automaton::build(grammar), grammar);
        group.bench_with_input(
            BenchmarkId::new("pg_parse_with_ready_table", input.name),
            &input.tokens,
            |b, tokens| {
                let parser = GssParser::new(grammar);
                b.iter(|| parser.recognize(&pg_table, tokens))
            },
        );
        // IPG: first parse includes lazy generation (fresh graph each
        // iteration)...
        group.bench_with_input(
            BenchmarkId::new("ipg_first_parse_including_generation", input.name),
            &input.tokens,
            |b, tokens| {
                let parser = GssParser::new(grammar);
                b.iter(|| {
                    let graph = ItemSetGraph::with_policy(grammar, GcPolicy::RefCount);
                    let tables = LazyTables::new(grammar, &graph).unwrap();
                    parser.recognize(&tables, tokens)
                })
            },
        );
        // ... the second parse reuses the generated part of the table.
        let warm_graph = ItemSetGraph::with_policy(grammar, GcPolicy::RefCount);
        {
            let parser = GssParser::new(grammar);
            parser.recognize(&LazyTables::new(grammar, &warm_graph).unwrap(), &input.tokens);
        }
        group.bench_with_input(
            BenchmarkId::new("ipg_second_parse_warm_table", input.name),
            &input.tokens,
            |b, tokens| {
                let parser = GssParser::new(grammar);
                b.iter(|| parser.recognize(&LazyTables::new(grammar, &warm_graph).unwrap(), tokens))
            },
        );
    }
    group.finish();
}

fn bench_modification(c: &mut Criterion) {
    let workload = SdfWorkload::load();
    let (lhs, rhs) = workload.modification.clone();
    let mut group = c.benchmark_group("fig7/modify_grammar");
    group.sample_size(10);

    group.bench_function("yacc_regenerate_lalr1", |b| {
        b.iter_batched(
            || {
                let mut grammar = workload.grammar.clone();
                grammar.add_rule(lhs, rhs.clone());
                grammar
            },
            |grammar| lalr1_table(&grammar),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("pg_regenerate_lr0", |b| {
        b.iter_batched(
            || {
                let mut grammar = workload.grammar.clone();
                grammar.add_rule(lhs, rhs.clone());
                grammar
            },
            |grammar| ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("ipg_incremental_update", |b| {
        b.iter_batched(
            || {
                let grammar = workload.grammar.clone();
                let graph = ItemSetGraph::with_policy(&grammar, GcPolicy::RefCount);
                graph.expand_all(&grammar);
                (grammar, graph)
            },
            |(mut grammar, mut graph)| {
                graph.add_rule(&mut grammar, lhs, rhs.clone());
                (grammar, graph)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    fig7,
    bench_construction,
    bench_first_and_second_parse,
    bench_modification
);
criterion_main!(fig7);
