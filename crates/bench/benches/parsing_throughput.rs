//! Parsing-throughput comparison across the algorithm families of Fig. 2.1
//! (the "fast" axis): deterministic LR, Tomita over LR(0), IPG's lazy
//! tables, and Earley, on inputs of growing length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ipg::{ItemSetGraph, LazyTables};
use ipg_earley::EarleyParser;
use ipg_glr::GssParser;
use ipg_grammar::fixtures;
use ipg_lr::{lalr1_table, tokenize_names, Lr0Automaton, LrParser, ParseTable};

fn arithmetic_sentence(terms: usize) -> String {
    let mut s = String::from("id");
    for i in 0..terms {
        s.push_str(if i % 3 == 0 { " + num" } else { " * id" });
    }
    s
}

fn bench_throughput(c: &mut Criterion) {
    let grammar = fixtures::arithmetic();
    let mut group = c.benchmark_group("throughput/arithmetic");
    group.sample_size(10);
    for terms in [50usize, 200, 800] {
        let sentence = arithmetic_sentence(terms);
        let tokens = tokenize_names(&grammar, &sentence).expect("tokens");
        group.throughput(Throughput::Elements(tokens.len() as u64));

        let lalr = lalr1_table(&grammar);
        group.bench_with_input(BenchmarkId::new("deterministic_lalr1", terms), &tokens, |b, t| {
            let parser = LrParser::new(&grammar);
            b.iter(|| parser.recognize(&lalr, t).expect("deterministic"))
        });

        let lr0 = ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar);
        group.bench_with_input(BenchmarkId::new("tomita_gss_lr0", terms), &tokens, |b, t| {
            let parser = GssParser::new(&grammar);
            b.iter(|| parser.recognize(&lr0, t))
        });

        let graph = ItemSetGraph::new(&grammar);
        graph.expand_all(&grammar);
        group.bench_with_input(BenchmarkId::new("ipg_lazy_tables", terms), &tokens, |b, t| {
            let parser = GssParser::new(&grammar);
            b.iter(|| parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), t))
        });

        group.bench_with_input(BenchmarkId::new("earley", terms), &tokens, |b, t| {
            let parser = EarleyParser::new(&grammar);
            b.iter(|| parser.recognize(t))
        });
    }
    group.finish();
}

criterion_group!(throughput, bench_throughput);
criterion_main!(throughput);
