//! Ablation benchmarks for design decisions called out in the paper:
//!
//! * §5.3 — the cost of laziness: the extra `if state is initial` test in
//!   `ACTION`. Compares parsing over a fully expanded lazy graph against
//!   parsing over a plain pre-computed LR(0) table.
//! * §3.2 — parser-pool vs graph-structured-stack formulation of the
//!   parallel parser (same language, very different constant factors on
//!   ambiguous inputs).
//! * §6.2 — garbage-collection policies (retain everything vs reference
//!   counting) under a short editing session.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ipg::{GcPolicy, ItemSetGraph, LazyTables};
use ipg_bench::SdfWorkload;
use ipg_glr::{GssParser, PoolGlrParser};
use ipg_grammar::fixtures;
use ipg_lr::{tokenize_names, Lr0Automaton, ParseTable};

fn bench_lazy_action_overhead(c: &mut Criterion) {
    let workload = SdfWorkload::load();
    let grammar = &workload.grammar;
    let input = workload.largest();
    let mut group = c.benchmark_group("ablation/lazy_action_overhead");
    group.sample_size(10);

    let eager_table = ParseTable::lr0(&Lr0Automaton::build(grammar), grammar);
    group.bench_function("eager_lr0_table", |b| {
        let parser = GssParser::new(grammar);
        b.iter(|| parser.recognize(&eager_table, &input.tokens))
    });

    let full_graph = ItemSetGraph::with_policy(grammar, GcPolicy::RefCount);
    full_graph.expand_all(grammar);
    group.bench_function("fully_expanded_lazy_graph", |b| {
        let parser = GssParser::new(grammar);
        b.iter(|| parser.recognize(&LazyTables::new(grammar, &full_graph).unwrap(), &input.tokens))
    });
    group.finish();
}

fn bench_pool_vs_gss(c: &mut Criterion) {
    let grammar = fixtures::booleans();
    let table = ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar);
    let mut group = c.benchmark_group("ablation/pool_vs_gss");
    group.sample_size(10);
    for operators in [8usize, 16, 24] {
        let sentence = "true".to_owned() + &" or true".repeat(operators);
        let tokens = tokenize_names(&grammar, &sentence).expect("tokens");
        group.bench_with_input(BenchmarkId::new("pool", operators), &tokens, |b, tokens| {
            let parser = PoolGlrParser::new(&grammar);
            b.iter(|| parser.recognize(&table, tokens).expect("no divergence"))
        });
        group.bench_with_input(BenchmarkId::new("gss", operators), &tokens, |b, tokens| {
            let parser = GssParser::new(&grammar);
            b.iter(|| parser.recognize(&table, tokens))
        });
    }
    group.finish();
}

fn bench_gc_policies(c: &mut Criterion) {
    let workload = SdfWorkload::load();
    let (lhs, rhs) = workload.modification.clone();
    let input = workload.input("Exam.sdf").clone();
    let mut group = c.benchmark_group("ablation/gc_policy");
    group.sample_size(10);
    for (name, policy) in [
        ("retain_everything", GcPolicy::Retain),
        ("refcount", GcPolicy::RefCount),
        (
            "refcount_plus_sweep",
            GcPolicy::RefCountWithSweep { threshold_percent: 25 },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                // A short editing session: parse, add the rule, parse,
                // remove it again, parse.
                let mut grammar = workload.grammar.clone();
                let mut graph = ItemSetGraph::with_policy(&grammar, policy);
                let parser = GssParser::new(&grammar);
                parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &input.tokens);
                graph.add_rule(&mut grammar, lhs, rhs.clone());
                let parser = GssParser::new(&grammar);
                parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &input.tokens);
                graph
                    .remove_rule(&mut grammar, lhs, &rhs)
                    .expect("rule exists");
                let parser = GssParser::new(&grammar);
                parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &input.tokens);
                graph.num_live()
            })
        });
    }
    group.finish();
}

criterion_group!(ablation, bench_lazy_action_overhead, bench_pool_vs_gss, bench_gc_policies);
criterion_main!(ablation);
