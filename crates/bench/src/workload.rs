//! Workloads shared by the Criterion benchmarks and the figure-report
//! binaries: the SDF benchmark grammar, the four pre-lexed measurement
//! inputs, and the §7 grammar modification.

use ipg_grammar::{Grammar, SymbolId};
use ipg_sdf::fixtures::{measurement_inputs, paper_modification_rule, sdf_grammar_and_scanner};
use ipg_sdf::NormalizedSdf;

/// One pre-lexed measurement input.
#[derive(Clone, Debug)]
pub struct PreLexedInput {
    /// The paper's file name (`exp.sdf`, ...).
    pub name: &'static str,
    /// The token stream, already in memory — exactly as in the paper, so
    /// that scanner and I/O costs do not pollute the parser measurements.
    pub tokens: Vec<SymbolId>,
    /// Token count the paper reports for its original input.
    pub paper_tokens: usize,
}

/// The full Fig. 7.1 workload.
#[derive(Clone, Debug)]
pub struct SdfWorkload {
    /// The benchmark grammar: the SDF definition of SDF, normalised.
    pub grammar: Grammar,
    /// The four inputs, smallest to largest.
    pub inputs: Vec<PreLexedInput>,
    /// The added rule of §7: `"(" CF-ELEM+ ")?" -> CF-ELEM`, as interned
    /// symbols of [`SdfWorkload::grammar`].
    pub modification: (SymbolId, Vec<SymbolId>),
}

impl SdfWorkload {
    /// Builds the workload: parse and normalise the SDF definition of SDF,
    /// tokenize the four measurement inputs with the derived scanner, and
    /// intern the symbols of the §7 modification.
    pub fn load() -> Self {
        let NormalizedSdf { mut grammar, scanner } = sdf_grammar_and_scanner();
        let inputs = measurement_inputs()
            .into_iter()
            .map(|input| PreLexedInput {
                name: input.name,
                tokens: scanner
                    .tokenize_for(&grammar, input.text)
                    .expect("measurement inputs tokenize"),
                paper_tokens: input.paper_tokens,
            })
            .collect();
        let (lhs_name, rhs_names) = paper_modification_rule();
        let lhs = grammar
            .symbol(&lhs_name)
            .expect("CF-ELEM exists in the SDF grammar");
        let rhs = rhs_names
            .iter()
            .map(|name| match grammar.symbol(name) {
                Some(id) => id,
                // `")?"` is a new keyword introduced by the modification.
                None => grammar.terminal(name),
            })
            .collect();
        SdfWorkload {
            grammar,
            inputs,
            modification: (lhs, rhs),
        }
    }

    /// The input with the given paper file name.
    pub fn input(&self, name: &str) -> &PreLexedInput {
        self.inputs
            .iter()
            .find(|i| i.name == name)
            .expect("known input name")
    }

    /// The largest input (`ASF.sdf`).
    pub fn largest(&self) -> &PreLexedInput {
        self.inputs.last().expect("workload has inputs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_loads_and_is_well_formed() {
        let w = SdfWorkload::load();
        assert_eq!(w.inputs.len(), 4);
        w.grammar.validate().unwrap();
        assert!(w.input("exp.sdf").tokens.len() < w.input("ASF.sdf").tokens.len());
        assert_eq!(w.largest().name, "ASF.sdf");
        let (lhs, rhs) = &w.modification;
        assert!(w.grammar.is_nonterminal(*lhs));
        assert_eq!(rhs.len(), 3);
        assert!(w.grammar.is_terminal(rhs[0]));
        assert!(w.grammar.is_nonterminal(rhs[1]));
        assert!(w.grammar.is_terminal(rhs[2]));
    }
}
