//! Workloads shared by the Criterion benchmarks and the figure-report
//! binaries: the SDF benchmark grammar, the four pre-lexed measurement
//! inputs, and the §7 grammar modification.

use ipg_grammar::{Grammar, SymbolId};
use ipg_lexer::Scanner;
use ipg_sdf::fixtures::{measurement_inputs, paper_modification_rule, sdf_grammar_and_scanner};
use ipg_sdf::NormalizedSdf;

/// One pre-lexed measurement input.
#[derive(Clone, Debug)]
pub struct PreLexedInput {
    /// The paper's file name (`exp.sdf`, ...).
    pub name: &'static str,
    /// The token stream, already in memory — exactly as in the paper, so
    /// that scanner and I/O costs do not pollute the parser measurements.
    pub tokens: Vec<SymbolId>,
    /// The raw SDF text the tokens were lexed from, for end-to-end
    /// (tokenize + parse) scenarios like the serving bench's `warm-text`.
    pub text: &'static str,
    /// Token count the paper reports for its original input.
    pub paper_tokens: usize,
}

/// The full Fig. 7.1 workload.
#[derive(Clone, Debug)]
pub struct SdfWorkload {
    /// The benchmark grammar: the SDF definition of SDF, normalised.
    pub grammar: Grammar,
    /// The scanner derived from the SDF definition (drives the text-based
    /// serving scenarios; the pre-lexed inputs were produced with it).
    pub scanner: Scanner,
    /// The four inputs, smallest to largest.
    pub inputs: Vec<PreLexedInput>,
    /// The added rule of §7: `"(" CF-ELEM+ ")?" -> CF-ELEM`, as interned
    /// symbols of [`SdfWorkload::grammar`].
    pub modification: (SymbolId, Vec<SymbolId>),
}

impl SdfWorkload {
    /// Builds the workload: parse and normalise the SDF definition of SDF,
    /// tokenize the four measurement inputs with the derived scanner, and
    /// intern the symbols of the §7 modification.
    pub fn load() -> Self {
        let NormalizedSdf { mut grammar, scanner } = sdf_grammar_and_scanner();
        let inputs = measurement_inputs()
            .into_iter()
            .map(|input| PreLexedInput {
                name: input.name,
                tokens: scanner
                    .tokenize_for(&grammar, input.text)
                    .expect("measurement inputs tokenize"),
                text: input.text,
                paper_tokens: input.paper_tokens,
            })
            .collect();
        let (lhs_name, rhs_names) = paper_modification_rule();
        let lhs = grammar
            .symbol(&lhs_name)
            .expect("CF-ELEM exists in the SDF grammar");
        let rhs = rhs_names
            .iter()
            .map(|name| match grammar.symbol(name) {
                Some(id) => id,
                // `")?"` is a new keyword introduced by the modification.
                None => grammar.terminal(name),
            })
            .collect();
        SdfWorkload {
            grammar,
            scanner,
            inputs,
            modification: (lhs, rhs),
        }
    }

    /// The input with the given paper file name.
    pub fn input(&self, name: &str) -> &PreLexedInput {
        self.inputs
            .iter()
            .find(|i| i.name == name)
            .expect("known input name")
    }

    /// The largest input (`ASF.sdf`).
    pub fn largest(&self) -> &PreLexedInput {
        self.inputs.last().expect("workload has inputs")
    }
}

/// A synthetic grammar of a chosen size, used by the `publish-scaling`
/// bench to measure how edit-publication latency scales with grammar size.
#[derive(Clone, Debug)]
pub struct SyntheticWorkload {
    /// The generated grammar (`~productions` active rules).
    pub grammar: Grammar,
    /// The edit rule `(lhs, rhs)` cycled by `ADD-RULE`/`DELETE-RULE`. Its
    /// left-hand side occurs in exactly one item set's transitions, so the
    /// §6 invalidation impact is **constant** across sizes — what varies
    /// is only how much surrounding table state an edit has to fork.
    pub edit: (SymbolId, Vec<SymbolId>),
    /// A short sentence of the language, for sanity checks.
    pub sentence: Vec<SymbolId>,
}

/// Builds a chain grammar with roughly `productions` active productions:
///
/// ```text
/// START ::= N0          N_i ::= a_i N_{i+1} | z_i      N_last ::= z_last
/// N_mid ::= mark E      E ::= e1            (edit rule: E ::= e2)
/// ```
///
/// Every production uses its own terminals, so states, symbols and rules
/// all grow linearly with `productions` while closures stay constant-size
/// — the shape that isolates *publication* cost from expansion cost. The
/// edit-rule slot (`E ::= e2`) is pre-created (added and removed once), so
/// steady-state edit cycles flip the activation bit of an existing slot,
/// exactly like the §7 SDF measurement after its first iteration.
pub fn synthetic_workload(productions: usize) -> SyntheticWorkload {
    let depth = productions.saturating_sub(4).max(2) / 2;
    let mut g = Grammar::new();
    let nts: Vec<SymbolId> = (0..=depth).map(|i| g.nonterminal(&format!("N{i}"))).collect();
    for i in 0..depth {
        let a = g.terminal(&format!("a{i}"));
        let z = g.terminal(&format!("z{i}"));
        g.add_rule(nts[i], vec![a, nts[i + 1]]);
        g.add_rule(nts[i], vec![z]);
    }
    let z_last = g.terminal("zlast");
    g.add_rule(nts[depth], vec![z_last]);
    // The edited non-terminal hangs off the middle of the chain behind a
    // dedicated marker terminal: exactly one item set ever has a
    // transition on `E`.
    let e = g.nonterminal("E");
    let mark = g.terminal("mark");
    g.add_rule(nts[depth / 2], vec![mark, e]);
    let e1 = g.terminal("e1");
    g.add_rule(e, vec![e1]);
    g.add_start_rule(nts[0]);
    // Pre-intern the edit rule's symbols and pre-create its slot.
    let e2 = g.terminal("e2");
    let edit = (e, vec![e2]);
    let slot = g.add_rule(e, vec![e2]);
    g.remove_rule(slot).expect("edit slot was just added");
    g.validate().expect("synthetic grammar is well-formed");
    let sentence = vec![g.symbol("z0").expect("z0 exists")];
    SyntheticWorkload {
        grammar: g,
        edit,
        sentence,
    }
}

/// A wide synthetic grammar for the cold-start scenario: few
/// non-terminals with *many* random alternatives each, so bulk expansion
/// has a wide frontier of independent, closure-heavy item sets — the
/// shape that exposes parallel `EXPAND` speedup. (Contrast with
/// [`synthetic_workload`]'s chain, whose frontier is one state wide and
/// which therefore isolates *publication* cost instead.)
#[derive(Clone, Debug)]
pub struct WideSyntheticWorkload {
    /// The generated grammar (`productions` + 1 active rules).
    pub grammar: Grammar,
    /// A short sentence of the language, for sanity checks.
    pub sentence: Vec<SymbolId>,
}

/// A deterministic 64-bit LCG (Knuth's MMIX constants). The workload must
/// be bit-identical across runs and hosts so that cold-start timings and
/// the parallel-warm equivalence tests all see the same grammar.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        self.next() as usize % n
    }
}

/// Builds a wide grammar with exactly `productions` random alternatives
/// spread round-robin over 8 non-terminals, plus one dedicated sentence
/// rule. Each right-hand side is 2–4 random terminals (out of 40), with a
/// 1-in-4 chance of a trailing non-terminal (right recursion only — a
/// non-terminal *inside* a right-hand side would give every context its
/// own mega-kernel and blow the state count combinatorially, which is a
/// different bench). States whose dot stops before a trailing
/// non-terminal close over *hundreds* of alternatives, so per-state
/// expansion work dominates and the frontier fans out across all symbols
/// at once, while successor kernels are shared across contexts. Symbol
/// and rule counts stay bounded (49 symbols total), which bounds the
/// per-state `ACTION` row footprint no matter how large `productions`
/// grows.
pub fn wide_synthetic_workload(productions: usize) -> WideSyntheticWorkload {
    let mut g = Grammar::new();
    let nts: Vec<SymbolId> = (0..8).map(|i| g.nonterminal(&format!("W{i}"))).collect();
    let terminals: Vec<SymbolId> = (0..40).map(|i| g.terminal(&format!("t{i:02}"))).collect();
    // The dedicated sentence rule uses a terminal no random rule can pick,
    // so `[wstart]` is in the language regardless of the random draw.
    let wstart = g.terminal("wstart");
    g.add_rule(nts[0], vec![wstart]);
    let mut rng = Lcg(0x9E3779B97F4A7C15);
    for p in 0..productions {
        let lhs = nts[p % nts.len()];
        let len = 2 + rng.below(3);
        let mut rhs: Vec<SymbolId> = (0..len)
            .map(|_| terminals[rng.below(terminals.len())])
            .collect();
        if rng.below(4) == 0 {
            rhs.push(nts[rng.below(nts.len())]);
        }
        g.add_rule(lhs, rhs);
    }
    g.add_start_rule(nts[0]);
    g.validate().expect("wide synthetic grammar is well-formed");
    let sentence = vec![wstart];
    WideSyntheticWorkload {
        grammar: g,
        sentence,
    }
}

/// BNF text of an adversarial, maximally ambiguous grammar for the
/// runaway-parse containment tests and `ipg-loadgen --adversarial`:
///
/// ```text
/// AMB0 ::= "x"
/// AMBk ::= AMBk AMBk | AMB{k-1}     (for k = 1..=layers)
/// START ::= AMB{layers}
/// ```
///
/// A sentence of `n` `x` tokens has Catalan(n−1) binary bracketings *per
/// layer* (times the unary chain choices between layers), so GSS work and
/// forest growth blow up combinatorially with `n` — the workload a
/// per-request [`ipg::ParseBudget`] exists to contain. `layers` deepens
/// the ambiguity multiplicatively; 1 is already pathological. The text is
/// a full grammar, suitable for `ATTACH-TENANT` as an independent tenant
/// (no scanner — drive it with `PARSE-TOKENS`).
pub fn adversarial_grammar_bnf(layers: usize) -> String {
    let layers = layers.max(1);
    let mut bnf = String::from("AMB0 ::= \"x\"\n");
    for k in 1..=layers {
        bnf.push_str(&format!("AMB{k} ::= AMB{k} AMB{k} | AMB{}\n", k - 1));
    }
    bnf.push_str(&format!("START ::= AMB{layers}\n"));
    bnf
}

/// A pre-lexed sentence of `n` `x` tokens for [`adversarial_grammar_bnf`],
/// in the whitespace-separated form `PARSE-TOKENS` expects.
pub fn adversarial_sentence(n: usize) -> String {
    let mut sentence = String::with_capacity(2 * n);
    for i in 0..n {
        if i > 0 {
            sentence.push(' ');
        }
        sentence.push('x');
    }
    sentence
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_loads_and_is_well_formed() {
        let w = SdfWorkload::load();
        assert_eq!(w.inputs.len(), 4);
        w.grammar.validate().unwrap();
        assert!(w.input("exp.sdf").tokens.len() < w.input("ASF.sdf").tokens.len());
        assert_eq!(w.largest().name, "ASF.sdf");
        let (lhs, rhs) = &w.modification;
        assert!(w.grammar.is_nonterminal(*lhs));
        assert_eq!(rhs.len(), 3);
        assert!(w.grammar.is_terminal(rhs[0]));
        assert!(w.grammar.is_nonterminal(rhs[1]));
        assert!(w.grammar.is_terminal(rhs[2]));
    }

    #[test]
    fn synthetic_workload_scales_and_parses() {
        let small = synthetic_workload(100);
        let big = synthetic_workload(1000);
        assert!(
            (95..=105).contains(&small.grammar.num_active_rules()),
            "got {}",
            small.grammar.num_active_rules()
        );
        assert!((995..=1005).contains(&big.grammar.num_active_rules()));
        // The edit slot exists but is inactive.
        let (lhs, rhs) = &small.edit;
        let slot = small.grammar.find_rule(*lhs, rhs).expect("slot pre-created");
        assert!(!small.grammar.is_active(slot));
        // The sentence is in the language, and the edit is observable: a
        // sentence reaching the chain's middle and using `mark e2` is
        // accepted exactly when the edit rule is active.
        let mut session = ipg::IpgSession::new(small.grammar.clone());
        assert!(session.parse(&small.sentence).accepted);
        let g = session.grammar();
        let depth_mid = (0..)
            .take_while(|i| g.symbol(&format!("a{i}")).is_some())
            .count()
            / 2;
        let mut edit_sentence: Vec<_> = (0..depth_mid)
            .map(|i| g.symbol(&format!("a{i}")).unwrap())
            .collect();
        edit_sentence.push(g.symbol("mark").unwrap());
        edit_sentence.push(g.symbol("e2").unwrap());
        assert!(!session.parse(&edit_sentence).accepted);
        session.add_rule(*lhs, rhs.clone());
        assert!(session.grammar().is_active(slot));
        assert!(session.parse(&edit_sentence).accepted);
        assert!(session.parse(&small.sentence).accepted);
    }

    #[test]
    fn adversarial_grammar_is_ambiguous_and_budget_containable() {
        let server = ipg::IpgServer::from_bnf(&adversarial_grammar_bnf(1)).unwrap();
        // Small input: ambiguous but cheap — Catalan(2) = 2 bracketings.
        let result = server.parse_sentence(&adversarial_sentence(3)).unwrap();
        assert!(result.accepted);
        assert!(result.forest.tree_count(64) >= 2);
        // Large input: a starved fuel budget kills it mid-parse instead of
        // letting the Catalan blow-up monopolise the worker.
        let starved = ipg::ParseBudget::default().with_fuel(10_000);
        let err = server
            .parse_sentence_budgeted(&adversarial_sentence(64), starved)
            .unwrap_err();
        assert!(matches!(
            err,
            ipg::ServerError::Exhausted(ipg::ExhaustReason::Fuel)
        ));
        // Deeper layering still builds and parses.
        let deep = ipg::IpgServer::from_bnf(&adversarial_grammar_bnf(3)).unwrap();
        assert!(deep.parse_sentence(&adversarial_sentence(2)).unwrap().accepted);
    }

    #[test]
    fn wide_synthetic_workload_is_deterministic_and_parses() {
        let a = wide_synthetic_workload(200);
        let b = wide_synthetic_workload(200);
        // Bit-identical across builds: same symbols, same rules. The 202
        // active rules are the 200 random alternatives, the dedicated
        // sentence rule and the start rule.
        assert_eq!(a.grammar.num_active_rules(), 202);
        assert_eq!(a.grammar.num_active_rules(), b.grammar.num_active_rules());
        let session = ipg::IpgSession::new(a.grammar.clone());
        assert!(session.parse(&a.sentence).accepted);
        let other = ipg::IpgSession::new(b.grammar.clone());
        assert!(other.parse(&b.sentence).accepted);
        assert_eq!(session.render_graph(), other.render_graph());
    }
}
