//! Reproduces Fig. 2.1: the qualitative comparison of parsing algorithms
//! (LR/LALR, recursive descent/LL, Earley, Cigale, OBJ, Tomita, IPG) along
//! the paper's four axes — powerful, fast, flexible, modular — but derived
//! from actual runs of the seven implementations in this repository rather
//! than asserted.
//!
//! * **powerful**: which of a set of increasingly nasty grammars
//!   (LL(1)-friendly statements, left recursion, ambiguity, non-LR(k)
//!   palindromes) the algorithm handles;
//! * **fast**: time to parse a long sentence with a ready-made parser;
//! * **flexible**: cost of absorbing a grammar change relative to full
//!   regeneration;
//! * **modular**: whether parsers/grammars can be extended rule by rule.
//!
//! Run with `cargo run --release -p ipg-bench --bin fig2_comparison`.

use std::time::Instant;

use ipg::{IpgSession, ItemSetGraph, LazyTables};
use ipg_baselines::{LlParser, TrieParser};
use ipg_earley::EarleyParser;
use ipg_glr::GssParser;
use ipg_grammar::{fixtures, Grammar};
use ipg_lr::{lalr1_table, tokenize_names, Lr0Automaton, LrParser, ParseTable};

struct Verdicts {
    name: &'static str,
    powerful: String,
    fast: String,
    flexible: String,
    modular: &'static str,
}

fn long_boolean_sentence(n: usize) -> String {
    let mut s = String::from("true");
    for i in 0..n {
        s.push_str(if i % 2 == 0 { " and false" } else { " or true" });
    }
    s
}

fn grammar_suite() -> Vec<(&'static str, Grammar, &'static str, bool)> {
    // (name, grammar, a sentence of the language, sentence-is-in-language)
    vec![
        ("LL(1) statements", fixtures::statements(), "if id then id := num else id := id", true),
        ("left recursion", fixtures::left_recursive_list(), "x , x , x", true),
        ("ambiguous booleans", fixtures::booleans(), "true or true or true", true),
        ("palindromes (non-LR)", fixtures::palindromes(), "a b b a", true),
    ]
}

fn main() {
    let suite = grammar_suite();
    let booleans = fixtures::booleans();
    // The "fast" axis is measured on a long *unambiguous* sentence (the
    // arithmetic grammar), because the paper's point is throughput of the
    // ready-made parser, not ambiguity handling. The heavily ambiguous
    // boolean grammar is still used for the "flexible" measurements.
    let arithmetic = fixtures::arithmetic();
    let fast_sentence = {
        let mut s = String::from("id");
        for _ in 0..500 {
            s.push_str(" + num * id");
        }
        s
    };
    let fast_tokens = tokenize_names(&arithmetic, &fast_sentence).expect("tokens");
    let fast_len = fast_tokens.len();
    // A moderately long ambiguous sentence, used only where noted.
    let long_sentence = long_boolean_sentence(150);

    let mut verdicts = Vec::new();

    // --- LR(0)/LALR(1), deterministic ------------------------------------
    {
        let handled = suite
            .iter()
            .filter(|(_, g, s, expected)| {
                let table = lalr1_table(g);
                if !table.is_deterministic() {
                    return false;
                }
                let tokens = tokenize_names(g, s).expect("tokens");
                LrParser::new(g).recognize(&table, &tokens).unwrap_or(false) == *expected
            })
            .count();
        let table = lalr1_table(&arithmetic);
        let start = Instant::now();
        let _ = LrParser::new(&arithmetic).recognize(&table, &fast_tokens);
        let fast = start.elapsed();
        let full = Instant::now();
        let _ = lalr1_table(&arithmetic);
        let regen = full.elapsed();
        verdicts.push(Verdicts {
            name: "LR(k), LALR(k) (Yacc-like)",
            powerful: format!("{handled}/4 grammars (deterministic only)"),
            fast: format!("{:.2} ms / {fast_len} tokens", fast.as_secs_f64() * 1e3),
            flexible: format!("full regeneration ({:.2} ms)", regen.as_secs_f64() * 1e3),
            modular: "no",
        });
    }

    // --- recursive descent / LL(1) ----------------------------------------
    {
        let handled = suite
            .iter()
            .filter(|(_, g, s, expected)| {
                let parser = LlParser::new(g);
                parser.table().is_ll1()
                    && parser
                        .recognize(&tokenize_names(g, s).expect("tokens"))
                        .is_ok()
                        == *expected
            })
            .count();
        let statements = fixtures::statements();
        let parser = LlParser::new(&statements);
        let long_stmt = "begin id := num ; ".repeat(400) + "id := num end";
        let tokens = tokenize_names(&statements, &long_stmt).expect("tokens");
        let start = Instant::now();
        let _ = parser.recognize(&tokens);
        let fast = start.elapsed();
        verdicts.push(Verdicts {
            name: "recursive descent, LL(k)",
            powerful: format!("{handled}/4 grammars (no left recursion/ambiguity)"),
            fast: format!("{:.2} ms / {} tokens", fast.as_secs_f64() * 1e3, tokens.len()),
            flexible: "table regeneration".to_owned(),
            modular: "no",
        });
    }

    // --- Earley ------------------------------------------------------------
    {
        let handled = suite
            .iter()
            .filter(|(_, g, s, expected)| {
                EarleyParser::new(g).recognize(&tokenize_names(g, s).expect("tokens")) == *expected
            })
            .count();
        let parser = EarleyParser::new(&arithmetic);
        let start = Instant::now();
        let _ = parser.recognize(&fast_tokens);
        let fast = start.elapsed();
        verdicts.push(Verdicts {
            name: "Earley",
            powerful: format!("{handled}/4 grammars"),
            fast: format!("{:.2} ms / {fast_len} tokens (no tables to reuse)", fast.as_secs_f64() * 1e3),
            flexible: "free (no generation phase)".to_owned(),
            modular: "no",
        });
    }

    // --- Cigale / OBJ (trie + backtracking) ---------------------------------
    {
        let handled = suite
            .iter()
            .filter(|(_, g, s, expected)| {
                TrieParser::new(g).recognize(&tokenize_names(g, s).expect("tokens")) == *expected
            })
            .count();
        let expr = ipg_grammar::parse_bnf(
            r#"
            E ::= T "+" E | T
            T ::= "id"
            START ::= E
            "#,
        )
        .expect("grammar parses");
        let parser = TrieParser::new(&expr);
        let long_expr = "id".to_owned() + &" + id".repeat(400);
        let tokens = tokenize_names(&expr, &long_expr).expect("tokens");
        let start = Instant::now();
        let _ = parser.recognize(&tokens);
        let fast = start.elapsed();
        verdicts.push(Verdicts {
            name: "Cigale / OBJ (trie + backtracking)",
            powerful: format!("{handled}/4 grammars (no left recursion)"),
            fast: format!("{:.2} ms / {} tokens (backtracking)", fast.as_secs_f64() * 1e3, tokens.len()),
            flexible: "trie extended per rule".to_owned(),
            modular: "yes (tries compose)",
        });
    }

    // --- Tomita over a conventional LR(0) table -----------------------------
    {
        let handled = suite
            .iter()
            .filter(|(_, g, s, expected)| {
                let table = ParseTable::lr0(&Lr0Automaton::build(g), g);
                GssParser::new(g).recognize(&table, &tokenize_names(g, s).expect("tokens"))
                    == *expected
            })
            .count();
        let table = ParseTable::lr0(&Lr0Automaton::build(&arithmetic), &arithmetic);
        let start = Instant::now();
        let _ = GssParser::new(&arithmetic).recognize(&table, &fast_tokens);
        let fast = start.elapsed();
        let start = Instant::now();
        let _ = ParseTable::lr0(&Lr0Automaton::build(&arithmetic), &arithmetic);
        let regen = start.elapsed();
        verdicts.push(Verdicts {
            name: "Tomita (conventional LR(0) table)",
            powerful: format!("{handled}/4 grammars"),
            fast: format!("{:.2} ms / {fast_len} tokens", fast.as_secs_f64() * 1e3),
            flexible: format!("full regeneration ({:.2} ms)", regen.as_secs_f64() * 1e3),
            modular: "no",
        });
    }

    // --- IPG -----------------------------------------------------------------
    {
        let handled = suite
            .iter()
            .filter(|(_, g, s, expected)| {
                let graph = ItemSetGraph::new(g);
                let tables = LazyTables::new(g, &graph).unwrap();
                GssParser::new(g).recognize(&tables, &tokenize_names(g, s).expect("tokens"))
                    == *expected
            })
            .count();
        // "fast": a lazily generated (and by now warm) table over the
        // arithmetic grammar.
        let arith_graph = ItemSetGraph::new(&arithmetic);
        let _ = GssParser::new(&arithmetic)
            .recognize(&LazyTables::new(&arithmetic, &arith_graph).unwrap(), &fast_tokens);
        let start = Instant::now();
        let _ = GssParser::new(&arithmetic)
            .recognize(&LazyTables::new(&arithmetic, &arith_graph).unwrap(), &fast_tokens);
        let fast = start.elapsed();
        // "flexible": an editing step on a warm boolean session.
        let mut session = IpgSession::new(booleans.clone());
        session.parse_sentence("true or false and true").expect("parses");
        let _ = session.tokens(&long_sentence).expect("tokens");
        let start = Instant::now();
        session.add_rule_text(r#"B ::= "unknown""#).expect("rule parses");
        let flexible = start.elapsed();
        verdicts.push(Verdicts {
            name: "IPG (lazy/incremental LR(0) + Tomita)",
            powerful: format!("{handled}/4 grammars"),
            fast: format!("{:.2} ms / {fast_len} tokens", fast.as_secs_f64() * 1e3),
            flexible: format!("incremental update ({:.3} ms)", flexible.as_secs_f64() * 1e3),
            modular: "yes (rule-by-rule extension)",
        });
    }

    println!("Fig. 2.1 — comparison of parsing algorithms (measured)\n");
    println!(
        "{:<40} | {:<42} | {:<34} | {:<36} | modular",
        "algorithm", "powerful", "fast", "flexible"
    );
    println!("{}", "-".repeat(170));
    for v in &verdicts {
        println!(
            "{:<40} | {:<42} | {:<34} | {:<36} | {}",
            v.name, v.powerful, v.fast, v.flexible, v.modular
        );
    }
}
