//! Reproduces Fig. 4.1 and Fig. 4.2: the grammar of the Booleans, its
//! LR(0) parse table, its graph of item sets, and (with `--trace`) the
//! moves of the parser on `true or false`.
//!
//! Run with `cargo run -p ipg-bench --bin fig4_table [-- --trace]`.

use ipg_grammar::fixtures;
use ipg_lr::{render_trace, tokenize_names, Lr0Automaton, LrParser, ParseTable};

fn main() {
    let trace_requested = std::env::args().any(|a| a == "--trace");
    let grammar = fixtures::booleans();

    println!("Fig. 4.1(a) — grammar of the Booleans");
    println!("{}", grammar.display());

    let automaton = Lr0Automaton::build(&grammar);
    let table = ParseTable::lr0(&automaton, &grammar);
    println!("Fig. 4.1(b) — LR(0) parse table ({} states)", table.num_states());
    println!("{}", table.render(&grammar));

    println!("Fig. 4.1(c) — graph of item sets");
    println!("{}", automaton.render(&grammar));

    println!(
        "conflicts: {} (the grammar is ambiguous; the parallel parser handles them)",
        table.conflicts().len()
    );

    if trace_requested {
        // Fig. 4.2 uses `true or false`, which stays on the deterministic
        // part of the table.
        let tokens = tokenize_names(&grammar, "true or false").expect("tokens exist");
        let parser = LrParser::new(&grammar);
        let table = ParseTable::lr0(&automaton, &grammar);
        let mut trace = Vec::new();
        match parser.parse_with_trace(&table, &tokens, &mut trace) {
            Ok(tree) => {
                println!("Fig. 4.2 — the parsing of `true or false`");
                println!("{}", render_trace(&grammar, &trace));
                println!("parse tree:\n{}", tree.render(&grammar));
            }
            Err(e) => println!("deterministic parse failed: {e}"),
        }
    }
}
