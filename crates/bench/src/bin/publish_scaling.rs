//! `publish-scaling`: how does **edit-publication latency** scale with
//! grammar size?
//!
//! The paper's thesis (§6, §8) is that an interactive edit must cost what
//! it *invalidates*, not what the language definition has accumulated.
//! This bench pits the two fork strategies against each other on synthetic
//! chain grammars of ~100 / ~1000 / ~5000 productions whose edit rule
//! invalidates a **constant** number of item sets:
//!
//! * **persistent** — the serving path: `IpgServer::modify` forks the
//!   epoch structurally shared (O(#chunks) `Arc` bumps) and the §6 pass
//!   copies-on-write only the chunks holding invalidated states. Expected
//!   flat (≤2x from smallest to largest size).
//! * **deep-fork** — the seed behaviour of this PR, reproduced by
//!   `IpgSession::unshare_all` after the clone: every node chunk, kernel
//!   shard, snapshot chunk and grammar table is copied per edit. Expected
//!   ~linear in grammar size.
//!
//! Prints a table and writes `BENCH_publish_scaling.json`; the run fails
//! its own target check (exit code 1) if the persistent store's edit
//! latency more than doubles from the smallest to the largest grammar.
//!
//! Run with `cargo run --release -p ipg-bench --bin publish-scaling`.

use std::fmt::Write as _;
use std::time::Instant;

use ipg::{IpgServer, IpgSession};
use ipg_bench::{mean_max_us, synthetic_workload};

struct Row {
    productions: usize,
    states: usize,
    chunks: usize,
    persistent_mean_us: f64,
    persistent_max_us: f64,
    deep_mean_us: f64,
    deep_max_us: f64,
    /// Fraction of storage chunks shared between the pre- and post-edit
    /// epoch under the persistent store.
    shared_fraction: f64,
}

fn measure(productions: usize, edits: usize, deep_edits: usize) -> Row {
    let workload = synthetic_workload(productions);
    let (lhs, rhs) = workload.edit.clone();

    // ---- persistent (the serving path) --------------------------------
    let session = IpgSession::new(workload.grammar.clone());
    session.graph().expand_all(session.grammar());
    let states = session.graph().num_live();
    let chunks = session.graph().num_chunks();
    let server = IpgServer::new(session);
    assert!(server.parse(&workload.sentence).accepted, "sanity parse");

    // Chunk sharing across one publication (measured before the timing
    // loop so the pins don't skew reclamation).
    let shared_fraction = {
        let before = server.current_epoch();
        server.modify(|s| {
            s.add_rule(lhs, rhs.clone());
        });
        let after = server.current_epoch();
        let shared = before
            .session()
            .graph()
            .shared_chunks_with(after.session().graph());
        let fraction =
            shared.iter().filter(|&&s| s).count() as f64 / shared.len().max(1) as f64;
        server.modify(|s| {
            s.remove_rule(lhs, &rhs).expect("edit rule was just added");
        });
        fraction
    };

    // Warm-up edit pair, then timed steady-state cycles.
    server.modify(|s| {
        s.add_rule(lhs, rhs.clone());
    });
    server.modify(|s| {
        s.remove_rule(lhs, &rhs).expect("edit rule was just added");
    });
    let mut persistent: Vec<f64> = Vec::with_capacity(edits);
    for i in 0..edits {
        let start = Instant::now();
        if i % 2 == 0 {
            server.modify(|s| {
                s.add_rule(lhs, rhs.clone());
            });
        } else {
            server.modify(|s| {
                s.remove_rule(lhs, &rhs).expect("edit rule was just added");
            });
        }
        persistent.push(start.elapsed().as_secs_f64());
    }
    assert!(server.parse(&workload.sentence).accepted, "still serving");

    // ---- deep fork (the seed behaviour of this PR) --------------------
    let mut base = IpgSession::new(workload.grammar.clone());
    base.graph().expand_all(base.grammar());
    let mut deep: Vec<f64> = Vec::with_capacity(deep_edits);
    for i in 0..deep_edits {
        let start = Instant::now();
        let mut fork = base.clone();
        fork.unshare_all();
        if i % 2 == 0 {
            fork.add_rule(lhs, rhs.clone());
        } else {
            fork.remove_rule(lhs, &rhs).expect("edit rule was just added");
        }
        deep.push(start.elapsed().as_secs_f64());
        base = fork; // "publish" the fork, as the old server did
    }

    let (persistent_mean_us, persistent_max_us) = mean_max_us(&persistent);
    let (deep_mean_us, deep_max_us) = mean_max_us(&deep);
    Row {
        productions,
        states,
        chunks,
        persistent_mean_us,
        persistent_max_us,
        deep_mean_us,
        deep_max_us,
        shared_fraction,
    }
}

fn main() {
    let sizes = [100usize, 1000, 5000];
    let edits = 200;
    let deep_edits = 40;

    let rows: Vec<Row> = sizes
        .iter()
        .map(|&size| measure(size, edits, deep_edits))
        .collect();

    println!("Edit-publication latency vs grammar size ({edits} persistent / {deep_edits} deep edits per size)");
    println!("productions |  states | chunks | persistent mean/max µs | deep-fork mean/max µs | chunks shared");
    for row in &rows {
        println!(
            "{:>11} | {:>7} | {:>6} | {:>10.1} / {:>8.1} | {:>9.1} / {:>9.1} | {:>11.1}%",
            row.productions,
            row.states,
            row.chunks,
            row.persistent_mean_us,
            row.persistent_max_us,
            row.deep_mean_us,
            row.deep_max_us,
            row.shared_fraction * 100.0,
        );
    }

    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    let persistent_growth = last.persistent_mean_us / first.persistent_mean_us;
    let deep_growth = last.deep_mean_us / first.deep_mean_us;
    println!(
        "\npersistent-store edit latency growth {}→{} productions: {persistent_growth:.2}x (target ≤ 2x)",
        first.productions, last.productions
    );
    println!("deep-fork edit latency growth: {deep_growth:.2}x (the cost the persistent store removes)");

    let mut json = String::from(
        "{\n  \"benchmark\": \"publish-scaling\",\n  \"workload\": \"synthetic-chain\",\n  \"rows\": [\n",
    );
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"productions\": {}, \"states\": {}, \"chunks\": {}, \
             \"persistent_mean_us\": {:.2}, \"persistent_max_us\": {:.2}, \
             \"deep_fork_mean_us\": {:.2}, \"deep_fork_max_us\": {:.2}, \
             \"shared_chunk_fraction\": {:.4}}}{}",
            row.productions,
            row.states,
            row.chunks,
            row.persistent_mean_us,
            row.persistent_max_us,
            row.deep_mean_us,
            row.deep_max_us,
            row.shared_fraction,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"persistent_growth\": {persistent_growth:.3},\n  \"deep_fork_growth\": {deep_growth:.3}\n}}\n"
    );
    std::fs::write("BENCH_publish_scaling.json", &json).expect("write BENCH_publish_scaling.json");
    println!("\nwrote BENCH_publish_scaling.json");

    if persistent_growth > 2.0 {
        eprintln!(
            "WARNING: persistent-store edit latency grew {persistent_growth:.2}x from {} to {} productions (target ≤ 2x)",
            first.productions, last.productions
        );
    }
    // Hard gate with headroom for scheduler noise on shared CI runners:
    // anything past 2.5x (or within a factor of four of the deep fork's
    // growth) means structural sharing regressed, not that the run was
    // unlucky.
    if persistent_growth > 2.5 || persistent_growth * 4.0 > deep_growth {
        eprintln!("FAIL: edit publication no longer scales like O(invalidated)");
        std::process::exit(1);
    }
}
