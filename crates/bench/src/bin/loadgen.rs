//! `ipg-loadgen` — overload-robustness benchmark for the network frontend.
//!
//! ```text
//! ipg-loadgen [--addr HOST:PORT] [--conns N] [--phase-secs S]
//!             [--workers N] [--queue-depth N] [--tenants N]
//!             [--adversarial PCT] [--seed N] [--out FILE]
//! ```
//!
//! Without `--addr`, spawns an in-process [`ipg_frontend::Frontend`] over
//! the Fig. 7 SDF workload; with it, drives an externally launched
//! `ipg-frontend` (which must serve the default `sdf` grammar).
//!
//! `--tenants N` (N > 1) turns on multi-tenant mode: N−1 dialect tenants
//! are attached over the wire (`ATTACH-TENANT`, forked copy-on-write from
//! the `default` tenant) and every open-loop request addresses a tenant
//! drawn from a Zipf(1) distribution over all N — the skewed-popularity
//! shape real multi-tenant fleets see. The capacity phases stay on the
//! default tenant so the calibration is comparable across modes.
//!
//! Measurement protocol:
//!
//! 1. **Capacity**: a closed-loop estimate (back-to-back requests on
//!    `--conns` connections), then re-measured as the *served* rate of a
//!    saturating open-loop run — on small hosts the load-generation
//!    machinery itself costs CPU, and calibrating with the same machinery
//!    keeps the sweep multipliers honest.
//! 2. **Open-loop Poisson sweeps** at 0.8×, 1×, 2× and 4× capacity.
//!    Arrivals are *scheduled* (exponential inter-arrival gaps, fixed
//!    seed) and sent at their scheduled instant regardless of outstanding
//!    replies — the open-loop discipline that exposes overload collapse,
//!    which closed-loop clients hide by self-throttling. Latency is
//!    measured from the actual send; client-side scheduling lag is
//!    reported separately (`max_send_lag_us`) so a CPU-starved generator
//!    is visible rather than silently folded into server latency. The 2×
//!    and 4× phases carry a deadline budget equal to the 0.8× p99 — the
//!    mechanism that keeps served-latency bounded while the excess is
//!    shed.
//!
//! `--adversarial PCT` adds a containment phase after the sweeps: an
//! extra 1× run in which PCT% of requests are **runaway parses** — a
//! maximally ambiguous Catalan grammar (attached as its own tenant) fed
//! long `x` sentences whose GSS work blows up combinatorially. The
//! adversarial requests carry the healthy-p99 deadline (observed
//! *mid-parse* by the budget machinery), and in-process mode additionally
//! caps their tenant's fuel/byte budgets — so every one of them must come
//! back quickly as `RESOURCE_EXHAUSTED`/`DEADLINE_EXCEEDED`, not hang a
//! worker.
//!
//! Writes `BENCH_frontend.json` and exits non-zero if any robustness gate
//! fails:
//!
//! * every sent request got exactly one reply (no silent drops, no hangs),
//! * shed rate at 1× offered load is ~0 (≤ 5%),
//! * p99 of *served* requests at 4× offered load is ≤ 2.5× the 0.8× p99
//!   on hosts with ≥ 4 cores (3× on smaller hosts, where client and
//!   server fight for the same cores) — plateau, not collapse —
//! * p99 at 0.8× load is under a generous absolute bound (150 ms), and
//! * with `--adversarial`: every adversarial request got a definitive
//!   reply and the **well-behaved** p99 of the mixed phase is ≤ 3× the
//!   clean 1× p99 — runaway parses cannot degrade their neighbours.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use ipg::{IpgServer, IpgSession, LatencyHistogram};
use ipg_frontend::protocol::{
    read_response, write_request, FrameError, Status, Verb, DEFAULT_MAX_FRAME,
};
use ipg_frontend::{Client, Frontend, FrontendConfig};
use ipg_sdf::fixtures::sdf_grammar_and_scanner;
use ipg_sdf::NormalizedSdf;

// ---------------------------------------------------------------------
// Deterministic Poisson arrivals (no external RNG crate).
// ---------------------------------------------------------------------

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// One exponential inter-arrival gap (seconds) at `rate` arrivals/second.
fn exp_gap(state: &mut u64, rate: f64) -> f64 {
    // Uniform in (0, 1]: the +1 keeps ln() finite.
    let u = ((xorshift(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    -u.ln() / rate
}

/// The tenant-addressing side of multi-tenant mode: wire tenant ids plus
/// a Zipf(1) CDF over them (rank r gets weight 1/r — a few hot tenants,
/// a long cold tail).
struct ZipfTenants {
    ids: Vec<u32>,
    cdf: Vec<f64>,
}

impl ZipfTenants {
    /// Single-tenant mode: everything addresses the default tenant.
    fn single() -> ZipfTenants {
        ZipfTenants::over(vec![0])
    }

    fn over(ids: Vec<u32>) -> ZipfTenants {
        let weights: Vec<f64> = (0..ids.len()).map(|r| 1.0 / (r + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfTenants { ids, cdf }
    }

    fn sample(&self, state: &mut u64) -> u32 {
        if self.ids.len() == 1 {
            return self.ids[0];
        }
        let u = (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64;
        let rank = self.cdf.partition_point(|&c| c <= u).min(self.ids.len() - 1);
        self.ids[rank]
    }
}

// ---------------------------------------------------------------------
// Tallies
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, Default)]
struct Tally {
    sent: u64,
    ok: u64,
    accepted: u64,
    overloaded: u64,
    deadline_exceeded: u64,
    shutting_down: u64,
    resource_exhausted: u64,
    cancelled: u64,
    error: u64,
    send_errors: u64,
    unanswered: u64,
    /// Worst client-side lag between a request's scheduled and actual
    /// send instant (microseconds) — generator health, not server latency.
    max_send_lag_us: u64,
    /// Latency of *served* (`OK`/`ERROR`) requests, send→reply.
    latency_ok: LatencyHistogram,
    /// Latency of shed requests — how fast the frontend says "no".
    latency_shed: LatencyHistogram,
}

impl Tally {
    fn merge(&mut self, other: &Tally) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.accepted += other.accepted;
        self.overloaded += other.overloaded;
        self.deadline_exceeded += other.deadline_exceeded;
        self.shutting_down += other.shutting_down;
        self.resource_exhausted += other.resource_exhausted;
        self.cancelled += other.cancelled;
        self.error += other.error;
        self.send_errors += other.send_errors;
        self.unanswered += other.unanswered;
        self.max_send_lag_us = self.max_send_lag_us.max(other.max_send_lag_us);
        self.latency_ok.merge(&other.latency_ok);
        self.latency_shed.merge(&other.latency_shed);
    }

    fn replies(&self) -> u64 {
        self.ok
            + self.error
            + self.overloaded
            + self.deadline_exceeded
            + self.shutting_down
            + self.resource_exhausted
            + self.cancelled
    }

    fn shed(&self) -> u64 {
        self.overloaded + self.deadline_exceeded + self.shutting_down
    }

    fn shed_rate(&self) -> f64 {
        self.shed() as f64 / self.sent.max(1) as f64
    }
}

// ---------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------

/// Closed-loop saturation: every connection keeps exactly one request in
/// flight; completions/second at saturation is the service capacity.
fn capacity_phase(addr: &str, conns: usize, secs: f64, payload: &'static str) -> f64 {
    let started = Instant::now();
    let total: u64 = thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect for capacity phase");
                    let mut done = 0u64;
                    let deadline = Instant::now() + Duration::from_secs_f64(secs);
                    while Instant::now() < deadline {
                        client
                            .parse_text(payload, 0)
                            .expect("capacity-phase request");
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    total as f64 / started.elapsed().as_secs_f64()
}

/// The adversarial mix of the containment phase: what fraction of
/// requests become runaway parses, which tenant serves the pathological
/// grammar, the pre-lexed blow-up sentence, and the deadline each
/// adversarial request carries (its bounded-latency backstop).
struct Adversarial {
    frac: f64,
    tenant: u32,
    sentence: String,
    deadline_us: u32,
}

/// One open-loop connection: a writer sending at scheduled instants and a
/// reader correlating replies by request id. Returns the connection's
/// `(well_behaved, adversarial)` tallies (the second is empty without an
/// adversarial mix).
#[allow(clippy::too_many_arguments)]
fn open_loop_connection(
    addr: &str,
    rate: f64,
    secs: f64,
    deadline_us: u32,
    payload: &str,
    seed: u64,
    tenants: &ZipfTenants,
    adversarial: Option<&Adversarial>,
) -> (Tally, Tally) {
    let stream = TcpStream::connect(addr).expect("connect for open-loop phase");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_write_timeout(Some(Duration::from_secs(2)))
        .expect("write timeout");
    let read_half = stream.try_clone().expect("clone stream");
    read_half
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("read timeout");

    // request id → (actual send instant, adversarial?); inserted before
    // the frame is written, so the reader always finds its entry.
    let pending: Arc<Mutex<HashMap<u64, (Instant, bool)>>> = Arc::new(Mutex::new(HashMap::new()));
    let writer_done = Arc::new(AtomicBool::new(false));

    let reader = {
        let pending = Arc::clone(&pending);
        let writer_done = Arc::clone(&writer_done);
        thread::spawn(move || {
            let mut well = Tally::default();
            let mut adv = Tally::default();
            let mut reader = BufReader::new(read_half);
            let mut grace_started: Option<Instant> = None;
            loop {
                match read_response(&mut reader, DEFAULT_MAX_FRAME) {
                    Ok(response) => {
                        let Some((sent_at, is_adv)) =
                            pending.lock().unwrap().remove(&response.request_id)
                        else {
                            continue; // duplicate or unknown id: ignore
                        };
                        let latency = sent_at.elapsed();
                        let tally = if is_adv { &mut adv } else { &mut well };
                        match response.status {
                            Status::Ok => {
                                tally.ok += 1;
                                if response.parse_outcome().is_some_and(|(accepted, _)| accepted)
                                {
                                    tally.accepted += 1;
                                }
                                tally.latency_ok.record(latency);
                            }
                            Status::Error => {
                                tally.error += 1;
                                tally.latency_ok.record(latency);
                            }
                            Status::Overloaded => {
                                tally.overloaded += 1;
                                tally.latency_shed.record(latency);
                            }
                            Status::DeadlineExceeded => {
                                tally.deadline_exceeded += 1;
                                tally.latency_shed.record(latency);
                            }
                            Status::ShuttingDown => {
                                tally.shutting_down += 1;
                                tally.latency_shed.record(latency);
                            }
                            Status::ResourceExhausted => {
                                tally.resource_exhausted += 1;
                                tally.latency_shed.record(latency);
                            }
                            Status::Cancelled => {
                                tally.cancelled += 1;
                                tally.latency_shed.record(latency);
                            }
                            Status::Malformed => tally.error += 1,
                        }
                    }
                    Err(FrameError::Idle) | Err(FrameError::SlowClient) => {
                        if writer_done.load(Ordering::Acquire) {
                            if pending.lock().unwrap().is_empty() {
                                break;
                            }
                            // Allow stragglers a grace window, then call
                            // the rest unanswered.
                            let grace = *grace_started.get_or_insert_with(Instant::now);
                            if grace.elapsed() > Duration::from_secs(5) {
                                break;
                            }
                        }
                    }
                    Err(_) => break,
                }
            }
            for (_, (_, is_adv)) in pending.lock().unwrap().iter() {
                if *is_adv {
                    adv.unanswered += 1;
                } else {
                    well.unanswered += 1;
                }
            }
            (well, adv)
        })
    };

    // The writer: send each request at its scheduled instant, never
    // waiting for replies (open loop).
    let mut buf = Vec::new();
    let mut write_half = stream;
    let mut rng = seed | 1;
    let mut sent = 0u64;
    let mut adv_sent = 0u64;
    let mut send_errors = 0u64;
    let mut max_lag = 0u64;
    let mut at = 0.0f64;
    let started = Instant::now();
    loop {
        at += exp_gap(&mut rng, rate);
        if at >= secs {
            break;
        }
        let scheduled = started + Duration::from_secs_f64(at);
        let now = Instant::now();
        let sent_at = if scheduled > now {
            thread::sleep(scheduled - now);
            Instant::now()
        } else {
            max_lag = max_lag.max((now - scheduled).as_micros() as u64);
            now
        };
        sent += 1;
        let id = sent;
        let mix = adversarial.filter(|a| {
            let u = (xorshift(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
            u < a.frac
        });
        let (verb, tenant, body, request_deadline_us) = match mix {
            Some(a) => (Verb::ParseTokens, a.tenant, a.sentence.as_bytes(), a.deadline_us),
            None => (
                Verb::ParseText,
                tenants.sample(&mut rng),
                payload.as_bytes(),
                deadline_us,
            ),
        };
        if mix.is_some() {
            adv_sent += 1;
        }
        pending.lock().unwrap().insert(id, (sent_at, mix.is_some()));
        if write_request(
            &mut write_half,
            &mut buf,
            id,
            verb,
            request_deadline_us,
            tenant,
            body,
        )
        .is_err()
        {
            pending.lock().unwrap().remove(&id);
            sent -= 1;
            if mix.is_some() {
                adv_sent -= 1;
            }
            send_errors += 1;
            break; // the connection is gone; stop offering on it
        }
    }
    writer_done.store(true, Ordering::Release);
    let (mut well, mut adv) = reader.join().unwrap();
    well.sent = sent - adv_sent;
    adv.sent = adv_sent;
    well.send_errors = send_errors;
    well.max_send_lag_us = max_lag;
    (well, adv)
}

/// One open-loop Poisson sweep at `rate` requests/second across `conns`
/// connections (independent Poisson streams superpose to Poisson).
#[allow(clippy::too_many_arguments)]
fn open_loop_phase(
    addr: &str,
    conns: usize,
    rate: f64,
    secs: f64,
    deadline_us: u32,
    payload: &str,
    seed: u64,
    tenants: &ZipfTenants,
    adversarial: Option<&Adversarial>,
) -> (Tally, Tally) {
    let per_conn = rate / conns as f64;
    thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|i| {
                let conn_seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64 + 1);
                scope.spawn(move || {
                    open_loop_connection(
                        addr,
                        per_conn,
                        secs,
                        deadline_us,
                        payload,
                        conn_seed,
                        tenants,
                        adversarial,
                    )
                })
            })
            .collect();
        let mut well = Tally::default();
        let mut adv = Tally::default();
        for handle in handles {
            let (w, a) = handle.join().unwrap();
            well.merge(&w);
            adv.merge(&a);
        }
        (well, adv)
    })
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

fn histogram_json(h: &LatencyHistogram) -> String {
    let (p50, p99, p999) = h.percentiles_us();
    format!(
        "{{\"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {p50}, \"p99_us\": {p99}, \
         \"p999_us\": {p999}, \"max_us\": {}}}",
        h.count(),
        h.mean_us(),
        h.max_us()
    )
}

fn phase_json(multiplier: f64, rate: f64, deadline_us: u32, tally: &Tally) -> String {
    format!(
        "    {{\"offered_x\": {multiplier}, \"offered_rps\": {rate:.1}, \
         \"deadline_us\": {deadline_us}, \"sent\": {}, \"replies\": {}, \"ok\": {}, \
         \"accepted\": {}, \"overloaded\": {}, \"deadline_exceeded\": {}, \
         \"shutting_down\": {}, \"resource_exhausted\": {}, \"cancelled\": {}, \
         \"error\": {}, \"send_errors\": {}, \"unanswered\": {}, \
         \"shed_rate\": {:.4}, \"max_send_lag_us\": {}, \"latency_served_us\": {}, \
         \"latency_shed_us\": {}}}",
        tally.sent,
        tally.replies(),
        tally.ok,
        tally.accepted,
        tally.overloaded,
        tally.deadline_exceeded,
        tally.shutting_down,
        tally.resource_exhausted,
        tally.cancelled,
        tally.error,
        tally.send_errors,
        tally.unanswered,
        tally.shed_rate(),
        tally.max_send_lag_us,
        histogram_json(&tally.latency_ok),
        histogram_json(&tally.latency_shed),
    )
}

// ---------------------------------------------------------------------
// Main
// ---------------------------------------------------------------------

struct Options {
    addr: Option<String>,
    conns: usize,
    phase_secs: f64,
    workers: usize,
    queue_depth: usize,
    tenants: usize,
    /// Percentage (0–100) of requests in the containment phase that are
    /// adversarial runaway parses; 0 disables the phase.
    adversarial: f64,
    seed: u64,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: None,
        conns: 4,
        phase_secs: 3.0,
        workers: 0,
        queue_depth: 256,
        tenants: 1,
        adversarial: 0.0,
        seed: 42,
        out: "BENCH_frontend.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => options.addr = Some(value("--addr")?),
            "--conns" => {
                options.conns = value("--conns")?
                    .parse()
                    .map_err(|_| "--conns expects a number".to_owned())?;
            }
            "--phase-secs" => {
                options.phase_secs = value("--phase-secs")?
                    .parse()
                    .map_err(|_| "--phase-secs expects a number".to_owned())?;
            }
            "--workers" => {
                options.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects a number".to_owned())?;
            }
            "--queue-depth" => {
                options.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth expects a number".to_owned())?;
            }
            "--tenants" => {
                options.tenants = value("--tenants")?
                    .parse()
                    .map_err(|_| "--tenants expects a number".to_owned())?;
            }
            "--adversarial" => {
                options.adversarial = value("--adversarial")?
                    .parse()
                    .map_err(|_| "--adversarial expects a percentage".to_owned())?;
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects a number".to_owned())?;
            }
            "--out" => options.out = value("--out")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if options.conns == 0 {
        return Err("--conns must be at least 1".to_owned());
    }
    if options.tenants == 0 {
        return Err("--tenants must be at least 1".to_owned());
    }
    if !(0.0..=100.0).contains(&options.adversarial) {
        return Err("--adversarial expects a percentage in 0..=100".to_owned());
    }
    Ok(options)
}

/// Multi-tenant mode's attach phase: `ATTACH-TENANT` N−1 dialect forks of
/// the `default` tenant. Each delta adds one fresh, unreachable sort, so
/// the fork shares the base's entire warm working set copy-on-write — the
/// registry's deduped accounting keeps the marginal tenant nearly free.
fn attach_zipf_tenants(addr: &str, tenants: usize) -> Vec<u32> {
    let mut ids = vec![0u32];
    let mut client = Client::connect(addr).expect("connect for attach phase");
    for i in 1..tenants {
        let response = client
            .attach_tenant(
                &format!("zipf-{i}"),
                "default",
                &format!("ZIPFDIALECT{i} ::= \"zipf{i}\""),
            )
            .expect("attach-tenant request");
        match Client::attach_tenant_outcome(&response) {
            Some(id) => ids.push(id),
            None => {
                eprintln!(
                    "attach zipf-{i} failed: {}",
                    String::from_utf8_lossy(&response.payload)
                );
                std::process::exit(2);
            }
        }
    }
    ids
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    // The load payload: the smallest Fig. 7 measurement input, so one
    // request is a realistic-but-quick scan+parse.
    let payload = ipg_sdf::fixtures::measurement_inputs()
        .into_iter()
        .find(|i| i.name == "exp.sdf")
        .expect("exp.sdf input exists")
        .text;

    // Target: an external frontend, or one spawned in-process.
    let in_process = options.addr.is_none();
    let frontend = if in_process {
        let NormalizedSdf { grammar, scanner } = sdf_grammar_and_scanner();
        let server = Arc::new(IpgServer::new(IpgSession::new(grammar)).with_scanner(scanner));
        server.parse_text_pooled(payload).expect("prewarm parse");
        let config = FrontendConfig {
            workers: options.workers,
            queue_depth: options.queue_depth,
            ..FrontendConfig::default()
        };
        Some(Frontend::bind("127.0.0.1:0", config, server).expect("bind in-process frontend"))
    } else {
        None
    };
    let addr = frontend
        .as_ref()
        .map(|f| f.local_addr().to_string())
        .or(options.addr.clone())
        .expect("an address either way");

    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "target: {addr} ({}), payload: exp.sdf, conns: {}, phase: {:.1}s, tenants: {}, \
         host: {cores} core(s)",
        if in_process { "in-process" } else { "external" },
        options.conns,
        options.phase_secs,
        options.tenants,
    );

    // Multi-tenant mode: attach the dialect tenants up front, then spread
    // the open-loop phases over them Zipf(1)-style.
    let tenants = if options.tenants > 1 {
        ZipfTenants::over(attach_zipf_tenants(&addr, options.tenants))
    } else {
        ZipfTenants::single()
    };

    // Phase 1: capacity. The closed-loop estimate sets the saturating
    // rate; the served rate of an open-loop run *at* that rate is the
    // capacity the sweeps are scaled against — this folds the load
    // generator's own CPU cost into the calibration, which matters when
    // client and server share a small host.
    let closed_rps = capacity_phase(&addr, options.conns, options.phase_secs, payload);
    println!("capacity (closed loop): {closed_rps:.0} req/s");
    let (calibration, _) = open_loop_phase(
        &addr,
        options.conns,
        closed_rps * 1.25,
        options.phase_secs,
        0,
        payload,
        options.seed ^ 0x00C0_FFEE,
        &ZipfTenants::single(),
        None,
    );
    let capacity =
        (calibration.ok + calibration.error) as f64 / options.phase_secs;
    println!(
        "capacity (open loop, served): {capacity:.0} req/s ({} unanswered in calibration)",
        calibration.unanswered
    );

    // Phase 2: open-loop sweeps. 0.8× and 1× run without deadlines (the
    // queue alone must keep them healthy); 2× and 4× carry a deadline
    // budget equal to the 0.8× p99, the mechanism that bounds served
    // latency under overload.
    let multipliers = [0.8, 1.0, 2.0, 4.0];
    let mut results: Vec<(f64, f64, u32, Tally)> = Vec::new();
    let mut overload_deadline_us = 0u32;
    for (i, &multiplier) in multipliers.iter().enumerate() {
        let rate = capacity * multiplier;
        let deadline_us = if multiplier > 1.0 { overload_deadline_us } else { 0 };
        let (tally, _) = open_loop_phase(
            &addr,
            options.conns,
            rate,
            options.phase_secs,
            deadline_us,
            payload,
            options.seed.wrapping_add(i as u64 * 1_000_003),
            &tenants,
            None,
        );
        let (_, p99, _) = tally.latency_ok.percentiles_us();
        println!(
            "{multiplier:>4}x offered ({rate:>7.0} rps, deadline {deadline_us:>6}us): \
             sent {:>6}, served {:>6}, shed {:>6} ({:>5.1}%), unanswered {}, served p99 {}us",
            tally.sent,
            tally.ok + tally.error,
            tally.shed(),
            tally.shed_rate() * 100.0,
            tally.unanswered,
            p99,
        );
        if multiplier == 0.8 {
            // The healthy p99 as the budget, floored at 1 ms against
            // timer jitter: admitted requests that would wait longer than
            // a healthy round trip are shed instead of served uselessly
            // late, which is what keeps the served-latency curve flat.
            overload_deadline_us = p99.clamp(1_000, 30_000_000) as u32;
        }
        results.push((multiplier, rate, deadline_us, tally));
    }

    // Phase 3 (optional): adversarial containment. A 1× mixed run where
    // `--adversarial` percent of requests are Catalan blow-ups against a
    // dedicated tenant. Every adversarial request must come back
    // definitively (budget kill or deadline kill, both observed
    // *mid-parse*), and the well-behaved neighbours' p99 must stay within
    // 3× of the clean 1× phase.
    let adversarial = if options.adversarial > 0.0 {
        let rules = ipg_bench::workload::adversarial_grammar_bnf(1);
        let mut client = Client::connect(&addr).expect("connect for adversarial attach");
        let response = client
            .attach_tenant("adversarial", "", &rules)
            .expect("attach-tenant request");
        let Some(adv_tenant) = Client::attach_tenant_outcome(&response) else {
            eprintln!(
                "attach adversarial tenant failed: {}",
                String::from_utf8_lossy(&response.payload)
            );
            std::process::exit(2);
        };
        // In-process mode also caps the adversarial tenant's fuel and byte
        // budgets, so `RESOURCE_EXHAUSTED` (not just the deadline) is
        // exercised. Externally the deadline backstop alone bounds them.
        if let Some(frontend) = frontend.as_ref() {
            if let Some(server) = frontend.registry().server(adv_tenant) {
                server.set_default_budget(
                    ipg::ParseBudget::default()
                        .with_fuel(2_000)
                        .with_max_gss_bytes(32 << 20)
                        .with_max_forest_bytes(32 << 20),
                );
            }
        }
        let mix = Adversarial {
            frac: options.adversarial / 100.0,
            tenant: adv_tenant,
            sentence: ipg_bench::workload::adversarial_sentence(96),
            deadline_us: overload_deadline_us.max(1_000),
        };
        let rate = capacity;
        let (well, adv) = open_loop_phase(
            &addr,
            options.conns,
            rate,
            options.phase_secs,
            0,
            payload,
            options.seed ^ 0x0ADD_BA11,
            &ZipfTenants::single(),
            Some(&mix),
        );
        let (_, well_p99, _) = well.latency_ok.percentiles_us();
        println!(
            "adversarial ({:.0}% of 1x, deadline {}us): well-behaved sent {:>6} p99 {}us; \
             adversarial sent {:>5}, exhausted {}, deadline-killed {}, ok {}, error {}, \
             unanswered {}",
            options.adversarial,
            mix.deadline_us,
            well.sent,
            well_p99,
            adv.sent,
            adv.resource_exhausted,
            adv.deadline_exceeded,
            adv.ok,
            adv.error,
            adv.unanswered,
        );
        Some((mix, rate, well, adv))
    } else {
        None
    };

    // The server's own view, over the wire.
    let server_stats_json = Client::connect(&addr)
        .and_then(|mut client| client.stats_json())
        .unwrap_or_else(|_| "null".to_owned());

    if let Some(frontend) = frontend {
        frontend.shutdown(ipg_frontend::ShutdownMode::Drain);
    }

    // ------------------------------------------------------------------
    // Report + gates
    // ------------------------------------------------------------------
    let p99_08 = results[0].3.latency_ok.percentiles_us().1;
    let p99_1x = results[1].3.latency_ok.percentiles_us().1;
    let p99_4x = results[3].3.latency_ok.percentiles_us().1;
    let shed_rate_1x = results[1].3.shed_rate();
    let unanswered_total: u64 = calibration.unanswered
        + results.iter().map(|(_, _, _, t)| t.unanswered).sum::<u64>()
        + adversarial
            .as_ref()
            .map_or(0, |(_, _, well, adv)| well.unanswered + adv.unanswered);
    let p99_ratio = p99_4x as f64 / p99_08.max(1) as f64;

    let ratio_gate = if cores >= 4 { 2.5 } else { 3.0 };
    // The containment gate: well-behaved p99 with runaway neighbours vs
    // the clean 1× p99.
    let adversarial_gate = 3.0;
    let adversarial_ratio = adversarial.as_ref().map(|(_, _, well, _)| {
        well.latency_ok.percentiles_us().1 as f64 / p99_1x.max(1) as f64
    });

    let mut json = format!(
        "{{\n  \"benchmark\": \"frontend\",\n  \"workload\": \"sdf-exp\",\n  \
         \"mode\": \"{}\",\n  \"host_cores\": {cores},\n  \"conns\": {},\n  \
         \"tenants\": {},\n  \"phase_secs\": {},\n  \"closed_loop_rps\": {closed_rps:.1},\n  \
         \"capacity_rps\": {capacity:.1},\n  \"phases\": [\n",
        if in_process { "in-process" } else { "external" },
        options.conns,
        options.tenants,
        options.phase_secs,
    );
    for (i, (multiplier, rate, deadline_us, tally)) in results.iter().enumerate() {
        json.push_str(&phase_json(*multiplier, *rate, *deadline_us, tally));
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    let adversarial_json = match &adversarial {
        Some((mix, rate, well, adv)) => format!(
            "{{\n    \"pct\": {},\n    \"sentence_tokens\": 96,\n    \"well_behaved\":\n{},\n    \
             \"adversarial\":\n{},\n    \"well_p99_ratio_vs_1x\": {:.3},\n    \
             \"well_p99_ratio_gate\": {adversarial_gate}\n  }}",
            options.adversarial,
            phase_json(1.0, *rate, 0, well),
            phase_json(1.0, *rate, mix.deadline_us, adv),
            adversarial_ratio.unwrap_or(0.0),
        ),
        None => "null".to_owned(),
    };
    json.push_str(&format!(
        "  ],\n  \"adversarial\": {adversarial_json},\n  \
         \"p99_served_us_0_8x\": {p99_08},\n  \"p99_served_us_4x\": {p99_4x},\n  \
         \"p99_ratio_4x_vs_0_8x\": {p99_ratio:.3},\n  \"p99_ratio_gate\": {ratio_gate},\n  \
         \"shed_rate_1x\": {shed_rate_1x:.4},\n  \
         \"unanswered_total\": {unanswered_total},\n  \"server_stats\": {server_stats_json}\n}}\n",
    ));
    std::fs::write(&options.out, &json).expect("write BENCH_frontend.json");
    println!("\nwrote {}", options.out);

    // Hard robustness gates (CI fails on any of these).
    let mut failed = false;
    if unanswered_total > 0 {
        eprintln!("FAIL: {unanswered_total} request(s) never got a reply");
        failed = true;
    }
    if shed_rate_1x > 0.05 {
        eprintln!(
            "FAIL: shed rate at 1x offered load is {:.1}% (expected ~0, gate 5%)",
            shed_rate_1x * 100.0
        );
        failed = true;
    }
    // The plateau gate: 2.5x on hosts with >= 4 cores; 3x on smaller
    // hosts, where the load generator and the server contend for the same
    // cores and the ratio is noisier.
    if p99_ratio > ratio_gate {
        eprintln!(
            "FAIL: served p99 at 4x overload ({p99_4x}us) is {p99_ratio:.2}x the 0.8x p99 \
             ({p99_08}us), gate {ratio_gate}x ({cores} core host): latency collapses instead \
             of plateauing"
        );
        failed = true;
    }
    if p99_08 > 150_000 {
        eprintln!("FAIL: p99 at 0.8x load is {p99_08}us (generous bound: 150ms)");
        failed = true;
    }
    if let Some((_, _, _, adv)) = &adversarial {
        // Containment gate 1: every adversarial request gets a definitive
        // reply — budget kill, deadline kill, shed, or error, but never
        // silence.
        if adv.unanswered > 0 || adv.replies() != adv.sent {
            eprintln!(
                "FAIL: {} of {} adversarial request(s) without a definitive reply",
                adv.sent - adv.replies() + adv.unanswered,
                adv.sent
            );
            failed = true;
        }
        // Containment gate 2: runaway neighbours must not wreck the
        // well-behaved tenants' tail.
        if let Some(ratio) = adversarial_ratio {
            if ratio > adversarial_gate {
                eprintln!(
                    "FAIL: well-behaved p99 with runaway neighbours is {ratio:.2}x the clean \
                     1x p99 ({p99_1x}us), gate {adversarial_gate}x: containment leaks"
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    let adversarial_note = match adversarial_ratio {
        Some(ratio) => format!(", adversarial well-behaved p99 {ratio:.2}x <= {adversarial_gate}x"),
        None => String::new(),
    };
    println!(
        "gates: all passed (p99 {p99_08}us @0.8x -> {p99_4x}us @4x, ratio {p99_ratio:.2} <= \
         {ratio_gate}, shed@1x {:.1}%, unanswered 0{adversarial_note})",
        shed_rate_1x * 100.0
    );
}
