//! Incremental re-parse of edited text: single-token edits applied to an
//! open document session against full cold re-parses of the same spliced
//! text.
//!
//! The workload is a large document (an unambiguous left-recursive list,
//! so the GSS does linear honest work with no ambiguity blow-up) edited
//! one token at a time at the front, middle and end. Each position is
//! measured twice over the *same* edit sequence:
//!
//! * **incremental** — the session's epoch pin is current, so the edit
//!   re-lexes only the damaged region and resumes the GSS from the
//!   leftmost damaged token;
//! * **full** — a language-preserving no-op `MODIFY` is published before
//!   every edit, staling the session's pin, so the same edit takes the
//!   full-rebuild fallback (lex + parse of the whole document).
//!
//! The headline number, `single_token_edit_speedup`, is the full/incremental
//! ratio for end-of-document edits — an in-run, same-host ratio, hard-gated
//! at 20x (exit code 1 below). A whitespace-only row exercises the
//! token-identical fast path, where the parse does not re-run at all.
//!
//! Prints a table and writes `BENCH_incremental_text.json` for CI.
//!
//! Run with `cargo run --release -p ipg-bench --bin incremental_text`.

use std::fmt::Write as _;
use std::time::Instant;

use ipg::IpgServer;
use ipg_bench::mean_max_us;
use ipg_lexer::simple_scanner;

/// Tokens in the document. ~30k keeps a full re-parse in the milliseconds
/// on any host while staying far above the damage size of a 1-token edit.
const TOKENS: usize = 30_000;

/// Timed edit pairs per scenario.
const ROUNDS: usize = 30;

fn server() -> IpgServer {
    IpgServer::from_bnf(
        r#"
        L ::= L "item" | "item"
        START ::= L
    "#,
    )
    .expect("list grammar parses")
    .with_scanner(simple_scanner(&["item"]))
}

struct Row {
    scenario: &'static str,
    mean_us: f64,
    max_us: f64,
    /// Mean tokens re-lexed per edit (damage size), from `GenStats`.
    tokens_relexed: f64,
    /// Mean GSS states re-run per edit, from `GenStats`.
    states_rerun: f64,
}

/// Runs `ROUNDS` insert/delete pairs at byte offset `at` and returns the
/// per-edit latency row. `stale` publishes a no-op `MODIFY` before every
/// edit, forcing the full-rebuild fallback. The insert/delete pair keeps
/// the document identical across rounds, so every scenario measures the
/// same text and the ratios are honest.
fn run_edits(server: &IpgServer, id: u64, at: usize, stale: bool, scenario: &'static str) -> Row {
    let before = server.stats().merged();
    let mut latencies = Vec::with_capacity(ROUNDS * 2);
    for _ in 0..ROUNDS {
        for (range, repl) in [(at..at, "item "), (at..at + 5, "")] {
            if stale {
                server.modify(|_| {});
            }
            let started = Instant::now();
            let outcome = server.apply_edit(id, range, repl).expect("edit parses");
            latencies.push(started.elapsed().as_secs_f64());
            assert!(outcome.accepted(), "the list stays a sentence");
        }
    }
    let after = server.stats().merged();
    let edits = (ROUNDS * 2) as f64;
    let (mean_us, max_us) = mean_max_us(&latencies);
    let (expect_incremental, expect_full) = if stale { (0, ROUNDS * 2) } else { (ROUNDS * 2, 0) };
    assert_eq!(
        after.reparse_incremental - before.reparse_incremental,
        expect_incremental,
        "{scenario}: every edit takes the intended path"
    );
    assert_eq!(after.reparse_full - before.reparse_full, expect_full);
    Row {
        scenario,
        mean_us,
        max_us,
        tokens_relexed: (after.tokens_relexed - before.tokens_relexed) as f64 / edits,
        states_rerun: (after.states_rerun - before.states_rerun) as f64 / edits,
    }
}

fn main() {
    let server = server();
    let text = vec!["item"; TOKENS].join(" ");

    let started = Instant::now();
    let id = server.open_document(&text).expect("document opens");
    let open_s = started.elapsed().as_secs_f64();
    println!(
        "opened a {TOKENS}-token ({} byte) document in {:.1} ms",
        text.len(),
        open_s * 1e3
    );

    // Warm both paths once so neither scenario pays first-touch costs.
    server.apply_edit(id, 0..0, "item ").expect("warm edit");
    server.apply_edit(id, 0..5, "").expect("warm edit");
    server.modify(|_| {});
    server.apply_edit(id, 0..0, "item ").expect("warm full edit");
    server.apply_edit(id, 0..5, "").expect("warm edit");

    let end = text.len() - 4; // before the last "item"
    let mid = text.len() / 2 / 5 * 5; // a token boundary near the middle
    let rows = [
        run_edits(&server, id, end, false, "incremental-edit-end"),
        run_edits(&server, id, mid, false, "incremental-edit-mid"),
        run_edits(&server, id, 0, false, "incremental-edit-front"),
        // Whitespace-only: the damaged region re-lexes to the same token
        // sequence, so the parse is reused outright (fast path).
        {
            let before = server.stats().merged();
            let mut latencies = Vec::with_capacity(ROUNDS * 2);
            for _ in 0..ROUNDS {
                for (range, repl) in [(mid..mid, " "), (mid..mid + 1, "")] {
                    let started = Instant::now();
                    server.apply_edit(id, range, repl).expect("whitespace edit");
                    latencies.push(started.elapsed().as_secs_f64());
                }
            }
            let after = server.stats().merged();
            assert_eq!(
                after.states_rerun,
                before.states_rerun,
                "whitespace-only edits never re-run the GSS"
            );
            let (mean_us, max_us) = mean_max_us(&latencies);
            Row {
                scenario: "incremental-whitespace-mid",
                mean_us,
                max_us,
                tokens_relexed: (after.tokens_relexed - before.tokens_relexed) as f64
                    / (ROUNDS * 2) as f64,
                states_rerun: 0.0,
            }
        },
        run_edits(&server, id, end, true, "full-edit-end"),
        run_edits(&server, id, 0, true, "full-edit-front"),
    ];

    println!(
        "\n{:<28} {:>12} {:>12} {:>16} {:>14}",
        "scenario", "mean µs", "max µs", "tokens re-lexed", "states re-run"
    );
    for row in &rows {
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>16.1} {:>14.1}",
            row.scenario, row.mean_us, row.max_us, row.tokens_relexed, row.states_rerun
        );
    }

    let mean = |scenario: &str| {
        rows.iter()
            .find(|r| r.scenario == scenario)
            .expect("scenario measured")
            .mean_us
    };
    let speedup_end = mean("full-edit-end") / mean("incremental-edit-end");
    let speedup_front = mean("full-edit-front") / mean("incremental-edit-front");
    let work_ratio = mean("incremental-edit-end") / mean("full-edit-end");
    println!("\nsingle-token edit speedup (end of document):   {speedup_end:.1}x");
    println!("single-token edit speedup (front of document): {speedup_front:.1}x");
    println!("incremental/full latency ratio (end edits):    {work_ratio:.5}");

    let mut json = String::from("{\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"mean_us\": {:.2}, \"max_us\": {:.2}, \
             \"tokens_relexed\": {:.2}, \"states_rerun\": {:.2}}}{}",
            row.scenario,
            row.mean_us,
            row.max_us,
            row.tokens_relexed,
            row.states_rerun,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"tokens\": {TOKENS},\n  \"open_document_ms\": {:.3},\n  \
         \"single_token_edit_speedup\": {speedup_end:.3},\n  \
         \"single_token_edit_speedup_front\": {speedup_front:.3},\n  \
         \"incremental_full_ratio\": {work_ratio:.6}\n}}\n",
        open_s * 1e3,
    );
    std::fs::write("BENCH_incremental_text.json", &json).expect("write BENCH_incremental_text.json");
    println!("\nwrote BENCH_incremental_text.json");

    server.close_document(id).expect("close");

    // Hard gate: a single-token edit at the end of a large document must
    // beat the full re-parse by 20x — an in-run, same-host ratio, so it
    // holds on any hardware. (The design target is 100x+; 20x is the
    // regression floor, leaving headroom for slow CI runners.)
    if speedup_end < 20.0 {
        eprintln!(
            "FAIL: single-token edit speedup {speedup_end:.1}x below the 20x gate \
             (incremental {:.1} µs vs full {:.1} µs)",
            mean("incremental-edit-end"),
            mean("full-edit-end")
        );
        std::process::exit(1);
    }
}
