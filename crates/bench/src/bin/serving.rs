//! Multi-threaded serving throughput of the shared-table layer: 1/2/4/8
//! threads drive one `IpgServer` over the Fig. 7 SDF workload, with a warm
//! table, a cold (lazily generated under contention) table, a warm table
//! with `MODIFY` cycles mixed in, a `modify-concurrent` scenario that
//! measures **edit publication latency** while parses are in flight — the
//! epoch claim: an edit lands in the time it takes to fork the table state
//! and apply the §7 rule, independent of the longest running parse — and
//! two end-to-end *text* scenarios over the same inputs: `warm-text`
//! (fused scan→parse through the pooled request contexts) against
//! `warm-text-split` (tokenize to a vector, then parse), which is where
//! the lexer→parser fusion win is measured.
//!
//! Every process allocation is counted by a wrapping global allocator, so
//! each row also reports **allocations per request**; the run fails (exit
//! code 1) if the warm fused text path allocates at all — the
//! allocation-free-request-path gate.
//!
//! Prints a human-readable table and writes `BENCH_serving.json` to the
//! current directory so CI can track the serving-perf trajectory.
//!
//! Run with `cargo run --release -p ipg-bench --bin serving`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use ipg::{GenStats, IpgServer, IpgSession};
use ipg_bench::{mean_max_us, wide_synthetic_workload, SdfWorkload};
use ipg_grammar::Grammar;

/// A pass-through allocator that counts every allocation, so the bench can
/// report per-request allocation counts and gate the warm fused path on
/// zero.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the only
// addition is a relaxed counter increment on the allocating entry points.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// One measured configuration.
struct Row {
    scenario: &'static str,
    threads: usize,
    requests: usize,
    tokens: usize,
    elapsed_s: f64,
    modifications: usize,
    /// Mean/max `MODIFY` publication latency in microseconds (zero for
    /// scenarios that do not time edits).
    edit_mean_us: f64,
    edit_max_us: f64,
    /// Heap allocations per request across the timed runs (process-wide,
    /// so multi-thread rows include the scoped-thread spawn cost).
    allocs_per_request: f64,
}

impl Row {
    fn tokens_per_sec(&self) -> f64 {
        self.tokens as f64 / self.elapsed_s
    }
    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.elapsed_s
    }
}

fn batch(workload: &SdfWorkload, repeats: usize) -> (Vec<Vec<ipg_grammar::SymbolId>>, usize) {
    let mut requests = Vec::new();
    for _ in 0..repeats {
        for input in &workload.inputs {
            requests.push(input.tokens.clone());
        }
    }
    let tokens = requests.iter().map(Vec::len).sum();
    (requests, tokens)
}

fn run_warm(workload: &SdfWorkload, threads: usize, repeats: usize) -> Row {
    let server = IpgServer::new(IpgSession::new(workload.grammar.clone()));
    server.warm();
    let (requests, tokens) = batch(workload, repeats);
    // Untimed warm-up pass, then best of three timed runs.
    server.parse_many(&requests[..requests.len().min(8)], threads);
    let mut best = f64::INFINITY;
    let allocs_before = allocations();
    for _ in 0..3 {
        let start = Instant::now();
        server.parse_many(&requests, threads);
        best = best.min(start.elapsed().as_secs_f64());
    }
    let allocs = allocations() - allocs_before;
    Row {
        scenario: "warm",
        threads,
        requests: requests.len(),
        tokens,
        elapsed_s: best,
        modifications: 0,
        edit_mean_us: 0.0,
        edit_max_us: 0.0,
        allocs_per_request: allocs as f64 / (3 * requests.len()) as f64,
    }
}

/// Shared driver of the text scenarios: runs `requests` through `parse`
/// on `threads` workers (inline on the calling thread for `threads == 1`,
/// so the per-thread context pool and the allocation counter see a clean
/// steady state), returning (elapsed seconds, allocations).
fn drive_texts(
    server: &IpgServer,
    requests: &[&str],
    threads: usize,
    parse: impl Fn(&IpgServer, &str) + Sync,
) -> (f64, u64) {
    let allocs_before = allocations();
    let start = Instant::now();
    if threads <= 1 {
        for &text in requests {
            parse(server, text);
        }
    } else {
        let queue = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..threads {
                let queue = &queue;
                let parse = &parse;
                scope.spawn(move || loop {
                    let i = queue.fetch_add(1, Ordering::Relaxed);
                    let Some(&text) = requests.get(i) else { break };
                    parse(server, text);
                });
            }
        });
    }
    (start.elapsed().as_secs_f64(), allocations() - allocs_before)
}

/// Shared body of the warm text scenarios: one warm server + scanner,
/// the inputs' raw texts cycled `repeats` times, an untimed warm-up over
/// every input, then best-of-3 timed runs (per-run minimum of the
/// allocation count too, so a one-off growth spike does not mask the
/// steady state). Both scenarios measure through exactly this code, so
/// the fused/split comparison can never drift methodologically.
fn run_text_scenario(
    workload: &SdfWorkload,
    scenario: &'static str,
    threads: usize,
    repeats: usize,
    parse: impl Fn(&IpgServer, &str) + Sync,
) -> Row {
    let server = IpgServer::new(IpgSession::new(workload.grammar.clone()))
        .with_scanner(workload.scanner.clone());
    server.warm();
    let requests: Vec<&str> = workload
        .inputs
        .iter()
        .map(|input| input.text)
        .cycle()
        .take(workload.inputs.len() * repeats)
        .collect();
    let tokens: usize = workload.inputs.iter().map(|i| i.tokens.len()).sum::<usize>() * repeats;
    // Warm-up: materialise the DFA, the table rows and the context pools.
    for input in &workload.inputs {
        parse(&server, input.text);
    }
    let mut best = f64::INFINITY;
    let mut allocs = u64::MAX;
    for _ in 0..3 {
        let (elapsed, run_allocs) = drive_texts(&server, &requests, threads, &parse);
        best = best.min(elapsed);
        allocs = allocs.min(run_allocs);
    }
    Row {
        scenario,
        threads,
        requests: requests.len(),
        tokens,
        elapsed_s: best,
        modifications: 0,
        edit_mean_us: 0.0,
        edit_max_us: 0.0,
        allocs_per_request: allocs as f64 / requests.len() as f64,
    }
}

/// The fused end-to-end text path: `parse_text_pooled` scans straight into
/// the GSS driver through a recycled per-worker context — tokenize + parse
/// measured together, zero allocations per warm request.
fn run_warm_text(workload: &SdfWorkload, threads: usize, repeats: usize) -> Row {
    run_text_scenario(workload, "warm-text", threads, repeats, |server, text| {
        assert!(server.parse_text_pooled(text).expect("input scans").accepted());
    })
}

/// The pre-fusion text path over identical inputs: tokenize the text into
/// a token vector (token structs, name strings and all), then parse it —
/// what `parse_text` did before the streaming rewrite. The `warm-text` /
/// `warm-text-split` ratio is the measured fusion win.
fn run_warm_text_split(workload: &SdfWorkload, threads: usize, repeats: usize) -> Row {
    run_text_scenario(
        workload,
        "warm-text-split",
        threads,
        repeats,
        |server, text| {
            let tokens = server
                .read(|session| workload.scanner.tokenize_for(session.grammar(), text))
                .expect("input scans");
            assert!(server.parse(&tokens).accepted);
        },
    )
}

/// The dense-scanner ablation: the identical fused text path with the
/// byte-table fast path switched off, so every character goes through the
/// lazy `char`-map lookup. The `warm-text` / `warm-text-lazy` ratio is the
/// measured dense-scanner win, taken in-run on the same host.
fn run_warm_text_lazy(workload: &SdfWorkload, threads: usize, repeats: usize) -> Row {
    workload.scanner.set_dense_scanning(false);
    let row = run_text_scenario(
        workload,
        "warm-text-lazy",
        threads,
        repeats,
        |server, text| {
            assert!(server.parse_text_pooled(text).expect("input scans").accepted());
        },
    );
    workload.scanner.set_dense_scanning(true);
    row
}

/// Cold start of the wide 5000-production synthetic grammar: time
/// `warm_parallel(threads)` — bulk `EXPAND` fan-out plus one batch row
/// publication — on a fresh server. No parses; the measured quantity is
/// time-to-first-full-table. Best of two runs; returns the 4-thread run's
/// graph counters so the warm fan-out counters can be printed.
fn run_cold_start(grammar: &Grammar, threads: usize) -> (Row, GenStats) {
    let mut best = f64::INFINITY;
    let mut stats = GenStats::default();
    let runs = 2;
    let allocs_before = allocations();
    for _ in 0..runs {
        let server = IpgServer::new(IpgSession::new(grammar.clone()));
        let start = Instant::now();
        server.warm_parallel(threads);
        best = best.min(start.elapsed().as_secs_f64());
        stats = server.stats().graph;
    }
    let allocs = allocations() - allocs_before;
    let row = Row {
        scenario: "cold-start",
        threads,
        requests: runs,
        tokens: 0,
        elapsed_s: best,
        modifications: 0,
        edit_mean_us: 0.0,
        edit_max_us: 0.0,
        allocs_per_request: allocs as f64 / runs as f64,
    };
    (row, stats)
}

fn run_cold(workload: &SdfWorkload, threads: usize, repeats: usize) -> Row {
    let (requests, tokens) = batch(workload, repeats);
    // The cold run includes lazy generation racing across threads; a fresh
    // server per run, best of three.
    let mut best = f64::INFINITY;
    let allocs_before = allocations();
    for _ in 0..3 {
        let server = IpgServer::new(IpgSession::new(workload.grammar.clone()));
        let start = Instant::now();
        server.parse_many(&requests, threads);
        best = best.min(start.elapsed().as_secs_f64());
    }
    let allocs = allocations() - allocs_before;
    Row {
        scenario: "cold",
        threads,
        requests: requests.len(),
        tokens,
        elapsed_s: best,
        modifications: 0,
        edit_mean_us: 0.0,
        edit_max_us: 0.0,
        allocs_per_request: allocs as f64 / (3 * requests.len()) as f64,
    }
}

fn run_with_modify(workload: &SdfWorkload, threads: usize, repeats: usize) -> Row {
    let server = IpgServer::new(IpgSession::new(workload.grammar.clone()));
    server.warm();
    let (requests, tokens) = batch(workload, repeats);
    let (lhs, rhs) = workload.modification.clone();
    let done = AtomicBool::new(false);
    let mut modifications = 0usize;
    let mut elapsed_s = 0.0f64;
    let mut latencies: Vec<f64> = Vec::new();
    let allocs_before = allocations();
    thread::scope(|scope| {
        let writer = scope.spawn(|| {
            // The §7 ADD-RULE/DELETE-RULE cycle, applied continuously while
            // the parse batch drains — each publication timed individually,
            // like `modify-concurrent` does.
            let mut applied = Vec::new();
            while !done.load(Ordering::Relaxed) {
                let edit = Instant::now();
                server.modify(|s| {
                    s.add_rule(lhs, rhs.clone());
                });
                applied.push(edit.elapsed().as_secs_f64());
                let edit = Instant::now();
                server.modify(|s| {
                    s.remove_rule(lhs, &rhs).expect("rule was just added");
                });
                applied.push(edit.elapsed().as_secs_f64());
                thread::yield_now();
            }
            applied
        });
        let start = Instant::now();
        server.parse_many(&requests, threads);
        elapsed_s = start.elapsed().as_secs_f64();
        done.store(true, Ordering::Relaxed);
        latencies = writer.join().expect("writer thread panicked");
        modifications = latencies.len();
    });
    let allocs = allocations() - allocs_before;
    let (edit_mean_us, edit_max_us) = mean_max_us(&latencies);
    Row {
        scenario: "warm+modify",
        threads,
        requests: requests.len(),
        tokens,
        elapsed_s,
        modifications,
        edit_mean_us,
        edit_max_us,
        allocs_per_request: allocs as f64 / requests.len() as f64,
    }
}

/// The epoch scenario: `threads` workers loop the *largest* input (the
/// longest-running parses the workload has) while the main thread times
/// each `MODIFY` publication. With `threads == 0` the same edits run on an
/// idle server — the baseline that the loaded latencies are compared
/// against.
fn run_modify_concurrent(workload: &SdfWorkload, threads: usize, edits: usize) -> Row {
    let server = IpgServer::new(IpgSession::new(workload.grammar.clone()));
    server.warm();
    let (lhs, rhs) = workload.modification.clone();
    let slow_tokens = &workload.largest().tokens;
    let stop = AtomicBool::new(false);
    let mut latencies: Vec<f64> = Vec::with_capacity(edits);
    let mut requests = 0usize;
    let mut elapsed_s = 0.0f64;
    let allocs_before = allocations();
    thread::scope(|scope| {
        // The throughput window covers the workers' whole lifetime (spawn
        // to join), so the req/s / tokens/s columns divide matching
        // quantities; the edit latencies are timed per edit inside it.
        let run_start = Instant::now();
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            workers.push(scope.spawn(|| {
                let mut count = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    server.parse(slow_tokens);
                    count += 1;
                }
                count
            }));
        }
        if threads > 0 {
            // Let the long parses get airborne before timing edits.
            thread::sleep(Duration::from_millis(20));
        }
        for i in 0..edits {
            let edit_start = Instant::now();
            if i % 2 == 0 {
                server.modify(|s| {
                    s.add_rule(lhs, rhs.clone());
                });
            } else {
                server.modify(|s| {
                    s.remove_rule(lhs, &rhs).expect("rule was just added");
                });
            }
            latencies.push(edit_start.elapsed().as_secs_f64());
            thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for worker in workers {
            requests += worker.join().expect("worker thread panicked");
        }
        elapsed_s = run_start.elapsed().as_secs_f64();
    });
    let allocs = allocations() - allocs_before;
    let (edit_mean_us, edit_max_us) = mean_max_us(&latencies);
    Row {
        scenario: "modify-concurrent",
        threads,
        requests,
        tokens: requests * slow_tokens.len(),
        elapsed_s,
        modifications: edits,
        edit_mean_us,
        edit_max_us,
        // Measured per *operation*: the parses plus the edits, since each
        // edit's structurally shared fork is the dominant allocator here
        // (and the idle row serves no parses at all).
        allocs_per_request: allocs as f64 / (requests + edits).max(1) as f64,
    }
}

fn main() {
    let workload = SdfWorkload::load();
    let repeats = 50; // 50 × 4 inputs = 200 requests per run
    let thread_counts = [1usize, 2, 4, 8];
    let edits = 40;

    let mut rows = Vec::new();
    for &threads in &thread_counts {
        rows.push(run_warm(&workload, threads, repeats));
    }
    for &threads in &thread_counts {
        rows.push(run_warm_text(&workload, threads, repeats));
    }
    for &threads in &thread_counts {
        rows.push(run_warm_text_split(&workload, threads, repeats));
    }
    // The dense-scanner ablation only needs the single-thread row: the
    // ratio against `warm-text` at 1 thread is the in-run dense win.
    rows.push(run_warm_text_lazy(&workload, 1, repeats));
    for &threads in &thread_counts {
        rows.push(run_cold(&workload, threads, repeats));
    }
    // Cold start of the wide synthetic grammar: bulk expansion with the
    // parallel warm fan-out at 1/2/4 threads.
    let wide = wide_synthetic_workload(5000);
    let mut warm_stats = GenStats::default();
    for &threads in &[1usize, 2, 4] {
        let (row, stats) = run_cold_start(&wide.grammar, threads);
        if threads == 4 {
            warm_stats = stats;
        }
        rows.push(row);
    }
    for &threads in &thread_counts {
        rows.push(run_with_modify(&workload, threads, repeats));
    }
    // Edit latency on an idle server, then with 1..8 threads of long
    // parses in flight.
    rows.push(run_modify_concurrent(&workload, 0, edits));
    for &threads in &thread_counts {
        rows.push(run_modify_concurrent(&workload, threads, edits));
    }

    let cores = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("Shared-table serving throughput (Fig. 7 SDF workload, 200 requests/run, host: {cores} core(s))");
    println!("scenario          | threads |   req/s |  tokens/s | allocs/req | modifications");
    for row in &rows {
        // Rows using more parse threads than the host has cores measure OS
        // timeslicing on top of the serving layer (the ROADMAP caveat).
        let scheduler_bound = row.threads > cores;
        println!(
            "{:<17} | {:>7} | {:>7.0} | {:>9.0} | {:>10.2} | {:>5}{}",
            row.scenario,
            row.threads,
            row.requests_per_sec(),
            row.tokens_per_sec(),
            row.allocs_per_request,
            row.modifications,
            if scheduler_bound {
                "  [threads > cores: scheduler-bound]"
            } else {
                ""
            },
        );
    }

    // Counter probe: the scenario servers are dropped with their epochs,
    // so run one fused pass over every input on a fresh warm server to
    // surface the scanner-side counters through `IpgServer::stats`.
    let scanner_counters = {
        let server = IpgServer::new(IpgSession::new(workload.grammar.clone()))
            .with_scanner(workload.scanner.clone());
        server.warm();
        for input in &workload.inputs {
            assert!(server.parse_text_pooled(input.text).expect("input scans").accepted());
        }
        server.stats().graph
    };

    let row_of = |scenario: &str, threads: usize| -> &Row {
        rows.iter()
            .find(|r| r.scenario == scenario && r.threads == threads)
            .expect("measured configuration")
    };
    let fused = row_of("warm-text", 1);
    let split = row_of("warm-text-split", 1);
    let fusion_speedup = fused.tokens_per_sec() / split.tokens_per_sec();
    println!(
        "\nlexer→parser fusion (1 thread): fused {:.0} tokens/s vs tokenize-then-parse {:.0} \
         tokens/s ({fusion_speedup:.2}x), {:.2} vs {:.2} allocs/request",
        fused.tokens_per_sec(),
        split.tokens_per_sec(),
        fused.allocs_per_request,
        split.allocs_per_request,
    );
    let lazy = row_of("warm-text-lazy", 1);
    let scanner_dense_speedup = fused.tokens_per_sec() / lazy.tokens_per_sec();
    println!(
        "dense byte-table scanner (1 thread): dense {:.0} tokens/s vs lazy char-map {:.0} \
         tokens/s ({scanner_dense_speedup:.2}x)",
        fused.tokens_per_sec(),
        lazy.tokens_per_sec(),
    );
    let cold_start_s = |threads: usize| row_of("cold-start", threads).elapsed_s;
    let cold_start_speedup_4 = cold_start_s(1) / cold_start_s(4);
    println!(
        "cold start (wide 5000-production grammar): {:.3}s at 1 thread, {:.3}s at 2, {:.3}s at 4 \
         ({cold_start_speedup_4:.2}x at 4 threads)",
        cold_start_s(1),
        cold_start_s(2),
        cold_start_s(4),
    );
    println!(
        "scanner/warm counters: dense_rows_built {}, dense_bytes {}, skip_loop_bytes {}, \
         warm_threads_used {}, warm_batches_published {}",
        scanner_counters.dense_rows_built,
        scanner_counters.dense_bytes,
        scanner_counters.skip_loop_bytes,
        warm_stats.warm_threads_used,
        warm_stats.warm_batches_published,
    );
    println!(
        "residency (warm probe server, modeled): resident {} KiB, high-water {} KiB \
         (graph chunks + published snapshot + rule arena + scanner DFA)",
        scanner_counters.resident_bytes / 1024,
        scanner_counters.resident_high_water / 1024,
    );

    let speedup = |scenario: &str, threads: usize| -> f64 {
        let of = |t: usize| {
            rows.iter()
                .find(|r| r.scenario == scenario && r.threads == t)
                .expect("measured configuration")
                .tokens_per_sec()
        };
        of(threads) / of(1)
    };
    let warm4 = speedup("warm", 4);
    println!("\nwarm-table speedups vs 1 thread:");
    for &t in &thread_counts[1..] {
        println!("  {t} threads: {:.2}x", speedup("warm", t));
    }
    println!("cold-table 4-thread speedup: {:.2}x", speedup("cold", 4));

    println!("\nMODIFY publication latency (epochs; {edits} edits per configuration):");
    let idle_mean = rows
        .iter()
        .find(|r| r.scenario == "modify-concurrent" && r.threads == 0)
        .map(|r| r.edit_mean_us)
        .unwrap_or(0.0);
    for row in rows.iter().filter(|r| r.scenario == "modify-concurrent") {
        let label = if row.threads == 0 {
            "idle server".to_owned()
        } else {
            format!("{} parse threads in flight", row.threads)
        };
        println!(
            "  {label:<27}: mean {:>8.1} µs, max {:>8.1} µs{}",
            row.edit_mean_us,
            row.edit_max_us,
            if row.threads > 0 && idle_mean > 0.0 {
                format!(" ({:.2}x idle mean)", row.edit_mean_us / idle_mean)
            } else {
                String::new()
            }
        );
    }
    for row in rows.iter().filter(|r| r.scenario == "warm+modify") {
        println!(
            "  warm+modify, {} parse threads : mean {:>8.1} µs, max {:>8.1} µs over {} edits",
            row.threads, row.edit_mean_us, row.edit_max_us, row.modifications
        );
    }
    println!(
        "  (edits publish new epochs: latency tracks the structurally shared fork, not the longest parse)"
    );
    if cores < thread_counts[thread_counts.len() - 1] {
        println!(
            "  note: host has {cores} core(s); with more parse threads than cores the \
             writer thread is starved by the scheduler, so those rows measure OS \
             timeslicing, not epoch publication (compare the ≤{cores}-thread rows)."
        );
    }

    // Hand-rolled JSON (the vendored serde stub has no serializer). The
    // host's core count rides along in the header and per row, so trend
    // consumers can tell real publication latency from scheduler noise.
    let mut json = format!(
        "{{\n  \"benchmark\": \"serving\",\n  \"workload\": \"fig7-sdf\",\n  \"host_cores\": {cores},\n  \"rows\": [\n"
    );
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"threads\": {}, \"requests\": {}, \"tokens\": {}, \
             \"elapsed_s\": {:.6}, \"tokens_per_sec\": {:.1}, \"requests_per_sec\": {:.1}, \
             \"modifications\": {}, \"edit_mean_us\": {:.2}, \"edit_max_us\": {:.2}, \
             \"allocs_per_request\": {:.2}, \"scheduler_bound\": {}}}{}",
            row.scenario,
            row.threads,
            row.requests,
            row.tokens,
            row.elapsed_s,
            row.tokens_per_sec(),
            row.requests_per_sec(),
            row.modifications,
            row.edit_mean_us,
            row.edit_max_us,
            row.allocs_per_request,
            row.threads > cores,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    // The loaded-latency summary only considers configurations the host
    // can actually schedule in parallel (threads <= cores); oversubscribed
    // rows measure OS timeslicing, not epoch publication (see the printed
    // note), and would otherwise dominate the trend series.
    let loaded_mean = rows
        .iter()
        .filter(|r| r.scenario == "modify-concurrent" && r.threads >= 1 && r.threads <= cores)
        .map(|r| r.edit_mean_us)
        .fold(0.0f64, f64::max);
    let _ = write!(
        json,
        "  ],\n  \"warm_speedup_4_threads\": {:.3},\n  \"warm_speedup_8_threads\": {:.3},\n  \
         \"warm_text_fused_speedup\": {fusion_speedup:.3},\n  \
         \"warm_text_allocs_per_request\": {:.2},\n  \
         \"scanner_dense_speedup\": {scanner_dense_speedup:.3},\n  \
         \"cold_start_1_thread_s\": {:.3},\n  \
         \"cold_start_speedup_4_threads\": {cold_start_speedup_4:.3},\n  \
         \"resident_bytes\": {},\n  \"resident_high_water\": {},\n  \
         \"modify_concurrent_idle_mean_us\": {:.2},\n  \"modify_concurrent_loaded_mean_us\": {:.2}\n}}\n",
        warm4,
        speedup("warm", 8),
        fused.allocs_per_request,
        cold_start_s(1),
        scanner_counters.resident_bytes,
        scanner_counters.resident_high_water,
        idle_mean,
        loaded_mean,
    );
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("\nwrote BENCH_serving.json");

    // Scaling is only observable with real cores; on a single-core host the
    // interesting number is the (near-zero) locking overhead instead.
    println!("host parallelism: {cores} core(s)");

    // Hard gates (alongside the publish-scaling gate in CI): the warm
    // fused text path must not allocate per request — the single-threaded
    // warm-text row runs inline on this thread against recycled contexts,
    // so any allocation is a regression of the allocation-free request
    // path — and fusion must actually beat tokenize-then-parse.
    let mut failed = false;
    if fused.allocs_per_request > 0.0 {
        eprintln!(
            "FAIL: warm fused parse_text allocated {:.2} times per request (expected 0)",
            fused.allocs_per_request
        );
        failed = true;
    }
    if fusion_speedup < 1.0 {
        eprintln!(
            "FAIL: fused warm-text ({:.0} tokens/s) is slower than tokenize-then-parse ({:.0} tokens/s)",
            fused.tokens_per_sec(),
            split.tokens_per_sec()
        );
        failed = true;
    }
    // The dense byte-table scanner must not lose to the lazy char-map path
    // it replaced — an in-run, same-host ratio, so it holds everywhere.
    if scanner_dense_speedup < 1.0 {
        eprintln!(
            "FAIL: dense scanner ({:.0} tokens/s) is slower than the lazy char-map path ({:.0} tokens/s)",
            fused.tokens_per_sec(),
            lazy.tokens_per_sec()
        );
        failed = true;
    }
    // Warm parse scaling is a hard gate wherever the cores exist (hosted
    // CI runners have >= 4): N warm readers over one shared graph must
    // actually run in parallel, or the read path has re-grown a lock.
    if cores >= 4 && warm4 < 2.5 {
        eprintln!(
            "FAIL: 4-thread warm speedup {warm4:.2}x below the 2.5x target on a {cores}-core host"
        );
        failed = true;
    }
    // Parallel cold start is only a meaningful gate where the cores exist:
    // hosted CI runners have ≥4, dev containers with 1 core record the
    // (ungated) row so the trend is still visible.
    if cores >= 4 && cold_start_speedup_4 < 3.0 {
        eprintln!(
            "FAIL: cold-start 4-thread speedup {cold_start_speedup_4:.2}x below the 3x target on a \
             {cores}-core host"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
