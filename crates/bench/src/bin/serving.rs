//! Multi-threaded serving throughput of the shared-table layer: 1/2/4/8
//! threads drive one `IpgServer` over the Fig. 7 SDF workload, with a warm
//! table, a cold (lazily generated under contention) table, a warm table
//! with `MODIFY` cycles mixed in, and a `modify-concurrent` scenario that
//! measures **edit publication latency** while parses are in flight — the
//! epoch claim: an edit lands in the time it takes to fork the table state
//! and apply the §7 rule, independent of the longest running parse.
//!
//! Prints a human-readable table and writes `BENCH_serving.json` to the
//! current directory so CI can track the serving-perf trajectory.
//!
//! Run with `cargo run --release -p ipg-bench --bin serving`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use ipg::{IpgServer, IpgSession};
use ipg_bench::{mean_max_us, SdfWorkload};

/// One measured configuration.
struct Row {
    scenario: &'static str,
    threads: usize,
    requests: usize,
    tokens: usize,
    elapsed_s: f64,
    modifications: usize,
    /// Mean/max `MODIFY` publication latency in microseconds (zero for
    /// scenarios that do not time edits).
    edit_mean_us: f64,
    edit_max_us: f64,
}

impl Row {
    fn tokens_per_sec(&self) -> f64 {
        self.tokens as f64 / self.elapsed_s
    }
    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.elapsed_s
    }
}

fn batch(workload: &SdfWorkload, repeats: usize) -> (Vec<Vec<ipg_grammar::SymbolId>>, usize) {
    let mut requests = Vec::new();
    for _ in 0..repeats {
        for input in &workload.inputs {
            requests.push(input.tokens.clone());
        }
    }
    let tokens = requests.iter().map(Vec::len).sum();
    (requests, tokens)
}

fn run_warm(workload: &SdfWorkload, threads: usize, repeats: usize) -> Row {
    let server = IpgServer::new(IpgSession::new(workload.grammar.clone()));
    server.warm();
    let (requests, tokens) = batch(workload, repeats);
    // Untimed warm-up pass, then best of three timed runs.
    server.parse_many(&requests[..requests.len().min(8)], threads);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        server.parse_many(&requests, threads);
        best = best.min(start.elapsed().as_secs_f64());
    }
    Row {
        scenario: "warm",
        threads,
        requests: requests.len(),
        tokens,
        elapsed_s: best,
        modifications: 0,
        edit_mean_us: 0.0,
        edit_max_us: 0.0,
    }
}

fn run_cold(workload: &SdfWorkload, threads: usize, repeats: usize) -> Row {
    let (requests, tokens) = batch(workload, repeats);
    // The cold run includes lazy generation racing across threads; a fresh
    // server per run, best of three.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let server = IpgServer::new(IpgSession::new(workload.grammar.clone()));
        let start = Instant::now();
        server.parse_many(&requests, threads);
        best = best.min(start.elapsed().as_secs_f64());
    }
    Row {
        scenario: "cold",
        threads,
        requests: requests.len(),
        tokens,
        elapsed_s: best,
        modifications: 0,
        edit_mean_us: 0.0,
        edit_max_us: 0.0,
    }
}

fn run_with_modify(workload: &SdfWorkload, threads: usize, repeats: usize) -> Row {
    let server = IpgServer::new(IpgSession::new(workload.grammar.clone()));
    server.warm();
    let (requests, tokens) = batch(workload, repeats);
    let (lhs, rhs) = workload.modification.clone();
    let done = AtomicBool::new(false);
    let mut modifications = 0usize;
    let mut elapsed_s = 0.0f64;
    let mut latencies: Vec<f64> = Vec::new();
    thread::scope(|scope| {
        let writer = scope.spawn(|| {
            // The §7 ADD-RULE/DELETE-RULE cycle, applied continuously while
            // the parse batch drains — each publication timed individually,
            // like `modify-concurrent` does.
            let mut applied = Vec::new();
            while !done.load(Ordering::Relaxed) {
                let edit = Instant::now();
                server.modify(|s| {
                    s.add_rule(lhs, rhs.clone());
                });
                applied.push(edit.elapsed().as_secs_f64());
                let edit = Instant::now();
                server.modify(|s| {
                    s.remove_rule(lhs, &rhs).expect("rule was just added");
                });
                applied.push(edit.elapsed().as_secs_f64());
                thread::yield_now();
            }
            applied
        });
        let start = Instant::now();
        server.parse_many(&requests, threads);
        elapsed_s = start.elapsed().as_secs_f64();
        done.store(true, Ordering::Relaxed);
        latencies = writer.join().expect("writer thread panicked");
        modifications = latencies.len();
    });
    let (edit_mean_us, edit_max_us) = mean_max_us(&latencies);
    Row {
        scenario: "warm+modify",
        threads,
        requests: requests.len(),
        tokens,
        elapsed_s,
        modifications,
        edit_mean_us,
        edit_max_us,
    }
}

/// The epoch scenario: `threads` workers loop the *largest* input (the
/// longest-running parses the workload has) while the main thread times
/// each `MODIFY` publication. With `threads == 0` the same edits run on an
/// idle server — the baseline that the loaded latencies are compared
/// against.
fn run_modify_concurrent(workload: &SdfWorkload, threads: usize, edits: usize) -> Row {
    let server = IpgServer::new(IpgSession::new(workload.grammar.clone()));
    server.warm();
    let (lhs, rhs) = workload.modification.clone();
    let slow_tokens = &workload.largest().tokens;
    let stop = AtomicBool::new(false);
    let mut latencies: Vec<f64> = Vec::with_capacity(edits);
    let mut requests = 0usize;
    let mut elapsed_s = 0.0f64;
    thread::scope(|scope| {
        // The throughput window covers the workers' whole lifetime (spawn
        // to join), so the req/s / tokens/s columns divide matching
        // quantities; the edit latencies are timed per edit inside it.
        let run_start = Instant::now();
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            workers.push(scope.spawn(|| {
                let mut count = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    server.parse(slow_tokens);
                    count += 1;
                }
                count
            }));
        }
        if threads > 0 {
            // Let the long parses get airborne before timing edits.
            thread::sleep(Duration::from_millis(20));
        }
        for i in 0..edits {
            let edit_start = Instant::now();
            if i % 2 == 0 {
                server.modify(|s| {
                    s.add_rule(lhs, rhs.clone());
                });
            } else {
                server.modify(|s| {
                    s.remove_rule(lhs, &rhs).expect("rule was just added");
                });
            }
            latencies.push(edit_start.elapsed().as_secs_f64());
            thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for worker in workers {
            requests += worker.join().expect("worker thread panicked");
        }
        elapsed_s = run_start.elapsed().as_secs_f64();
    });
    let (edit_mean_us, edit_max_us) = mean_max_us(&latencies);
    Row {
        scenario: "modify-concurrent",
        threads,
        requests,
        tokens: requests * slow_tokens.len(),
        elapsed_s,
        modifications: edits,
        edit_mean_us,
        edit_max_us,
    }
}

fn main() {
    let workload = SdfWorkload::load();
    let repeats = 50; // 50 × 4 inputs = 200 requests per run
    let thread_counts = [1usize, 2, 4, 8];
    let edits = 40;

    let mut rows = Vec::new();
    for &threads in &thread_counts {
        rows.push(run_warm(&workload, threads, repeats));
    }
    for &threads in &thread_counts {
        rows.push(run_cold(&workload, threads, repeats));
    }
    for &threads in &thread_counts {
        rows.push(run_with_modify(&workload, threads, repeats));
    }
    // Edit latency on an idle server, then with 1..8 threads of long
    // parses in flight.
    rows.push(run_modify_concurrent(&workload, 0, edits));
    for &threads in &thread_counts {
        rows.push(run_modify_concurrent(&workload, threads, edits));
    }

    let cores = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("Shared-table serving throughput (Fig. 7 SDF workload, 200 requests/run, host: {cores} core(s))");
    println!("scenario          | threads |   req/s |  tokens/s | modifications");
    for row in &rows {
        // Rows using more parse threads than the host has cores measure OS
        // timeslicing on top of the serving layer (the ROADMAP caveat).
        let scheduler_bound = row.threads > cores;
        println!(
            "{:<17} | {:>7} | {:>7.0} | {:>9.0} | {:>5}{}",
            row.scenario,
            row.threads,
            row.requests_per_sec(),
            row.tokens_per_sec(),
            row.modifications,
            if scheduler_bound {
                "  [threads > cores: scheduler-bound]"
            } else {
                ""
            },
        );
    }

    let speedup = |scenario: &str, threads: usize| -> f64 {
        let of = |t: usize| {
            rows.iter()
                .find(|r| r.scenario == scenario && r.threads == t)
                .expect("measured configuration")
                .tokens_per_sec()
        };
        of(threads) / of(1)
    };
    let warm4 = speedup("warm", 4);
    println!("\nwarm-table speedups vs 1 thread:");
    for &t in &thread_counts[1..] {
        println!("  {t} threads: {:.2}x", speedup("warm", t));
    }
    println!("cold-table 4-thread speedup: {:.2}x", speedup("cold", 4));

    println!("\nMODIFY publication latency (epochs; {edits} edits per configuration):");
    let idle_mean = rows
        .iter()
        .find(|r| r.scenario == "modify-concurrent" && r.threads == 0)
        .map(|r| r.edit_mean_us)
        .unwrap_or(0.0);
    for row in rows.iter().filter(|r| r.scenario == "modify-concurrent") {
        let label = if row.threads == 0 {
            "idle server".to_owned()
        } else {
            format!("{} parse threads in flight", row.threads)
        };
        println!(
            "  {label:<27}: mean {:>8.1} µs, max {:>8.1} µs{}",
            row.edit_mean_us,
            row.edit_max_us,
            if row.threads > 0 && idle_mean > 0.0 {
                format!(" ({:.2}x idle mean)", row.edit_mean_us / idle_mean)
            } else {
                String::new()
            }
        );
    }
    for row in rows.iter().filter(|r| r.scenario == "warm+modify") {
        println!(
            "  warm+modify, {} parse threads : mean {:>8.1} µs, max {:>8.1} µs over {} edits",
            row.threads, row.edit_mean_us, row.edit_max_us, row.modifications
        );
    }
    println!(
        "  (edits publish new epochs: latency tracks the structurally shared fork, not the longest parse)"
    );
    if cores < thread_counts[thread_counts.len() - 1] {
        println!(
            "  note: host has {cores} core(s); with more parse threads than cores the \
             writer thread is starved by the scheduler, so those rows measure OS \
             timeslicing, not epoch publication (compare the ≤{cores}-thread rows)."
        );
    }

    // Hand-rolled JSON (the vendored serde stub has no serializer). The
    // host's core count rides along in the header and per row, so trend
    // consumers can tell real publication latency from scheduler noise.
    let mut json = format!(
        "{{\n  \"benchmark\": \"serving\",\n  \"workload\": \"fig7-sdf\",\n  \"host_cores\": {cores},\n  \"rows\": [\n"
    );
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"threads\": {}, \"requests\": {}, \"tokens\": {}, \
             \"elapsed_s\": {:.6}, \"tokens_per_sec\": {:.1}, \"requests_per_sec\": {:.1}, \
             \"modifications\": {}, \"edit_mean_us\": {:.2}, \"edit_max_us\": {:.2}, \
             \"scheduler_bound\": {}}}{}",
            row.scenario,
            row.threads,
            row.requests,
            row.tokens,
            row.elapsed_s,
            row.tokens_per_sec(),
            row.requests_per_sec(),
            row.modifications,
            row.edit_mean_us,
            row.edit_max_us,
            row.threads > cores,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    // The loaded-latency summary only considers configurations the host
    // can actually schedule in parallel (threads <= cores); oversubscribed
    // rows measure OS timeslicing, not epoch publication (see the printed
    // note), and would otherwise dominate the trend series.
    let loaded_mean = rows
        .iter()
        .filter(|r| r.scenario == "modify-concurrent" && r.threads >= 1 && r.threads <= cores)
        .map(|r| r.edit_mean_us)
        .fold(0.0f64, f64::max);
    let _ = write!(
        json,
        "  ],\n  \"warm_speedup_4_threads\": {:.3},\n  \"warm_speedup_8_threads\": {:.3},\n  \
         \"modify_concurrent_idle_mean_us\": {:.2},\n  \"modify_concurrent_loaded_mean_us\": {:.2}\n}}\n",
        warm4,
        speedup("warm", 8),
        idle_mean,
        loaded_mean,
    );
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("\nwrote BENCH_serving.json");

    // Scaling is only observable with real cores; on a single-core host the
    // interesting number is the (near-zero) locking overhead instead.
    println!("host parallelism: {cores} core(s)");
    if cores >= 4 && warm4 < 2.5 {
        eprintln!("WARNING: 4-thread warm speedup {warm4:.2}x below the 2.5x target on a {cores}-core host");
    }
}
