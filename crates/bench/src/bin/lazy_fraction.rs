//! Reproduces the §5.2 claim: "for a larger grammar like that of SDF only
//! 60 percent of the parse table had to be generated to parse the SDF
//! definition of SDF itself".
//!
//! For every measurement input this binary parses the input with IPG
//! starting from an empty table and reports which fraction of the full
//! LR(0) table was generated.
//!
//! Run with `cargo run --release -p ipg-bench --bin lazy_fraction`.

use ipg::{GcPolicy, ItemSetGraph, LazyTables};
use ipg_bench::SdfWorkload;
use ipg_glr::GssParser;
use ipg_lr::Lr0Automaton;

fn main() {
    let workload = SdfWorkload::load();
    let full = Lr0Automaton::build(&workload.grammar).num_states();
    println!(
        "full LR(0) table for the SDF grammar: {full} states\n"
    );
    println!("input        tokens   states generated   fraction of full table");
    for input in &workload.inputs {
        let graph = ItemSetGraph::with_policy(&workload.grammar, GcPolicy::RefCount);
        let parser = GssParser::new(&workload.grammar);
        let accepted = parser.recognize(
            &LazyTables::new(&workload.grammar, &graph).unwrap(),
            &input.tokens,
        );
        assert!(accepted, "{} must be accepted", input.name);
        let size = graph.size();
        println!(
            "{:<12} {:>6}   {:>6} complete     {:>5.1}%  (paper reports ~60% for SDF.sdf)",
            input.name,
            input.tokens.len(),
            size.complete,
            size.coverage_of(full) * 100.0
        );
    }

    // Cumulative coverage: parse all four inputs against one graph.
    let graph = ItemSetGraph::with_policy(&workload.grammar, GcPolicy::RefCount);
    let parser = GssParser::new(&workload.grammar);
    for input in &workload.inputs {
        parser.recognize(
            &LazyTables::new(&workload.grammar, &graph).unwrap(),
            &input.tokens,
        );
    }
    println!(
        "\nall four inputs against one lazily generated table: {:.1}% of the full table",
        graph.size().coverage_of(full) * 100.0
    );
}
