//! Reproduces Fig. 6.1–6.5: incremental update of the item-set graph.
//!
//! * Booleans + `B ::= unknown` (Fig. 6.1 / 6.4 / 6.5): only the item sets
//!   with a transition on `B` are invalidated and re-expanded by need.
//! * The grammar of Fig. 6.2 + `A ::= b` (Fig. 6.3): the old graph is not a
//!   subgraph of the new one — the `b`-successor of the invalidated state
//!   is replaced by a merged item set while the old one survives elsewhere.
//!
//! Run with `cargo run -p ipg-bench --bin fig6_incremental`.

use ipg::{IpgSession, ItemSetKind};
use ipg_grammar::fixtures;

fn main() {
    println!("=== Booleans + `B ::= unknown` (Fig. 6.1, 6.4, 6.5) ===\n");
    let mut session = IpgSession::new(fixtures::booleans());
    session.expand_all();
    println!("fully expanded graph: {}", session.graph_size());

    session
        .add_rule_text(r#"B ::= "unknown""#)
        .expect("rule parses");
    let invalidated = session
        .graph()
        .live_nodes()
        .filter(|n| n.kind != ItemSetKind::Complete)
        .count();
    println!(
        "after ADD-RULE: {} item sets invalidated (the ones with a transition on B), {}",
        invalidated,
        session.graph_size()
    );

    let ok = session
        .parse_sentence("unknown or true")
        .expect("tokenizes")
        .accepted;
    println!(
        "parse `unknown or true`: accepted = {ok}; after re-expansion by need: {}",
        session.graph_size()
    );
    println!("statistics:\n{}", session.stats());

    println!("=== Fig. 6.2 grammar + `A ::= b` (Fig. 6.3) ===\n");
    let mut session = IpgSession::new(fixtures::fig62());
    session.expand_all();
    println!("fully expanded graph: {}", session.graph_size());
    session.add_rule_text(r#"A ::= "b""#).expect("rule parses");
    let invalidated: Vec<_> = session
        .graph()
        .live_nodes()
        .filter(|n| n.kind != ItemSetKind::Complete)
        .map(|n| n.id)
        .collect();
    println!("invalidated item sets: {invalidated:?}");
    for sentence in ["a b", "c b"] {
        let ok = session.parse_sentence(sentence).expect("tokenizes").accepted;
        println!("parse `{sentence}`: accepted = {ok}");
    }
    println!("after re-expansion: {}", session.graph_size());
    println!("{}", session.render_graph());
}
