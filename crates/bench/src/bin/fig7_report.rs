//! Reproduces Fig. 7.1: CPU times for the Yacc-like LALR(1) generator, the
//! conventional LR(0) generator PG, and the lazy/incremental generator IPG
//! on the SDF grammar, for the four measurement inputs.
//!
//! Run with `cargo run --release -p ipg-bench --bin fig7_report`.

use ipg_bench::{measure_all, render, SdfWorkload};

fn main() {
    let workload = SdfWorkload::load();
    println!("benchmark grammar: SDF ({} rules, {} symbols)",
        workload.grammar.num_active_rules(),
        workload.grammar.symbols().len());
    for input in &workload.inputs {
        println!(
            "input {:<10} {:>4} tokens (paper: {:>3} tokens)",
            input.name,
            input.tokens.len(),
            input.paper_tokens
        );
    }
    println!();
    // Warm-up round so that one-time costs (lazy statics, allocator growth)
    // do not distort the first measured cell.
    let _ = measure_all(&workload);
    let rows = measure_all(&workload);
    println!("{}", render(&rows));
}
