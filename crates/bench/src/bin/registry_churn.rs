//! `registry_churn` — multi-tenant residency benchmark for the
//! [`ipg::GrammarRegistry`].
//!
//! Two experiments, one report (`BENCH_registry.json`):
//!
//! 1. **Structural sharing** — a warmed wide base grammar plus dialect
//!    tenants forked from it through the SDF module system
//!    (`attach_dialect_module`), versus the same tenants built
//!    independently. The registry's pointer-deduped accounting must show
//!    ≥ 2× memory headroom for the shared fleet: N dialects of one base
//!    cost ~1 base plus their copy-on-write deltas.
//! 2. **Zipf churn under a byte budget** — 64 independent tenants served
//!    with Zipf(1)-skewed popularity. First unbounded (measuring the
//!    unevicted working set W), then again under a budget of W/4 with a
//!    per-request enforcement cadence: cold tenants are evicted back to
//!    their persistent grammars and rebuilt lazily when retouched.
//!    Requests landing on evicted tenants are timed separately (the
//!    re-lazification tax), and the coldest tenants are continuously
//!    cross-checked against never-evicted oracle servers.
//!
//! Hard gates (CI fails on any):
//!
//! * resident-bytes high-water of the budgeted run ≤ budget + 10%,
//! * cold-tenant (evicted-then-retouched) p99 ≤ 50× the warm-tenant p50,
//! * zero equivalence failures against the never-evicted oracles, and
//! * shared-dialect memory headroom ≥ 2×.

use std::time::Instant;

use ipg::{GrammarRegistry, IpgServer, LatencyHistogram};
use ipg_grammar::modules::{GrammarModule, NamedSymbol};

// ---------------------------------------------------------------------
// Deterministic RNG + Zipf sampling (no external RNG crate).
// ---------------------------------------------------------------------

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// CDF of Zipf(1) over `n` ranks (rank r has weight 1/(r+1)).
fn zipf_cdf(n: usize) -> Vec<f64> {
    let weights: Vec<f64> = (0..n).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn zipf_sample(cdf: &[f64], state: &mut u64) -> usize {
    let u = (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64;
    cdf.partition_point(|&c| c <= u).min(cdf.len() - 1)
}

// ---------------------------------------------------------------------
// Workload shape
// ---------------------------------------------------------------------

/// A grammar wide enough that its item-set graph spans several 512-slot
/// chunks, with single-rule deltas that invalidate exactly one state:
/// the shape where chunk-granular structural sharing pays off (a delta
/// copies-on-write ~1 chunk out of many).
fn wide_grammar_bnf(n: usize) -> String {
    let mut text = String::from("START ::= S\n");
    for i in 0..n {
        text.push_str(&format!("S ::= \"op{i}\" A{i}\nA{i} ::= \"x{i}\"\n"));
    }
    text
}

// ---------------------------------------------------------------------
// Experiment 1: module-system dialects vs independent tenants
// ---------------------------------------------------------------------

struct SharingResult {
    dialects: usize,
    base_bytes: usize,
    shared_total: usize,
    independent_total: usize,
    headroom: f64,
}

fn run_sharing(base_rules: usize, dialects: usize) -> SharingResult {
    let base_bnf = wide_grammar_bnf(base_rules);

    // Shared fleet: one warmed base, `dialects` module-system forks.
    let registry = GrammarRegistry::unbounded();
    registry
        .attach("base", IpgServer::from_bnf(&base_bnf).expect("base grammar"))
        .expect("attach base");
    registry.server(0).expect("base attached").warm();
    let base_bytes = registry.resident_bytes();
    for i in 0..dialects {
        let module = GrammarModule::new(&format!("Dialect{i}")).rule(
            &format!("A{}", (i * 29 + 1) % base_rules),
            vec![NamedSymbol::t(&format!("kw{i}"))],
        );
        registry
            .attach_dialect_module(&format!("dialect-{i}"), "base", &module)
            .expect("attach dialect");
    }
    let shared_total = registry.resident_bytes();

    // Independent fleet: the same grammars, each built and warmed on its
    // own. Measured one at a time (and dropped) — nothing is shared by
    // construction, so the sum of per-tenant residency is exact, without
    // holding every working set in memory at once.
    let mut independent_total = 0usize;
    for i in 0..=dialects {
        let bnf = if i == 0 {
            base_bnf.clone()
        } else {
            let j = ((i - 1) * 29 + 1) % base_rules;
            format!("{base_bnf}A{j} ::= \"kw{}\"\n", i - 1)
        };
        let server = IpgServer::from_bnf(&bnf).expect("independent grammar");
        server.warm();
        independent_total += server.resident_bytes();
    }

    SharingResult {
        dialects,
        base_bytes,
        shared_total,
        independent_total,
        headroom: independent_total as f64 / shared_total.max(1) as f64,
    }
}

// ---------------------------------------------------------------------
// Experiment 2: Zipf churn under a byte budget
// ---------------------------------------------------------------------

struct ChurnResult {
    tenants: usize,
    requests: usize,
    unevicted_bytes: usize,
    budget: usize,
    high_water: usize,
    resident_after: usize,
    chunks_evicted: usize,
    chunks_relazified: usize,
    warm: LatencyHistogram,
    cold: LatencyHistogram,
    equivalence_checks: usize,
    equivalence_failures: usize,
}

fn build_churn_tenants(tenant_bnf: &str, tenants: usize, budget: usize, sweep: usize) -> GrammarRegistry {
    let registry = if budget == 0 {
        GrammarRegistry::unbounded()
    } else {
        GrammarRegistry::new(budget, sweep)
    };
    for t in 0..tenants {
        registry
            .attach(
                &format!("tenant-{t}"),
                IpgServer::from_bnf(tenant_bnf).expect("tenant grammar"),
            )
            .expect("attach tenant");
    }
    registry
}

/// The deterministic churn script: request `r` addresses Zipf rank
/// `tenant`, parsing a sentence that exercises rule `j` (every 7th
/// request an ungrammatical permutation, so rejection paths churn too).
fn churn_request(cdf: &[f64], rules: usize, rng: &mut u64, r: usize) -> (usize, String) {
    let tenant = zipf_sample(cdf, rng);
    let j = (xorshift(rng) % rules as u64) as usize;
    let sentence = if r % 7 == 6 {
        format!("op{j} x{}", (j + 1) % rules)
    } else {
        format!("op{j} x{j}")
    };
    (tenant, sentence)
}

fn run_churn(tenants: usize, rules: usize, requests: usize, seed: u64) -> ChurnResult {
    let tenant_bnf = wide_grammar_bnf(rules);
    let cdf = zipf_cdf(tenants);

    // Pass 1 — unbounded: the same request script, no budget. Its final
    // residency is the unevicted working set W the budget is set from.
    let unbounded = build_churn_tenants(&tenant_bnf, tenants, 0, 0);
    let mut rng = seed | 1;
    for r in 0..requests {
        let (tenant, sentence) = churn_request(&cdf, rules, &mut rng, r);
        let server = unbounded.server(tenant as u32).expect("known tenant");
        server.parse_sentence(&sentence).expect("parse");
        unbounded.after_request(tenant as u32);
    }
    let unevicted_bytes = unbounded.resident_bytes();
    drop(unbounded);

    // Pass 2 — budgeted at W/4, enforcement after every request. The
    // coldest quarter of the tenant ranks is shadowed by never-evicted
    // oracle servers; every request routed there is cross-checked.
    let budget = unevicted_bytes / 4;
    let registry = build_churn_tenants(&tenant_bnf, tenants, budget, 1);
    let oracle_from = tenants - tenants / 4;
    let oracles: Vec<IpgServer> = (oracle_from..tenants)
        .map(|_| IpgServer::from_bnf(&tenant_bnf).expect("oracle grammar"))
        .collect();

    let mut warm = LatencyHistogram::default();
    let mut cold = LatencyHistogram::default();
    let mut equivalence_checks = 0usize;
    let mut equivalence_failures = 0usize;
    let mut rng = seed | 1;
    for r in 0..requests {
        let (tenant, sentence) = churn_request(&cdf, rules, &mut rng, r);
        let id = tenant as u32;
        let was_evicted = registry.is_evicted(id).expect("known tenant");
        let started = Instant::now();
        let server = registry.server(id).expect("known tenant");
        let result = server.parse_sentence(&sentence).expect("parse");
        registry.after_request(id);
        let elapsed = started.elapsed();
        if was_evicted {
            cold.record(elapsed);
        } else {
            warm.record(elapsed);
        }
        if tenant >= oracle_from {
            let oracle = &oracles[tenant - oracle_from];
            let expected = oracle.parse_sentence(&sentence).expect("oracle parse");
            equivalence_checks += 1;
            if result.accepted != expected.accepted
                || result.forest.tree_count(50) != expected.forest.tree_count(50)
            {
                equivalence_failures += 1;
                eprintln!(
                    "EQUIVALENCE FAILURE: tenant {tenant}, `{sentence}`: \
                     accepted {} vs oracle {}",
                    result.accepted, expected.accepted
                );
            }
        }
    }
    let stats = registry.stats();

    ChurnResult {
        tenants,
        requests,
        unevicted_bytes,
        budget,
        high_water: registry.resident_high_water(),
        resident_after: stats.resident_bytes,
        chunks_evicted: stats.chunks_evicted,
        chunks_relazified: stats.chunks_relazified,
        warm,
        cold,
        equivalence_checks,
        equivalence_failures,
    }
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

fn histogram_json(h: &LatencyHistogram) -> String {
    let (p50, p99, p999) = h.percentiles_us();
    format!(
        "{{\"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {p50}, \"p99_us\": {p99}, \
         \"p999_us\": {p999}, \"max_us\": {}}}",
        h.count(),
        h.mean_us(),
        h.max_us()
    )
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("registry churn benchmark (host: {cores} core(s))");

    // Experiment 1.
    let sharing = run_sharing(550, 16);
    println!(
        "sharing: base {} KiB, {} dialects shared {} KiB vs independent {} KiB -> {:.2}x headroom",
        sharing.base_bytes / 1024,
        sharing.dialects,
        sharing.shared_total / 1024,
        sharing.independent_total / 1024,
        sharing.headroom,
    );

    // Experiment 2.
    let churn = run_churn(64, 96, 8000, 0x5EED_CAFE);
    let (warm_p50, warm_p99, _) = churn.warm.percentiles_us();
    let (cold_p50, cold_p99, _) = churn.cold.percentiles_us();
    println!(
        "churn: {} tenants, {} requests; unevicted working set {} KiB, budget {} KiB (25%)",
        churn.tenants,
        churn.requests,
        churn.unevicted_bytes / 1024,
        churn.budget / 1024,
    );
    println!(
        "residency: high-water {} KiB ({:.3}x budget), final {} KiB, \
         {} chunks evicted, {} re-lazified",
        churn.high_water / 1024,
        churn.high_water as f64 / churn.budget.max(1) as f64,
        churn.resident_after / 1024,
        churn.chunks_evicted,
        churn.chunks_relazified,
    );
    println!(
        "latency: warm p50 {warm_p50}us p99 {warm_p99}us ({} reqs); \
         cold p50 {cold_p50}us p99 {cold_p99}us ({} reqs, {:.1}x warm p50)",
        churn.warm.count(),
        churn.cold.count(),
        cold_p99 as f64 / warm_p50.max(1) as f64,
    );
    println!(
        "equivalence: {} checks against never-evicted oracles, {} failures",
        churn.equivalence_checks, churn.equivalence_failures,
    );

    let bytes_per_tenant_unevicted = churn.unevicted_bytes / churn.tenants;
    let bytes_per_tenant_budgeted = churn.resident_after / churn.tenants;
    let high_water_x = churn.high_water as f64 / churn.budget.max(1) as f64;
    let cold_over_warm = cold_p99 as f64 / warm_p50.max(1) as f64;
    let json = format!(
        "{{\n  \"benchmark\": \"registry_churn\",\n  \"host_cores\": {cores},\n  \
         \"sharing\": {{\"base_rules\": 550, \"dialects\": {}, \"base_bytes\": {}, \
         \"shared_total_bytes\": {}, \"independent_total_bytes\": {}, \
         \"headroom_x\": {:.3}}},\n  \
         \"churn\": {{\"tenants\": {}, \"rules_per_tenant\": 96, \"requests\": {}, \
         \"unevicted_working_set_bytes\": {}, \"budget_bytes\": {}, \
         \"budget_fraction\": 0.25, \"resident_high_water\": {}, \
         \"high_water_over_budget\": {high_water_x:.3}, \"resident_after\": {}, \
         \"bytes_per_tenant_unevicted\": {bytes_per_tenant_unevicted}, \
         \"bytes_per_tenant_budgeted\": {bytes_per_tenant_budgeted}, \
         \"chunks_evicted\": {}, \"chunks_relazified\": {}, \
         \"latency_warm_us\": {}, \"latency_cold_us\": {}, \
         \"cold_p99_over_warm_p50\": {cold_over_warm:.2}}},\n  \
         \"equivalence\": {{\"checks\": {}, \"failures\": {}}}\n}}\n",
        sharing.dialects,
        sharing.base_bytes,
        sharing.shared_total,
        sharing.independent_total,
        sharing.headroom,
        churn.tenants,
        churn.requests,
        churn.unevicted_bytes,
        churn.budget,
        churn.high_water,
        churn.resident_after,
        churn.chunks_evicted,
        churn.chunks_relazified,
        histogram_json(&churn.warm),
        histogram_json(&churn.cold),
        churn.equivalence_checks,
        churn.equivalence_failures,
    );
    std::fs::write("BENCH_registry.json", &json).expect("write BENCH_registry.json");
    println!("\nwrote BENCH_registry.json");

    // Hard gates.
    let mut failed = false;
    if churn.high_water as f64 > churn.budget as f64 * 1.1 {
        eprintln!(
            "FAIL: resident high-water {} exceeds budget {} + 10% — the budget does not bound \
             residency",
            churn.high_water, churn.budget
        );
        failed = true;
    }
    if cold_p99 > 50 * warm_p50.max(1) {
        eprintln!(
            "FAIL: cold-tenant p99 {cold_p99}us exceeds 50x the warm p50 {warm_p50}us — \
             re-lazification is not incremental"
        );
        failed = true;
    }
    if churn.equivalence_failures > 0 {
        eprintln!(
            "FAIL: {} evicted-then-retouched result(s) diverged from the never-evicted oracle",
            churn.equivalence_failures
        );
        failed = true;
    }
    if sharing.headroom < 2.0 {
        eprintln!(
            "FAIL: module-shared dialects give only {:.2}x headroom vs independent tenants \
             (gate: 2x)",
            sharing.headroom
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "gates: all passed (high-water {high_water_x:.3}x budget, cold p99 {cold_over_warm:.1}x \
         warm p50, equivalence clean, sharing {:.2}x)",
        sharing.headroom
    );
}
