//! Reproduces Fig. 5.1 / 5.2: the growth of the item-set graph under lazy
//! generation — after `GENERATE-PARSER`, after the first `ACTION` call, and
//! after parsing `true and true`. Also shows that sentences restricted to
//! `and`/`true` never force the `or`/`false` parts of the table to exist.
//!
//! Run with `cargo run -p ipg-bench --bin fig5_lazy`.

use ipg::IpgSession;
use ipg_grammar::fixtures;
use ipg_lr::Lr0Automaton;

fn main() {
    let grammar = fixtures::booleans();
    let full_states = Lr0Automaton::build(&grammar).num_states();
    let session = IpgSession::new(grammar);

    println!("Fig. 5.1(a) — after lazy GENERATE-PARSER:");
    println!("  {}", session.graph_size());
    println!("{}", session.render_graph());

    session
        .parse_sentence("true and true")
        .expect("sentence tokenizes");
    println!("Fig. 5.2 — after parsing `true and true`:");
    println!("  {}", session.graph_size());
    println!("{}", session.render_graph());
    println!(
        "coverage: {:.0}% of the {} states of the full LR(0) table",
        session.coverage() * 100.0,
        full_states
    );

    session
        .parse_sentence("false or true")
        .expect("sentence tokenizes");
    println!("after additionally parsing `false or true`:");
    println!("  {}", session.graph_size());
    println!(
        "coverage: {:.0}% of the full table",
        session.coverage() * 100.0
    );
    println!("\ngenerator statistics:\n{}", session.stats());
}
