//! # ipg-bench
//!
//! The benchmark harness of the IPG reproduction. It contains the shared
//! workload definitions and measurement code used by
//!
//! * the Criterion benches (`benches/fig7_generators.rs`,
//!   `benches/ablation.rs`, `benches/parsing_throughput.rs`), and
//! * the figure-report binaries (`fig2_comparison`, `fig4_table`,
//!   `fig5_lazy`, `fig6_incremental`, `lazy_fraction`, `fig7_report`)
//!   that print the paper's tables and figures from fresh measurements.
//!
//! See DESIGN.md (per-experiment index) and EXPERIMENTS.md (recorded
//! results) at the repository root.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fig7;
pub mod workload;

pub use fig7::{measure, measure_all, render, Fig7Row, GeneratorKind};
pub use workload::{
    synthetic_workload, wide_synthetic_workload, PreLexedInput, SdfWorkload, SyntheticWorkload,
    WideSyntheticWorkload,
};

/// Mean and max of a set of latencies in seconds, reported in
/// microseconds — the aggregation every latency-measuring bench bin
/// (`serving`, `publish-scaling`) prints and emits into its JSON.
pub fn mean_max_us(latencies: &[f64]) -> (f64, f64) {
    let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    let max = latencies.iter().cloned().fold(0.0f64, f64::max);
    (mean * 1e6, max * 1e6)
}
