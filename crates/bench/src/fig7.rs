//! The Fig. 7.1 measurement: for each of the three parser generators
//! (Yacc-like LALR(1), PG, IPG) and each of the four inputs, measure
//!
//! 1. constructing the parse table for SDF,
//! 2. parsing the input twice,
//! 3. modifying the grammar (adding `"(" CF-ELEM+ ")?" -> CF-ELEM`) and
//!    reconstructing the parse table,
//! 4. parsing the same input twice again.
//!
//! The absolute numbers are of course nothing like a 1988 SUN 3/60 running
//! LeLisp; what the reproduction preserves is the *shape*: batch generation
//! (Yacc, PG) pays its full table-generation cost before the first parse
//! and again after every modification, while IPG starts parsing
//! immediately, spreads generation over the first parse, and absorbs the
//! modification with a near-zero update.

use std::time::Instant;

use ipg::{GcPolicy, ItemSetGraph, LazyTables};
use ipg_glr::GssParser;
use ipg_grammar::Grammar;
use ipg_lr::{lalr1_table, Lr0Automaton, LrParser, ParseTable};

use crate::workload::{PreLexedInput, SdfWorkload};

/// The three generators of the measurement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GeneratorKind {
    /// LALR(1) batch generation, deterministic parsing where possible —
    /// the stand-in for Yacc (§7; the C-compile/link share of the paper's
    /// Yacc column is not modelled, see DESIGN.md).
    Yacc,
    /// Eager LR(0) generation, Tomita parsing — the paper's PG.
    Pg,
    /// Lazy/incremental LR(0) generation, Tomita parsing — IPG.
    Ipg,
}

impl GeneratorKind {
    /// All three generators, in the paper's order.
    pub fn all() -> [GeneratorKind; 3] {
        [GeneratorKind::Yacc, GeneratorKind::Pg, GeneratorKind::Ipg]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GeneratorKind::Yacc => "Yacc (LALR(1))",
            GeneratorKind::Pg => "PG (eager LR(0))",
            GeneratorKind::Ipg => "IPG (lazy/incremental LR(0))",
        }
    }
}

/// One measured row of Fig. 7.1 (all times in milliseconds).
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Which generator.
    pub generator: GeneratorKind,
    /// Which input.
    pub input: &'static str,
    /// Tokens in the input.
    pub tokens: usize,
    /// Time to construct the parse table for SDF.
    pub construct_ms: f64,
    /// First parse of the input.
    pub parse1_ms: f64,
    /// Second parse of the same input.
    pub parse2_ms: f64,
    /// Time to modify the grammar and reconstruct/update the parse table.
    pub modify_ms: f64,
    /// First parse after the modification.
    pub parse3_ms: f64,
    /// Second parse after the modification.
    pub parse4_ms: f64,
}

impl Fig7Row {
    /// Total time of the whole scenario.
    pub fn total_ms(&self) -> f64 {
        self.construct_ms
            + self.parse1_ms
            + self.parse2_ms
            + self.modify_ms
            + self.parse3_ms
            + self.parse4_ms
    }

    /// Time until the first parse has completed (the "smooth response"
    /// quantity the paper cares about for interactive use).
    pub fn time_to_first_parse_ms(&self) -> f64 {
        self.construct_ms + self.parse1_ms
    }
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64() * 1e3)
}

/// Parses with the deterministic LR parser when the table is conflict-free,
/// falling back to the parallel parser otherwise. Returns `true` when the
/// input was accepted.
fn parse_with_table(grammar: &Grammar, table: &ParseTable, input: &PreLexedInput) -> bool {
    if table.is_deterministic() {
        LrParser::new(grammar)
            .recognize(table, &input.tokens)
            .unwrap_or(false)
    } else {
        GssParser::new(grammar).recognize(table, &input.tokens)
    }
}

/// Runs the scenario for one generator and one input.
pub fn measure(workload: &SdfWorkload, generator: GeneratorKind, input_name: &str) -> Fig7Row {
    let input = workload.input(input_name).clone();
    let (lhs, rhs) = workload.modification.clone();
    match generator {
        GeneratorKind::Yacc => {
            let mut grammar = workload.grammar.clone();
            let (table, construct_ms) = time(|| {
                let table = lalr1_table(&grammar);
                // Stand-in for writing the generated parser out (the paper's
                // Yacc emits C source; compiling it is not modelled).
                let _ = table.render(&grammar);
                table
            });
            let (ok1, parse1_ms) = time(|| parse_with_table(&grammar, &table, &input));
            let (_, parse2_ms) = time(|| parse_with_table(&grammar, &table, &input));
            let (table, modify_ms) = time(|| {
                grammar.add_rule(lhs, rhs.clone());
                let table = lalr1_table(&grammar);
                let _ = table.render(&grammar);
                table
            });
            let (ok3, parse3_ms) = time(|| parse_with_table(&grammar, &table, &input));
            let (_, parse4_ms) = time(|| parse_with_table(&grammar, &table, &input));
            assert!(ok1 && ok3, "Yacc baseline rejected {input_name}");
            Fig7Row {
                generator,
                input: input.name,
                tokens: input.tokens.len(),
                construct_ms,
                parse1_ms,
                parse2_ms,
                modify_ms,
                parse3_ms,
                parse4_ms,
            }
        }
        GeneratorKind::Pg => {
            let mut grammar = workload.grammar.clone();
            let (table, construct_ms) =
                time(|| ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar));
            let parser = GssParser::new(&grammar);
            let (ok1, parse1_ms) = time(|| parser.recognize(&table, &input.tokens));
            let (_, parse2_ms) = time(|| parser.recognize(&table, &input.tokens));
            let (table, modify_ms) = time(|| {
                grammar.add_rule(lhs, rhs.clone());
                ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar)
            });
            let parser = GssParser::new(&grammar);
            let (ok3, parse3_ms) = time(|| parser.recognize(&table, &input.tokens));
            let (_, parse4_ms) = time(|| parser.recognize(&table, &input.tokens));
            assert!(ok1 && ok3, "PG rejected {input_name}");
            Fig7Row {
                generator,
                input: input.name,
                tokens: input.tokens.len(),
                construct_ms,
                parse1_ms,
                parse2_ms,
                modify_ms,
                parse3_ms,
                parse4_ms,
            }
        }
        GeneratorKind::Ipg => {
            let mut grammar = workload.grammar.clone();
            let (mut graph, construct_ms) =
                time(|| ItemSetGraph::with_policy(&grammar, GcPolicy::RefCount));
            let parser = GssParser::new(&grammar);
            let (ok1, parse1_ms) = time(|| {
                parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &input.tokens)
            });
            let (_, parse2_ms) = time(|| {
                parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &input.tokens)
            });
            let (_, modify_ms) = time(|| graph.add_rule(&mut grammar, lhs, rhs.clone()));
            let parser = GssParser::new(&grammar);
            let (ok3, parse3_ms) = time(|| {
                parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &input.tokens)
            });
            let (_, parse4_ms) = time(|| {
                parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &input.tokens)
            });
            assert!(ok1 && ok3, "IPG rejected {input_name}");
            Fig7Row {
                generator,
                input: input.name,
                tokens: input.tokens.len(),
                construct_ms,
                parse1_ms,
                parse2_ms,
                modify_ms,
                parse3_ms,
                parse4_ms,
            }
        }
    }
}

/// Runs the whole Fig. 7.1 matrix (3 generators × 4 inputs).
pub fn measure_all(workload: &SdfWorkload) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for input in &workload.inputs {
        for generator in GeneratorKind::all() {
            rows.push(measure(workload, generator, input.name));
        }
    }
    rows
}

/// Renders the rows in the layout of Fig. 7.1 (one block per input, one
/// column per generator).
pub fn render(rows: &[Fig7Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 7.1 — CPU time (ms) for Yacc / PG / IPG on the SDF grammar\n");
    out.push_str(
        "phase               |        Yacc |          PG |         IPG\n",
    );
    let inputs: Vec<&str> = {
        let mut seen = Vec::new();
        for r in rows {
            if !seen.contains(&r.input) {
                seen.push(r.input);
            }
        }
        seen
    };
    for input in inputs {
        let of = |g: GeneratorKind| {
            rows.iter()
                .find(|r| r.input == input && r.generator == g)
                .expect("complete matrix")
        };
        let yacc = of(GeneratorKind::Yacc);
        let pg = of(GeneratorKind::Pg);
        let ipg = of(GeneratorKind::Ipg);
        out.push_str(&format!(
            "--- {} ({} tokens) ---\n",
            input, yacc.tokens
        ));
        let mut line = |label: &str, f: &dyn Fn(&Fig7Row) -> f64| {
            out.push_str(&format!(
                "{label:<20}| {:>11.3} | {:>11.3} | {:>11.3}\n",
                f(yacc),
                f(pg),
                f(ipg)
            ));
        };
        line("construct table", &|r| r.construct_ms);
        line("parse (1st)", &|r| r.parse1_ms);
        line("parse (2nd)", &|r| r.parse2_ms);
        line("modify grammar", &|r| r.modify_ms);
        line("parse (1st)", &|r| r.parse3_ms);
        line("parse (2nd)", &|r| r.parse4_ms);
        line("total", &|r| r.total_ms());
        line("time to 1st parse", &|r| r.time_to_first_parse_ms());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipg_measurement_shape_on_the_smallest_input() {
        let workload = SdfWorkload::load();
        let row = measure(&workload, GeneratorKind::Ipg, "exp.sdf");
        // Lazy generation: constructing the "table" is (nearly) free, and
        // the second parse is not slower than the first (which had to
        // expand item sets).
        assert!(row.construct_ms < row.parse1_ms);
        assert!(row.parse2_ms <= row.parse1_ms * 1.5 + 0.5);
        // The incremental modification is cheap compared to parsing.
        assert!(row.modify_ms <= row.parse1_ms + 0.5);
        assert!(row.total_ms() > 0.0);
    }

    #[test]
    fn pg_pays_generation_before_the_first_parse() {
        let workload = SdfWorkload::load();
        let row = measure(&workload, GeneratorKind::Pg, "exp.sdf");
        assert!(row.construct_ms > 0.0);
        // Full regeneration after the modification costs about as much as
        // the initial generation (same order of magnitude).
        assert!(row.modify_ms > row.construct_ms * 0.2);
    }

    #[test]
    fn render_produces_one_block_per_input() {
        let workload = SdfWorkload::load();
        let rows = vec![
            measure(&workload, GeneratorKind::Yacc, "exp.sdf"),
            measure(&workload, GeneratorKind::Pg, "exp.sdf"),
            measure(&workload, GeneratorKind::Ipg, "exp.sdf"),
        ];
        let text = render(&rows);
        assert!(text.contains("exp.sdf"));
        assert!(text.contains("construct table"));
        assert!(text.contains("time to 1st parse"));
    }
}
