//! Counters describing how much work the lazy/incremental generator has
//! done. These back the paper's §5.2 observation ("only 60 percent of the
//! parse table had to be generated to parse the SDF definition of SDF
//! itself") and the §7 measurements.

use std::fmt;

/// Work counters of an item-set graph. All counters are cumulative over the
/// lifetime of the graph (they are not reset by grammar modifications).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Item sets created (initial or otherwise).
    pub nodes_created: usize,
    /// `EXPAND` operations on initial item sets.
    pub expansions: usize,
    /// `RE-EXPAND` operations on dirty item sets.
    pub re_expansions: usize,
    /// Closures computed (one per (re-)expansion).
    pub closures: usize,
    /// Calls to `ACTION` (through the lazy tables).
    pub action_calls: usize,
    /// Calls to `GOTO` (through the lazy tables).
    pub goto_calls: usize,
    /// Grammar modifications processed (`ADD-RULE` + `DELETE-RULE`).
    pub modifications: usize,
    /// Item sets invalidated by modifications (made initial/dirty).
    pub invalidations: usize,
    /// Item sets reclaimed by reference-count garbage collection.
    pub nodes_collected: usize,
    /// Item sets reclaimed by mark-and-sweep collection.
    pub nodes_swept: usize,
    /// Mark-and-sweep passes run.
    pub sweeps: usize,
    /// Dense action rows built (once per node per structural change; a
    /// steady-state parse builds none).
    pub rows_built: usize,
    /// Parses served (counted by the serving layer's per-thread
    /// aggregation; zero for counters read directly off a graph).
    pub parses: usize,
    /// Grammar epochs published by the serving layer (`MODIFY`, scanner
    /// changes, GC — each builds a successor table state and publishes it
    /// without draining in-flight parses). Zero for counters read
    /// directly off a graph.
    pub epochs_published: usize,
    /// Epochs retired: replaced as current but kept alive until their
    /// last pinned reader left.
    pub epochs_retired: usize,
    /// Retired epochs actually reclaimed (their item-set storage, dense
    /// rows and DFA snapshots freed) by the deferred sweep that runs once
    /// the epoch's last reader leaves.
    pub epochs_reclaimed: usize,
    /// Storage chunks of the persistent item-set store copied on write
    /// because they were still shared with another fork (epoch) — the
    /// observable cost of structural sharing: a `MODIFY` publication pays
    /// one of these per chunk holding an invalidated state, instead of a
    /// deep copy of the whole graph.
    pub chunks_cowed: usize,
    /// Lazy-DFA states carried over across lexical definition changes
    /// instead of being rebuilt from scratch (reported by the serving
    /// layer from the current epoch's scanner; zero for counters read
    /// directly off a graph or for servers without a scanner).
    pub dfa_states_carried: usize,
    /// Requests served from a recycled per-thread parse context (all
    /// scratch — GSS pools, forest arena, scan buffer — reused; the warm,
    /// allocation-free path). Counted by the serving layer.
    pub ctx_reused: usize,
    /// Requests that had to build a fresh parse context (first request of
    /// a thread, or a nested checkout). Counted by the serving layer.
    pub ctx_fresh: usize,
}

impl GenStats {
    /// Total number of item sets reclaimed by any garbage collector.
    pub fn total_collected(&self) -> usize {
        self.nodes_collected + self.nodes_swept
    }

    /// Total number of expansion operations (lazy + re-expansions).
    pub fn total_expansions(&self) -> usize {
        self.expansions + self.re_expansions
    }
}

impl fmt::Display for GenStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "item sets created:    {}", self.nodes_created)?;
        writeln!(f, "expansions:           {}", self.expansions)?;
        writeln!(f, "re-expansions:        {}", self.re_expansions)?;
        writeln!(f, "ACTION calls:         {}", self.action_calls)?;
        writeln!(f, "GOTO calls:           {}", self.goto_calls)?;
        writeln!(f, "grammar modifications:{}", self.modifications)?;
        writeln!(f, "item sets invalidated:{}", self.invalidations)?;
        writeln!(f, "collected (refcount): {}", self.nodes_collected)?;
        writeln!(f, "collected (sweep):    {}", self.nodes_swept)?;
        writeln!(f, "action rows built:    {}", self.rows_built)?;
        if self.parses > 0 {
            writeln!(f, "parses served:        {}", self.parses)?;
        }
        if self.epochs_published > 0 {
            writeln!(f, "epochs published:     {}", self.epochs_published)?;
            writeln!(f, "epochs retired:       {}", self.epochs_retired)?;
            writeln!(f, "epochs reclaimed:     {}", self.epochs_reclaimed)?;
        }
        if self.chunks_cowed > 0 {
            writeln!(f, "chunks copied (COW):  {}", self.chunks_cowed)?;
        }
        if self.dfa_states_carried > 0 {
            writeln!(f, "DFA states carried:   {}", self.dfa_states_carried)?;
        }
        if self.ctx_reused + self.ctx_fresh > 0 {
            writeln!(f, "contexts recycled:    {}", self.ctx_reused)?;
            writeln!(f, "contexts built:       {}", self.ctx_fresh)?;
        }
        Ok(())
    }
}

/// A snapshot of the graph's size, used to measure how much of the full
/// parse table has been generated (the §5.2 coverage numbers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphSize {
    /// Live item sets of any kind.
    pub total: usize,
    /// Live item sets that are complete (expanded).
    pub complete: usize,
    /// Live item sets that are initial (never expanded, or invalidated
    /// without history).
    pub initial: usize,
    /// Live item sets that are dirty (invalidated, history retained).
    pub dirty: usize,
    /// Live transitions out of complete and dirty item sets.
    pub transitions: usize,
}

impl GraphSize {
    /// Fraction of live item sets that have actually been expanded.
    pub fn expanded_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.complete as f64 / self.total as f64
        }
    }

    /// Coverage of this (lazily generated) graph relative to the state
    /// count of a fully generated automaton: the paper's "only 60 percent
    /// of the parse table had to be generated".
    pub fn coverage_of(&self, full_states: usize) -> f64 {
        if full_states == 0 {
            0.0
        } else {
            self.complete as f64 / full_states as f64
        }
    }
}

impl fmt::Display for GraphSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} item sets ({} complete, {} initial, {} dirty), {} transitions",
            self.total, self.complete, self.initial, self.dirty, self.transitions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let stats = GenStats {
            nodes_collected: 3,
            nodes_swept: 2,
            expansions: 5,
            re_expansions: 4,
            ..Default::default()
        };
        assert_eq!(stats.total_collected(), 5);
        assert_eq!(stats.total_expansions(), 9);
        let text = stats.to_string();
        assert!(text.contains("re-expansions:        4"));
    }

    #[test]
    fn graph_size_fractions() {
        let size = GraphSize {
            total: 10,
            complete: 6,
            initial: 3,
            dirty: 1,
            transitions: 20,
        };
        assert!((size.expanded_fraction() - 0.6).abs() < 1e-9);
        assert!((size.coverage_of(12) - 0.5).abs() < 1e-9);
        assert!(size.to_string().contains("6 complete"));
    }

    #[test]
    fn empty_sizes_do_not_divide_by_zero() {
        let size = GraphSize::default();
        assert_eq!(size.expanded_fraction(), 0.0);
        assert_eq!(size.coverage_of(0), 0.0);
    }
}
