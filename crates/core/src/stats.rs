//! Counters describing how much work the lazy/incremental generator has
//! done. These back the paper's §5.2 observation ("only 60 percent of the
//! parse table had to be generated to parse the SDF definition of SDF
//! itself") and the §7 measurements — plus the serving-layer latency
//! histograms and overload counters the network frontend reports through
//! its STATS verb.

use std::fmt;
use std::time::Duration;

/// Number of fixed histogram buckets (see [`LatencyHistogram`]).
pub const HISTOGRAM_BUCKETS: usize = 128;

/// A fixed-bucket latency histogram: values 0–7 µs get exact buckets,
/// everything above is bucketed at quarter-octave (≤ 25 %) resolution up
/// to ~2 hours. Recording is allocation-free and branch-light — one index
/// computation and two increments — so it can sit on the serving hot path;
/// the structure is `Copy`, so it rides inside [`GenStats`] through the
/// existing per-thread aggregation.
///
/// Merging two histograms (bucket-wise addition, max of maxima) is exact:
/// unlike a `(mean, max)` pair, no quantile information is lost when
/// per-thread histograms are folded into an aggregate — including the
/// serving layer's bounded-thread-map *overflow* aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Sample counts per bucket (see [`LatencyHistogram::bucket_index`]).
    counts: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    count: u64,
    /// Sum of all recorded values in microseconds (for the mean).
    sum_us: u64,
    /// Largest recorded value in microseconds (exact, not bucketed).
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// The bucket index of a value in microseconds: exact below 8 µs, then
    /// four sub-buckets per power of two, saturating in the last bucket.
    fn bucket_index(us: u64) -> usize {
        if us < 8 {
            return us as usize;
        }
        let b = 63 - us.leading_zeros() as u64; // floor(log2(us)), >= 3
        let sub = (us >> (b - 2)) & 3;
        (((b - 3) * 4 + sub) as usize + 8).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The lower bound (µs) of the bucket with the given index — what the
    /// quantile estimators report, so estimates err low, never high, by at
    /// most one bucket width (≤ 25 %).
    fn bucket_floor(index: usize) -> u64 {
        if index < 8 {
            return index as u64;
        }
        let k = (index - 8) as u64 / 4;
        let sub = (index - 8) as u64 % 4;
        (1 << (k + 3)) + sub * (1 << (k + 1))
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.counts[Self::bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Folds `other` into `self`. Exact: bucket-wise addition plus max of
    /// the maxima — no quantile or high-water information is lost.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded values in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Largest recorded value in microseconds (exact).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in microseconds: the floor of the
    /// bucket holding the `ceil(q · count)`-th smallest sample. Returns 0
    /// when empty; `q >= 1` returns the exact maximum.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max_us;
        }
        let rank = ((q.max(0.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_floor(index);
            }
        }
        self.max_us
    }

    /// Convenience: the (p50, p99, p999) triple in microseconds.
    pub fn percentiles_us(&self) -> (u64, u64, u64) {
        (
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            self.quantile_us(0.999),
        )
    }
}

/// Work counters of an item-set graph. All counters are cumulative over the
/// lifetime of the graph (they are not reset by grammar modifications).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Item sets created (initial or otherwise).
    pub nodes_created: usize,
    /// `EXPAND` operations on initial item sets.
    pub expansions: usize,
    /// `RE-EXPAND` operations on dirty item sets.
    pub re_expansions: usize,
    /// Closures computed (one per (re-)expansion).
    pub closures: usize,
    /// Calls to `ACTION` (through the lazy tables).
    pub action_calls: usize,
    /// Calls to `GOTO` (through the lazy tables).
    pub goto_calls: usize,
    /// Grammar modifications processed (`ADD-RULE` + `DELETE-RULE`).
    pub modifications: usize,
    /// Item sets invalidated by modifications (made initial/dirty).
    pub invalidations: usize,
    /// Item sets reclaimed by reference-count garbage collection.
    pub nodes_collected: usize,
    /// Item sets reclaimed by mark-and-sweep collection.
    pub nodes_swept: usize,
    /// Mark-and-sweep passes run.
    pub sweeps: usize,
    /// Dense action rows built (once per node per structural change; a
    /// steady-state parse builds none).
    pub rows_built: usize,
    /// Parses served (counted by the serving layer's per-thread
    /// aggregation; zero for counters read directly off a graph).
    pub parses: usize,
    /// Grammar epochs published by the serving layer (`MODIFY`, scanner
    /// changes, GC — each builds a successor table state and publishes it
    /// without draining in-flight parses). Zero for counters read
    /// directly off a graph.
    pub epochs_published: usize,
    /// Epochs retired: replaced as current but kept alive until their
    /// last pinned reader left.
    pub epochs_retired: usize,
    /// Retired epochs actually reclaimed (their item-set storage, dense
    /// rows and DFA snapshots freed) by the deferred sweep that runs once
    /// the epoch's last reader leaves.
    pub epochs_reclaimed: usize,
    /// Storage chunks of the persistent item-set store copied on write
    /// because they were still shared with another fork (epoch) — the
    /// observable cost of structural sharing: a `MODIFY` publication pays
    /// one of these per chunk holding an invalidated state, instead of a
    /// deep copy of the whole graph.
    pub chunks_cowed: usize,
    /// Lazy-DFA states carried over across lexical definition changes
    /// instead of being rebuilt from scratch (reported by the serving
    /// layer from the current epoch's scanner; zero for counters read
    /// directly off a graph or for servers without a scanner).
    pub dfa_states_carried: usize,
    /// Requests served from a recycled per-thread parse context (all
    /// scratch — GSS pools, forest arena, scan buffer — reused; the warm,
    /// allocation-free path). Counted by the serving layer.
    pub ctx_reused: usize,
    /// Requests that had to build a fresh parse context (first request of
    /// a thread, or a nested checkout). Counted by the serving layer.
    pub ctx_fresh: usize,
    /// Service-latency histogram of served requests (one sample per
    /// `parse*`/`recognize` in the serving layer; the network frontend
    /// records its end-to-end admit→reply latencies into its own copy).
    /// Merged exactly across threads — see [`GenStats::merge`].
    pub latency: LatencyHistogram,
    /// Requests shed with an immediate `OVERLOADED` reply because the
    /// admission queue was full. Counted by the network frontend.
    pub shed_overload: usize,
    /// Requests shed with `DEADLINE_EXCEEDED` because their deadline had
    /// already passed at dequeue or at epoch-pin time.
    pub shed_deadline: usize,
    /// Requests shed with `SHUTTING_DOWN` during graceful drain.
    pub shed_shutdown: usize,
    /// Frames rejected as malformed (bad length, unknown verb, garbage) —
    /// each also poisons exactly the connection that sent it.
    pub rejected_malformed: usize,
    /// Connections dropped by slow-client protection: a read or write on
    /// the socket exceeded its timeout mid-frame.
    pub io_timeouts: usize,
    /// **High-water mark** (max-merged, not summed): the deepest the
    /// admission queue ever got.
    pub queue_depth_high_water: usize,
    /// **High-water mark** (max-merged, not summed): the largest number of
    /// worker threads that actually ran concurrently — the *effective*
    /// parallelism. [`crate::IpgServer::parse_many`] records the worker
    /// count it really used after clamping to the request count, so
    /// callers and benches can see configured vs actual parallelism; the
    /// network frontend records its worker-pool size.
    pub effective_workers: usize,
    /// Dense scanner byte rows built while publishing DFA snapshot states
    /// (mirrors the scanner's `DfaStats::dense_rows_built`; zero for
    /// servers without a scanner).
    pub dense_rows_built: usize,
    /// Characters scanned through the dense byte-row fast path (mirrors
    /// `DfaStats::dense_bytes`).
    pub dense_bytes: usize,
    /// Characters swallowed by the scanner's self-transition skip loop
    /// (mirrors `DfaStats::skip_loop_bytes`).
    pub skip_loop_bytes: usize,
    /// **High-water mark** (max-merged, not summed): the widest worker
    /// fan-out any parallel warm ([`crate::IpgSession::expand_all_parallel`])
    /// was asked for on this graph.
    pub warm_threads_used: usize,
    /// Frontier batches committed by (serial or parallel) full warms: one
    /// per batch-synchronous expansion round.
    pub warm_batches_published: usize,
    /// Document edits served incrementally (bounded re-lex + GSS resume
    /// from the damaged frontier).
    pub reparse_incremental: usize,
    /// Document edits that fell back to a full re-lex + re-parse (stale
    /// pinned epoch, or a session desynchronised by a scan error).
    pub reparse_full: usize,
    /// Lexer matches actually re-scanned by incremental edits (layout and
    /// tokens alike; retained and shifted matches are not counted).
    pub tokens_relexed: usize,
    /// GSS nodes re-created by incremental re-parses — the re-run portion
    /// of the graph (a cold parse would have built the whole graph).
    pub states_rerun: usize,
    /// **Gauge** (max-merged, not summed): modeled resident bytes of the
    /// derived parser state — node chunks, published snapshot chunks,
    /// grammar rule arena and DFA snapshot states — sampled from the
    /// per-chunk accounting at stats time. A registry overwrites this
    /// with its cross-tenant *deduplicated* total (shared chunks counted
    /// once).
    pub resident_bytes: usize,
    /// **High-water mark** (max-merged): the largest `resident_bytes`
    /// observed at any sampling point (every stats read, and every
    /// registry budget-enforcement pass).
    pub resident_high_water: usize,
    /// Chunks of derived state (node chunks, snapshot chunks, DFA
    /// snapshot states) discarded by registry eviction / re-lazification.
    pub chunks_evicted: usize,
    /// Chunks rebuilt on demand by the lazy expander after the tenant
    /// holding them was evicted and then retouched.
    pub chunks_relazified: usize,
    /// **Gauge** (max-merged): tenants currently attached and not evicted
    /// in the owning [`crate::GrammarRegistry`]; zero outside a registry.
    pub tenants_active: usize,
    /// Parses cut off mid-flight because their wall-clock deadline expired
    /// (cooperative cancellation — the budget's `Deadline` axis), plus
    /// requests answered `CANCELLED` after an explicit client cancel.
    pub parses_cancelled: usize,
    /// Parses cut off mid-flight by a resource cap (step fuel, GSS-pool or
    /// forest-arena byte caps) — answered `RESOURCE_EXHAUSTED` on the wire.
    pub parses_exhausted: usize,
    /// Request contexts dropped instead of recycled: a budget-killed or
    /// panicking parse leaves its pools in an untrusted (possibly
    /// cap-sized) state, so the context is quarantined and the next
    /// checkout builds a fresh one (`ctx_fresh`).
    pub ctx_quarantined: usize,
    /// Worker-thread panics caught at the request boundary
    /// (`catch_unwind`): the request is answered `ERROR`, the context is
    /// quarantined, and the worker keeps serving.
    pub worker_panics: usize,
}

impl GenStats {
    /// Total number of item sets reclaimed by any garbage collector.
    pub fn total_collected(&self) -> usize {
        self.nodes_collected + self.nodes_swept
    }

    /// Total number of expansion operations (lazy + re-expansions).
    pub fn total_expansions(&self) -> usize {
        self.expansions + self.re_expansions
    }

    /// Total requests shed without parsing (overload + deadline + drain).
    pub fn total_shed(&self) -> usize {
        self.shed_overload + self.shed_deadline + self.shed_shutdown
    }

    /// Folds `other` into `self`, field-aware and **non-lossy**: plain
    /// counters are summed, the latency histogram is merged bucket-wise
    /// (exact for every quantile), and high-water fields
    /// (`queue_depth_high_water`, `effective_workers`, the histogram's
    /// max) take the maximum — summing them would fabricate depths and
    /// thread counts nobody ever observed. Every aggregation in the
    /// serving layer (per-thread map, the bounded map's overflow
    /// aggregate, [`crate::ServerStats`] totals) goes through this one
    /// function, so the overflow path cannot silently diverge from the
    /// tracked path.
    pub fn merge(&mut self, other: &GenStats) {
        let GenStats {
            nodes_created,
            expansions,
            re_expansions,
            closures,
            action_calls,
            goto_calls,
            modifications,
            invalidations,
            nodes_collected,
            nodes_swept,
            sweeps,
            rows_built,
            parses,
            epochs_published,
            epochs_retired,
            epochs_reclaimed,
            chunks_cowed,
            dfa_states_carried,
            ctx_reused,
            ctx_fresh,
            latency,
            shed_overload,
            shed_deadline,
            shed_shutdown,
            rejected_malformed,
            io_timeouts,
            queue_depth_high_water,
            effective_workers,
            dense_rows_built,
            dense_bytes,
            skip_loop_bytes,
            warm_threads_used,
            warm_batches_published,
            reparse_incremental,
            reparse_full,
            tokens_relexed,
            states_rerun,
            resident_bytes,
            resident_high_water,
            chunks_evicted,
            chunks_relazified,
            tenants_active,
            parses_cancelled,
            parses_exhausted,
            ctx_quarantined,
            worker_panics,
        } = other;
        self.nodes_created += nodes_created;
        self.expansions += expansions;
        self.re_expansions += re_expansions;
        self.closures += closures;
        self.action_calls += action_calls;
        self.goto_calls += goto_calls;
        self.modifications += modifications;
        self.invalidations += invalidations;
        self.nodes_collected += nodes_collected;
        self.nodes_swept += nodes_swept;
        self.sweeps += sweeps;
        self.rows_built += rows_built;
        self.parses += parses;
        self.epochs_published += epochs_published;
        self.epochs_retired += epochs_retired;
        self.epochs_reclaimed += epochs_reclaimed;
        self.chunks_cowed += chunks_cowed;
        self.dfa_states_carried += dfa_states_carried;
        self.ctx_reused += ctx_reused;
        self.ctx_fresh += ctx_fresh;
        self.latency.merge(latency);
        self.shed_overload += shed_overload;
        self.shed_deadline += shed_deadline;
        self.shed_shutdown += shed_shutdown;
        self.rejected_malformed += rejected_malformed;
        self.io_timeouts += io_timeouts;
        self.queue_depth_high_water = self.queue_depth_high_water.max(*queue_depth_high_water);
        self.effective_workers = self.effective_workers.max(*effective_workers);
        self.dense_rows_built += dense_rows_built;
        self.dense_bytes += dense_bytes;
        self.skip_loop_bytes += skip_loop_bytes;
        self.warm_threads_used = self.warm_threads_used.max(*warm_threads_used);
        self.warm_batches_published += warm_batches_published;
        self.reparse_incremental += reparse_incremental;
        self.reparse_full += reparse_full;
        self.tokens_relexed += tokens_relexed;
        self.states_rerun += states_rerun;
        // Residency gauges are point-in-time samples of (possibly shared)
        // state: summing per-thread copies would double-count chunks, so
        // merging keeps the largest sample.
        self.resident_bytes = self.resident_bytes.max(*resident_bytes);
        self.resident_high_water = self.resident_high_water.max(*resident_high_water);
        self.chunks_evicted += chunks_evicted;
        self.chunks_relazified += chunks_relazified;
        self.tenants_active = self.tenants_active.max(*tenants_active);
        self.parses_cancelled += parses_cancelled;
        self.parses_exhausted += parses_exhausted;
        self.ctx_quarantined += ctx_quarantined;
        self.worker_panics += worker_panics;
    }
}

impl fmt::Display for GenStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "item sets created:    {}", self.nodes_created)?;
        writeln!(f, "expansions:           {}", self.expansions)?;
        writeln!(f, "re-expansions:        {}", self.re_expansions)?;
        writeln!(f, "ACTION calls:         {}", self.action_calls)?;
        writeln!(f, "GOTO calls:           {}", self.goto_calls)?;
        writeln!(f, "grammar modifications:{}", self.modifications)?;
        writeln!(f, "item sets invalidated:{}", self.invalidations)?;
        writeln!(f, "collected (refcount): {}", self.nodes_collected)?;
        writeln!(f, "collected (sweep):    {}", self.nodes_swept)?;
        writeln!(f, "action rows built:    {}", self.rows_built)?;
        if self.parses > 0 {
            writeln!(f, "parses served:        {}", self.parses)?;
        }
        if self.epochs_published > 0 {
            writeln!(f, "epochs published:     {}", self.epochs_published)?;
            writeln!(f, "epochs retired:       {}", self.epochs_retired)?;
            writeln!(f, "epochs reclaimed:     {}", self.epochs_reclaimed)?;
        }
        if self.chunks_cowed > 0 {
            writeln!(f, "chunks copied (COW):  {}", self.chunks_cowed)?;
        }
        if self.dfa_states_carried > 0 {
            writeln!(f, "DFA states carried:   {}", self.dfa_states_carried)?;
        }
        if self.ctx_reused + self.ctx_fresh > 0 {
            writeln!(f, "contexts recycled:    {}", self.ctx_reused)?;
            writeln!(f, "contexts built:       {}", self.ctx_fresh)?;
        }
        if self.latency.count() > 0 {
            let (p50, p99, p999) = self.latency.percentiles_us();
            writeln!(
                f,
                "latency (µs):         p50 {p50}, p99 {p99}, p999 {p999}, max {}",
                self.latency.max_us()
            )?;
        }
        if self.total_shed() > 0 {
            writeln!(f, "shed (overloaded):    {}", self.shed_overload)?;
            writeln!(f, "shed (deadline):      {}", self.shed_deadline)?;
            writeln!(f, "shed (shutting down): {}", self.shed_shutdown)?;
        }
        if self.rejected_malformed > 0 {
            writeln!(f, "malformed frames:     {}", self.rejected_malformed)?;
        }
        if self.io_timeouts > 0 {
            writeln!(f, "slow-client timeouts: {}", self.io_timeouts)?;
        }
        if self.queue_depth_high_water > 0 {
            writeln!(f, "queue depth (max):    {}", self.queue_depth_high_water)?;
        }
        if self.effective_workers > 0 {
            writeln!(f, "effective workers:    {}", self.effective_workers)?;
        }
        if self.dense_rows_built > 0 {
            writeln!(f, "dense rows built:     {}", self.dense_rows_built)?;
        }
        if self.dense_bytes + self.skip_loop_bytes > 0 {
            writeln!(f, "dense bytes scanned:  {}", self.dense_bytes)?;
            writeln!(f, "skip-loop bytes:      {}", self.skip_loop_bytes)?;
        }
        if self.warm_threads_used > 0 {
            writeln!(f, "warm threads used:    {}", self.warm_threads_used)?;
        }
        if self.warm_batches_published > 0 {
            writeln!(f, "warm batches:         {}", self.warm_batches_published)?;
        }
        if self.reparse_incremental + self.reparse_full > 0 {
            writeln!(f, "reparse incremental:  {}", self.reparse_incremental)?;
            writeln!(f, "reparse full:         {}", self.reparse_full)?;
            writeln!(f, "tokens re-lexed:      {}", self.tokens_relexed)?;
            writeln!(f, "GSS states re-run:    {}", self.states_rerun)?;
        }
        if self.resident_bytes > 0 {
            writeln!(f, "resident bytes:       {}", self.resident_bytes)?;
            writeln!(f, "resident high water:  {}", self.resident_high_water)?;
        }
        if self.chunks_evicted + self.chunks_relazified > 0 {
            writeln!(f, "chunks evicted:       {}", self.chunks_evicted)?;
            writeln!(f, "chunks re-lazified:   {}", self.chunks_relazified)?;
        }
        if self.parses_cancelled + self.parses_exhausted > 0 {
            writeln!(f, "parses cancelled:     {}", self.parses_cancelled)?;
            writeln!(f, "parses exhausted:     {}", self.parses_exhausted)?;
        }
        if self.ctx_quarantined + self.worker_panics > 0 {
            writeln!(f, "contexts quarantined: {}", self.ctx_quarantined)?;
            writeln!(f, "worker panics caught: {}", self.worker_panics)?;
        }
        if self.tenants_active > 0 {
            writeln!(f, "tenants active:       {}", self.tenants_active)?;
        }
        Ok(())
    }
}

/// A snapshot of the graph's size, used to measure how much of the full
/// parse table has been generated (the §5.2 coverage numbers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphSize {
    /// Live item sets of any kind.
    pub total: usize,
    /// Live item sets that are complete (expanded).
    pub complete: usize,
    /// Live item sets that are initial (never expanded, or invalidated
    /// without history).
    pub initial: usize,
    /// Live item sets that are dirty (invalidated, history retained).
    pub dirty: usize,
    /// Live transitions out of complete and dirty item sets.
    pub transitions: usize,
}

impl GraphSize {
    /// Fraction of live item sets that have actually been expanded.
    pub fn expanded_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.complete as f64 / self.total as f64
        }
    }

    /// Coverage of this (lazily generated) graph relative to the state
    /// count of a fully generated automaton: the paper's "only 60 percent
    /// of the parse table had to be generated".
    pub fn coverage_of(&self, full_states: usize) -> f64 {
        if full_states == 0 {
            0.0
        } else {
            self.complete as f64 / full_states as f64
        }
    }
}

impl fmt::Display for GraphSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} item sets ({} complete, {} initial, {} dirty), {} transitions",
            self.total, self.complete, self.initial, self.dirty, self.transitions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let stats = GenStats {
            nodes_collected: 3,
            nodes_swept: 2,
            expansions: 5,
            re_expansions: 4,
            ..Default::default()
        };
        assert_eq!(stats.total_collected(), 5);
        assert_eq!(stats.total_expansions(), 9);
        let text = stats.to_string();
        assert!(text.contains("re-expansions:        4"));
    }

    #[test]
    fn graph_size_fractions() {
        let size = GraphSize {
            total: 10,
            complete: 6,
            initial: 3,
            dirty: 1,
            transitions: 20,
        };
        assert!((size.expanded_fraction() - 0.6).abs() < 1e-9);
        assert!((size.coverage_of(12) - 0.5).abs() < 1e-9);
        assert!(size.to_string().contains("6 complete"));
    }

    #[test]
    fn empty_sizes_do_not_divide_by_zero() {
        let size = GraphSize::default();
        assert_eq!(size.expanded_fraction(), 0.0);
        assert_eq!(size.coverage_of(0), 0.0);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_bounded() {
        let mut last = 0;
        for us in 0..100_000u64 {
            let index = LatencyHistogram::bucket_index(us);
            assert!(index >= last, "bucket index regressed at {us} µs");
            assert!(index < HISTOGRAM_BUCKETS);
            // The bucket's floor never exceeds the value it holds.
            assert!(LatencyHistogram::bucket_floor(index) <= us);
            last = index;
        }
        // Absurd values saturate instead of indexing out of bounds.
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_err_low_by_at_most_a_bucket() {
        let mut h = LatencyHistogram::default();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max_us(), 1000);
        let (p50, p99, p999) = h.percentiles_us();
        // Quarter-octave buckets: the estimate is the bucket floor, so it
        // sits within 25 % below the true quantile.
        assert!((375..=500).contains(&p50), "p50 = {p50}");
        assert!((742..=990).contains(&p99), "p99 = {p99}");
        assert!((750..=1000).contains(&p999), "p999 = {p999}");
        assert!((h.mean_us() - 500.5).abs() < 1.0);
        assert_eq!(h.quantile_us(1.0), 1000);
        assert_eq!(LatencyHistogram::default().quantile_us(0.5), 0);
    }

    #[test]
    fn merge_sums_counters_but_maxes_high_water_fields() {
        let mut a = GenStats {
            parses: 3,
            action_calls: 10,
            shed_overload: 2,
            queue_depth_high_water: 7,
            effective_workers: 4,
            ..Default::default()
        };
        a.latency.record(Duration::from_micros(100));
        let mut b = GenStats {
            parses: 5,
            action_calls: 1,
            shed_deadline: 1,
            queue_depth_high_water: 3,
            effective_workers: 8,
            ..Default::default()
        };
        b.latency.record(Duration::from_micros(9_000));
        a.merge(&b);
        assert_eq!(a.parses, 8);
        assert_eq!(a.action_calls, 11);
        assert_eq!(a.shed_overload, 2);
        assert_eq!(a.shed_deadline, 1);
        assert_eq!(a.total_shed(), 3);
        // High-water marks are maxed, never summed: merging cannot
        // fabricate a queue depth or worker count nobody observed.
        assert_eq!(a.queue_depth_high_water, 7);
        assert_eq!(a.effective_workers, 8);
        // Histogram merge is exact: both samples, true global max.
        assert_eq!(a.latency.count(), 2);
        assert_eq!(a.latency.max_us(), 9_000);
        assert_eq!(a.latency.quantile_us(1.0), 9_000);
        let text = a.to_string();
        assert!(text.contains("effective workers:    8"));
        assert!(text.contains("queue depth (max):    7"));
        assert!(text.contains("shed (overloaded):    2"));
    }
}
