//! `IpgSession`: the user-facing facade of IPG.
//!
//! The paper's motivating scenario (§1) is an interactive language
//! definition environment: a syntax-directed editor holds a grammar that is
//! being edited, sentences are parsed against it continuously, and every
//! grammar change must be absorbed without a full regeneration of the
//! parser. `IpgSession` packages the grammar, the lazily generated item-set
//! graph, the parallel parser and the statistics into one object with that
//! workflow.
//!
//! ## Read/write split
//!
//! The session mirrors the shared-table design underneath it: every *parse*
//! method takes `&self` — parsing only reads the grammar and drives the
//! item-set graph's internally synchronised lazy expansion — while every
//! *modification* (`add_rule`, `remove_rule`, `collect_garbage`, …) takes
//! `&mut self`. Because of that, any number of threads can parse against
//! one session at the same time; to interleave modifications with parses,
//! wrap the session in [`crate::IpgServer`], which publishes each
//! modification as a fresh immutable *epoch* (parses pin the epoch they
//! started on and are never drained) and adds per-thread statistics
//! aggregation:
//!
//! ```
//! use ipg::IpgSession;
//!
//! let mut session = IpgSession::from_bnf(r#"
//!     B ::= "true" | "false" | B "or" B | B "and" B
//!     START ::= B
//! "#).unwrap();
//!
//! assert!(session.parse_sentence("true and true").unwrap().accepted);
//!
//! // The language designer adds a rule; the parser is updated, not rebuilt.
//! session.add_rule_text(r#"B ::= "unknown""#).unwrap();
//! assert!(session.parse_sentence("true or unknown").unwrap().accepted);
//! ```

use std::fmt;

use ipg_glr::{GssParseResult, GssParser, PoolGlrParser};
use ipg_grammar::{parse_bnf, BnfError, Grammar, GrammarError, RuleId, SymbolId};
use ipg_lr::{LrParser, ParseError, ParseTree, TraceStep};

use crate::graph::{GcPolicy, ItemSetGraph};
use crate::stats::{GenStats, GraphSize};
use crate::tables::LazyTables;

/// Errors returned by [`IpgSession`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// A sentence contained a name that is not a terminal of the grammar.
    UnknownToken(String),
    /// A rule given as text could not be parsed.
    Bnf(BnfError),
    /// A grammar-level error (e.g. deleting a rule that does not exist).
    Grammar(GrammarError),
    /// The deterministic parser could not be used (the grammar is not
    /// LR(0)-deterministic for this input); use [`IpgSession::parse`].
    NotDeterministic(ParseError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownToken(t) => write!(f, "unknown terminal `{t}`"),
            SessionError::Bnf(e) => write!(f, "cannot parse rule: {e}"),
            SessionError::Grammar(e) => write!(f, "grammar error: {e}"),
            SessionError::NotDeterministic(e) => {
                write!(f, "grammar is not deterministic here: {e}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<BnfError> for SessionError {
    fn from(e: BnfError) -> Self {
        SessionError::Bnf(e)
    }
}

impl From<GrammarError> for SessionError {
    fn from(e: GrammarError) -> Self {
        SessionError::Grammar(e)
    }
}

/// An interactive lazy/incremental parsing session.
///
/// `Clone` forks the session **structurally shared**: grammar and item-set
/// graph are persistent stores, so the fork clones O(#chunks) `Arc`s and
/// the two sides copy-on-write only what they subsequently modify —
/// modifications to one side never touch the other, and an edit costs
/// what it invalidates, not what the session has accumulated.
/// [`crate::IpgServer`] uses exactly this to build each successor epoch —
/// `MODIFY` runs on a private fork while parses keep reading the original,
/// and the fork's publication latency stays flat as the grammar grows.
#[derive(Clone, Debug)]
pub struct IpgSession {
    grammar: Grammar,
    graph: ItemSetGraph,
}

impl IpgSession {
    /// Creates a session for an existing grammar with the default
    /// (reference-counting) garbage-collection policy.
    pub fn new(grammar: Grammar) -> Self {
        Self::with_policy(grammar, GcPolicy::default())
    }

    /// Creates a session with an explicit garbage-collection policy.
    pub fn with_policy(grammar: Grammar, gc: GcPolicy) -> Self {
        let graph = ItemSetGraph::with_policy(&grammar, gc);
        IpgSession { grammar, graph }
    }

    /// Creates a session from the textual BNF notation of `ipg-grammar`.
    pub fn from_bnf(text: &str) -> Result<Self, SessionError> {
        Ok(Self::new(parse_bnf(text)?))
    }

    /// The current grammar (read-only; modifications must go through the
    /// session so the item-set graph stays consistent).
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The item-set graph generated so far.
    pub fn graph(&self) -> &ItemSetGraph {
        &self.graph
    }

    /// A snapshot of the generator work counters. The residency gauge
    /// covers the session's stores: the item-set graph's node chunks and
    /// published snapshot plus the grammar's rule arena.
    pub fn stats(&self) -> GenStats {
        let mut stats = self.graph.stats();
        stats.resident_bytes += self.grammar.arena_bytes();
        stats.resident_high_water = stats.resident_high_water.max(stats.resident_bytes);
        stats
    }

    /// Modeled resident bytes of this session's stores (see
    /// [`crate::graph::ItemSetGraph::resident_bytes`] for the byte model):
    /// node chunks + published snapshot + rule arena.
    pub fn resident_bytes(&self) -> usize {
        self.graph.resident_bytes() + self.grammar.arena_bytes()
    }

    /// Pointer-keyed accounting rows `(Arc pointer as usize, modeled
    /// bytes)` over every chunk this session holds alive: node chunks,
    /// published snapshot chunks, and rule-arena chunks. Sessions forked
    /// from a common base share chunks by `Arc`, so a registry summing
    /// residency across tenants dedupes these rows by pointer identity and
    /// counts each shared chunk once.
    pub fn chunk_accounting(&self) -> Vec<(usize, usize)> {
        let mut rows = self.graph.chunk_accounting();
        rows.extend(self.grammar.arena_accounting());
        rows
    }

    /// Current size of the item-set graph.
    pub fn graph_size(&self) -> GraphSize {
        self.graph.size()
    }

    /// Interns (or looks up) a terminal symbol.
    pub fn terminal(&mut self, name: &str) -> SymbolId {
        let id = self.grammar.terminal(name);
        self.graph.acknowledge_non_structural_change(&self.grammar);
        id
    }

    /// Interns (or looks up) a non-terminal symbol.
    pub fn nonterminal(&mut self, name: &str) -> SymbolId {
        let id = self.grammar.nonterminal(name);
        self.graph.acknowledge_non_structural_change(&self.grammar);
        id
    }

    /// Adds a rule (the paper's `ADD-RULE`) and incrementally updates the
    /// item-set graph.
    pub fn add_rule(&mut self, lhs: SymbolId, rhs: Vec<SymbolId>) -> RuleId {
        self.graph.add_rule(&mut self.grammar, lhs, rhs)
    }

    /// Deletes a rule (the paper's `DELETE-RULE`) and incrementally updates
    /// the item-set graph.
    pub fn remove_rule(&mut self, lhs: SymbolId, rhs: &[SymbolId]) -> Result<RuleId, SessionError> {
        Ok(self.graph.remove_rule(&mut self.grammar, lhs, rhs)?)
    }

    /// Adds a rule written in the textual BNF notation, e.g.
    /// `B ::= "unknown"` or `E ::= E "+" T`. Alternatives (`|`) add several
    /// rules; the last added rule's id is returned.
    pub fn add_rule_text(&mut self, text: &str) -> Result<RuleId, SessionError> {
        let rules = self.rules_from_text(text)?;
        let mut last = None;
        for (lhs, rhs) in rules {
            last = Some(self.add_rule(lhs, rhs));
        }
        last.ok_or_else(|| {
            SessionError::Bnf(BnfError {
                line: 1,
                message: "no rule found in text".to_owned(),
            })
        })
    }

    /// Deletes a rule written in the textual BNF notation.
    pub fn remove_rule_text(&mut self, text: &str) -> Result<RuleId, SessionError> {
        let rules = self.rules_from_text(text)?;
        let mut last = None;
        for (lhs, rhs) in rules {
            last = Some(self.remove_rule(lhs, &rhs)?);
        }
        last.ok_or_else(|| {
            SessionError::Bnf(BnfError {
                line: 1,
                message: "no rule found in text".to_owned(),
            })
        })
    }

    /// Parses rule text against *this* session's symbol table. Existing
    /// symbols keep their kind; new bare identifiers on the right-hand side
    /// become terminals unless they are defined as a left-hand side in the
    /// same text.
    fn rules_from_text(&mut self, text: &str) -> Result<Vec<(SymbolId, Vec<SymbolId>)>, SessionError> {
        // Parse the text into a scratch grammar to reuse the BNF parser,
        // then re-intern the symbols into the session grammar by name.
        let scratch = parse_bnf(text)?;
        let mut out = Vec::new();
        for rule in scratch.rules() {
            if rule.lhs == scratch.start_symbol() {
                // START rules in fragments are allowed and mapped onto the
                // session's START symbol.
            }
            let lhs_name = scratch.name(rule.lhs).to_owned();
            let lhs = if lhs_name == ipg_grammar::START_NAME {
                self.grammar.start_symbol()
            } else {
                self.nonterminal(&lhs_name)
            };
            let mut rhs = Vec::with_capacity(rule.rhs.len());
            for &s in &rule.rhs {
                let name = scratch.name(s).to_owned();
                let id = match self.grammar.symbol(&name) {
                    Some(existing) => existing,
                    None => {
                        if scratch.is_nonterminal(s) {
                            self.nonterminal(&name)
                        } else {
                            self.terminal(&name)
                        }
                    }
                };
                rhs.push(id);
            }
            out.push((lhs, rhs));
        }
        Ok(out)
    }

    /// Converts a whitespace-separated sentence of terminal names into
    /// symbol ids.
    pub fn tokens(&self, sentence: &str) -> Result<Vec<SymbolId>, SessionError> {
        let mut out = Vec::new();
        self.tokens_into(sentence, &mut out)?;
        Ok(out)
    }

    /// Like [`IpgSession::tokens`], filling a caller-owned reusable buffer
    /// (cleared first) instead of allocating a vector — the form the
    /// serving layer's recycled request contexts use.
    pub fn tokens_into(
        &self,
        sentence: &str,
        out: &mut Vec<SymbolId>,
    ) -> Result<(), SessionError> {
        out.clear();
        for name in sentence.split_whitespace() {
            let symbol = self
                .grammar
                .symbol(name)
                .filter(|&s| self.grammar.is_terminal(s))
                .ok_or_else(|| SessionError::UnknownToken(name.to_owned()))?;
            out.push(symbol);
        }
        Ok(())
    }

    /// A read-path handle on the lazy tables of this session — the same
    /// handle the parse methods use internally. The session keeps grammar
    /// and graph in sync, so construction cannot fail.
    pub fn tables(&self) -> LazyTables<'_> {
        LazyTables::new(&self.grammar, &self.graph)
            .expect("the session keeps grammar and graph in sync")
    }

    /// Parses a token sentence with the parallel (GSS) parser over the lazy
    /// tables, returning the full result (acceptance, forest, statistics).
    ///
    /// Takes `&self`: parsing is a shared read (lazy expansion serializes
    /// internally), so threads may parse one session concurrently.
    pub fn parse(&self, tokens: &[SymbolId]) -> GssParseResult {
        let parser = GssParser::new(&self.grammar);
        parser.parse(&self.tables(), tokens)
    }

    /// Parses a token sentence in a reusable [`ipg_glr::ParseCtx`]: the
    /// forest lands in the context's arena and all driver scratch is
    /// recycled — the allocation-free form of [`IpgSession::parse`] for
    /// callers managing their own contexts (the serving layer pools them
    /// per worker thread).
    pub fn parse_in(
        &self,
        ctx: &mut ipg_glr::ParseCtx,
        tokens: &[SymbolId],
    ) -> ipg_glr::ParseOutcome {
        GssParser::new(&self.grammar).parse_into(ctx, &self.tables(), tokens)
    }

    /// Recognises a token sentence in a reusable context (no forest).
    pub fn recognize_in(
        &self,
        ctx: &mut ipg_glr::ParseCtx,
        tokens: &[SymbolId],
    ) -> ipg_glr::ParseOutcome {
        GssParser::new(&self.grammar).recognize_into(ctx, &self.tables(), tokens)
    }

    /// Convenience: [`IpgSession::parse`] on a whitespace-separated
    /// sentence of terminal names.
    pub fn parse_sentence(&self, sentence: &str) -> Result<GssParseResult, SessionError> {
        let tokens = self.tokens(sentence)?;
        Ok(self.parse(&tokens))
    }

    /// Recognises a token sentence (no forest construction).
    pub fn recognize(&self, tokens: &[SymbolId]) -> bool {
        let parser = GssParser::new(&self.grammar);
        parser.recognize(&self.tables(), tokens)
    }

    /// Recognises a sentence with the paper-faithful parser-pool algorithm
    /// instead of the graph-structured stack (used by the ablation
    /// benches; the result is the same).
    pub fn recognize_with_pool(&self, tokens: &[SymbolId]) -> bool {
        let parser = PoolGlrParser::new(&self.grammar);
        parser
            .recognize(&self.tables(), tokens)
            .expect("pool parser diverged on a non-cyclic grammar")
    }

    /// Parses deterministically (plain `LR-PARSE`), returning a single
    /// parse tree. Fails with [`SessionError::NotDeterministic`] if the
    /// lazily generated LR(0) table has a conflict on this input.
    pub fn parse_deterministic(&self, tokens: &[SymbolId]) -> Result<ParseTree, SessionError> {
        let parser = LrParser::new(&self.grammar);
        parser
            .parse(&self.tables(), tokens)
            .map_err(SessionError::NotDeterministic)
    }

    /// Like [`IpgSession::parse_deterministic`], recording the parser's
    /// moves (Fig. 4.2).
    pub fn parse_deterministic_with_trace(
        &self,
        tokens: &[SymbolId],
        trace: &mut Vec<TraceStep>,
    ) -> Result<ParseTree, SessionError> {
        let parser = LrParser::new(&self.grammar);
        parser
            .parse_with_trace(&self.tables(), tokens, trace)
            .map_err(SessionError::NotDeterministic)
    }

    /// Forces full expansion of the item-set graph (turning IPG into PG);
    /// useful for measurements and for warming a served table.
    pub fn expand_all(&self) {
        self.expand_all_parallel(1);
    }

    /// [`IpgSession::expand_all`] with the expansion frontier and the row
    /// building/publication fanned out over `threads` worker threads. The
    /// result is identical to the serial warm (same state ids, same rows,
    /// same kernel index — see
    /// [`crate::graph::ItemSetGraph::expand_all_parallel`]); only the
    /// wall-clock changes.
    pub fn expand_all_parallel(&self, threads: usize) {
        self.graph.expand_all_parallel(&self.grammar, threads);
        self.graph.publish_all_rows_parallel(&self.grammar, threads);
    }

    /// Runs a mark-and-sweep collection over the item-set graph.
    pub fn collect_garbage(&mut self) {
        self.graph.mark_and_sweep(&self.grammar);
    }

    /// Forces this session to own every piece of its (normally
    /// structurally shared) storage, copying whatever is still shared
    /// with other forks — the cost profile of a *deep* fork. Exists so
    /// the `publish-scaling` benchmark can compare persistent against
    /// deep-fork epoch publication; serving code never needs it.
    pub fn unshare_all(&mut self) {
        self.grammar.unshare();
        self.graph.unshare_all();
    }

    /// Fraction of the *full* LR(0) parse table that has been generated so
    /// far: the measurement behind the paper's "only 60 percent of the
    /// parse table had to be generated" (§5.2). This builds the full
    /// automaton for comparison, so it is intended for reporting, not for
    /// hot paths.
    pub fn coverage(&self) -> f64 {
        let full = ipg_lr::Lr0Automaton::build(&self.grammar).num_states();
        self.graph.size().coverage_of(full)
    }

    /// Renders the current item-set graph.
    pub fn render_graph(&self) -> String {
        self.graph.render(&self.grammar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;

    fn boolean_session() -> IpgSession {
        IpgSession::new(fixtures::booleans())
    }

    #[test]
    fn parse_accepts_and_rejects() {
        let s = boolean_session();
        assert!(s.parse_sentence("true or false").unwrap().accepted);
        assert!(!s.parse_sentence("true or").unwrap().accepted);
        assert!(matches!(
            s.parse_sentence("true xor false"),
            Err(SessionError::UnknownToken(t)) if t == "xor"
        ));
    }

    #[test]
    fn lazy_generation_is_observable_through_stats() {
        let s = boolean_session();
        assert_eq!(s.graph_size().complete, 0);
        s.parse_sentence("true and true").unwrap();
        let after_first = s.graph_size().complete;
        assert!(after_first > 0);
        assert!(s.coverage() > 0.0 && s.coverage() < 1.0);
        // Parsing a sentence with `or`/`false` expands more of the table.
        s.parse_sentence("false or true").unwrap();
        assert!(s.graph_size().complete > after_first);
    }

    #[test]
    fn add_rule_text_and_parse_new_syntax() {
        let mut s = boolean_session();
        s.parse_sentence("true").unwrap();
        let rule = s.add_rule_text(r#"B ::= "unknown""#).unwrap();
        assert!(s.grammar().is_active(rule));
        assert!(s.parse_sentence("unknown and false").unwrap().accepted);
        assert_eq!(s.stats().modifications, 1);
        assert!(s.stats().invalidations > 0);
    }

    #[test]
    fn remove_rule_text_rejects_old_syntax() {
        let mut s = boolean_session();
        assert!(s.parse_sentence("true and true").unwrap().accepted);
        s.remove_rule_text(r#"B ::= B "and" B"#).unwrap();
        assert!(!s.parse_sentence("true and true").unwrap().accepted);
        assert!(s.parse_sentence("true or true").unwrap().accepted);
        // Removing it again is an error.
        assert!(matches!(
            s.remove_rule_text(r#"B ::= B "and" B"#),
            Err(SessionError::Grammar(_))
        ));
    }

    #[test]
    fn deterministic_parse_and_trace() {
        let s = IpgSession::new(fixtures::arithmetic());
        let tokens = s.tokens("id + num").unwrap();
        let tree = s.parse_deterministic(&tokens).unwrap();
        assert_eq!(tree.leaf_count(), 3);
        let mut trace = Vec::new();
        let tree2 = s.parse_deterministic_with_trace(&tokens, &mut trace).unwrap();
        assert_eq!(tree, tree2);
        assert!(!trace.is_empty());
    }

    #[test]
    fn deterministic_parse_reports_conflicts() {
        let s = boolean_session();
        let tokens = s.tokens("true or true or true").unwrap();
        assert!(matches!(
            s.parse_deterministic(&tokens),
            Err(SessionError::NotDeterministic(_))
        ));
    }

    #[test]
    fn pool_and_gss_agree_in_the_session() {
        let s = boolean_session();
        let tokens = s.tokens("true or false and true").unwrap();
        assert_eq!(s.recognize(&tokens), s.recognize_with_pool(&tokens));
        let bad = s.tokens("or or").unwrap();
        assert_eq!(s.recognize(&bad), s.recognize_with_pool(&bad));
    }

    #[test]
    fn ambiguous_sentences_report_all_parses() {
        let s = boolean_session();
        let result = s.parse_sentence("true or true or true").unwrap();
        assert!(result.accepted);
        assert_eq!(result.forest.tree_count(100), 2);
    }

    #[test]
    fn expand_all_reaches_full_coverage() {
        let s = boolean_session();
        s.expand_all();
        assert!((s.coverage() - 1.0).abs() < 1e-9);
        let text = s.render_graph();
        assert!(text.contains("complete"));
    }

    #[test]
    fn interleaved_edits_and_parses() {
        // A longer editing session: grow an expression language step by step.
        let mut s = IpgSession::from_bnf(
            r#"
            E ::= "id"
            START ::= E
            "#,
        )
        .unwrap();
        assert!(s.parse_sentence("id").unwrap().accepted);
        assert!(!s.parse_sentence("id id").unwrap().accepted);
        // `+` is not even a known token yet.
        assert!(matches!(
            s.parse_sentence("id + id"),
            Err(SessionError::UnknownToken(_))
        ));

        s.add_rule_text(r#"E ::= E "+" E"#).unwrap();
        assert!(s.parse_sentence("id + id").unwrap().accepted);

        s.add_rule_text(r#"E ::= E "*" E"#).unwrap();
        s.add_rule_text(r#"E ::= "(" E ")""#).unwrap();
        assert!(s.parse_sentence("( id + id ) * id").unwrap().accepted);

        s.remove_rule_text(r#"E ::= E "+" E"#).unwrap();
        assert!(!s.parse_sentence("id + id").unwrap().accepted);
        assert!(s.parse_sentence("id * ( id )").unwrap().accepted);
        assert_eq!(s.stats().modifications, 4);
        // Garbage collection keeps the graph bounded.
        s.collect_garbage();
        assert!(s.graph_size().total <= 40);
    }

    #[test]
    fn session_error_messages() {
        let e = SessionError::UnknownToken("zzz".to_owned());
        assert!(e.to_string().contains("zzz"));
        let b: SessionError = BnfError { line: 2, message: "bad".into() }.into();
        assert!(b.to_string().contains("line 2"));
    }

    #[test]
    fn add_rule_text_with_empty_input_is_an_error() {
        let mut s = boolean_session();
        assert!(matches!(
            s.add_rule_text("   \n  "),
            Err(SessionError::Bnf(_))
        ));
    }
}
