//! The lazy `ACTION` / `GOTO` functions of §5.1, packaged as an
//! implementation of `ipg_lr::ParserTables` so that the deterministic and
//! parallel parsers can be driven directly by the (partially generated)
//! item-set graph.
//!
//! `LazyTables` is the **read side** of the shared-table split: it borrows
//! the grammar and the graph immutably, so any number of handles (one per
//! parser thread) can serve queries against one graph at the same time.
//! When a query hits a state that is not materialised yet, the handle
//! funnels into the graph's serialized writer
//! ([`ItemSetGraph::ensure_state`]) — the explicit expansion entry point —
//! and then re-reads.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::Arc;

use ipg_grammar::{Grammar, SymbolId};
use ipg_lr::{ActionCell, ParserTables, StateId, TableExpansion};

use crate::graph::{ItemSetGraph, PublishedState, TableSnapshot};

/// Error returned by [`LazyTables::new`] when the item-set graph does not
/// correspond to the grammar it is asked to serve.
///
/// A graph goes stale when the grammar is modified behind its back instead
/// of through [`ItemSetGraph::add_rule`] / [`ItemSetGraph::remove_rule`].
/// In a server that shares one graph among many parsers this must be a
/// hard error on the construction path, not a debug-only assertion: a
/// stale graph would silently answer for the wrong language in release
/// builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaleGraphError {
    /// The version of the grammar the tables were asked to serve.
    pub grammar_version: u64,
    /// The grammar version the graph was last synchronised with.
    pub graph_version: u64,
}

impl fmt::Display for StaleGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "the item-set graph is out of sync with the grammar (grammar v{}, graph v{}); \
             use ItemSetGraph::add_rule/remove_rule for modifications",
            self.grammar_version, self.graph_version
        )
    }
}

impl std::error::Error for StaleGraphError {}

/// A borrow of the grammar plus the item-set graph that behaves like a
/// parse table. Constructing one is free; the table contents materialise
/// on demand as the parser asks for actions.
///
/// Handles are cheap and per-parser: each one carries its own query
/// counters (flushed into the graph-wide statistics when the handle is
/// dropped), so a multi-threaded server can aggregate per-thread
/// [`crate::GenStats`] without contending on shared counters per query.
///
/// ```
/// use ipg_grammar::fixtures;
/// use ipg_lr::{LrParser, tokenize_names};
/// use ipg::{ItemSetGraph, LazyTables};
///
/// let grammar = fixtures::arithmetic();
/// let graph = ItemSetGraph::new(&grammar);
/// let parser = LrParser::new(&grammar);
/// let tokens = tokenize_names(&grammar, "id + num").unwrap();
/// // No table generation phase: parsing starts immediately.
/// let tables = LazyTables::new(&grammar, &graph).unwrap();
/// assert!(parser.recognize(&tables, &tokens).unwrap());
/// assert!(graph.size().complete > 0); // parts of the table now exist
/// ```
#[derive(Debug)]
pub struct LazyTables<'a> {
    grammar: &'a Grammar,
    graph: &'a ItemSetGraph,
    eof: SymbolId,
    /// The pinned table snapshot (see `TableSnapshot` in the graph
    /// module): steady-state queries are plain array reads against this
    /// immutable, `Arc`-shared view — no locks, no atomics. The snapshot
    /// is chunked like the node store, so successor epochs share the
    /// chunks of untouched states; a pinned handle holds whole chunks
    /// alive, never copies them. A miss funnels into the graph's
    /// serialized writer and then refreshes the pin. Pinning is sound
    /// because `MODIFY`/GC take `&mut` on the graph and therefore cannot
    /// run while this (shared) borrow exists — the epoch serving layer
    /// preserves exactly this: modifications fork the graph (structurally
    /// shared, copy-on-write) and run on the private fork, never on a
    /// graph that handles are borrowing.
    snapshot: RefCell<Arc<TableSnapshot>>,
    action_calls: Cell<usize>,
    goto_calls: Cell<usize>,
}

impl<'a> LazyTables<'a> {
    /// Wraps the grammar and graph. The graph must have been created for
    /// (an earlier version of) the same grammar and kept in sync through
    /// [`ItemSetGraph::add_rule`] / [`ItemSetGraph::remove_rule`];
    /// otherwise a [`StaleGraphError`] is returned — in release builds
    /// too, since a stale shared graph must not silently serve the wrong
    /// language.
    pub fn new(grammar: &'a Grammar, graph: &'a ItemSetGraph) -> Result<Self, StaleGraphError> {
        let graph_version = graph.grammar_version();
        if grammar.version() != graph_version {
            return Err(StaleGraphError {
                grammar_version: grammar.version(),
                graph_version,
            });
        }
        Ok(LazyTables {
            grammar,
            graph,
            eof: grammar.eof_symbol(),
            snapshot: RefCell::new(graph.published_snapshot()),
            action_calls: Cell::new(0),
            goto_calls: Cell::new(0),
        })
    }

    /// The grammar the tables are generated from.
    pub fn grammar(&self) -> &Grammar {
        self.grammar
    }

    /// Read-only access to the underlying graph.
    pub fn graph(&self) -> &ItemSetGraph {
        self.graph
    }

    /// The `(ACTION, GOTO)` query counts served through this handle so
    /// far. Per-handle — i.e. per parser/thread — and flushed into
    /// [`ItemSetGraph::stats`] when the handle is dropped.
    pub fn query_counts(&self) -> (usize, usize) {
        (self.action_calls.get(), self.goto_calls.get())
    }
}

impl Drop for LazyTables<'_> {
    fn drop(&mut self) {
        self.graph
            .record_queries(self.action_calls.get(), self.goto_calls.get());
    }
}

#[inline]
fn fill_cell(out: &mut ActionCell, entry: &PublishedState, symbol: SymbolId, eof: SymbolId) {
    out.reductions.clear();
    out.reductions.extend_from_slice(&entry.reductions);
    out.shift = entry.row.target(symbol);
    out.accept = entry.accepting && symbol == eof;
}

impl ParserTables for LazyTables<'_> {
    fn start_state(&self) -> StateId {
        self.graph.start_state()
    }

    /// The lazy `ACTION` of §5.1: "when state is an initial set of items it
    /// must be expanded first", then the actions are read off the node.
    ///
    /// Steady-state path (published entry in the pinned snapshot): two
    /// array loads against immutable data and zero heap allocations — the
    /// shift target comes from the dense row and the (almost always tiny)
    /// reduce set is copied into the caller's reusable cell. No locks or
    /// atomics are touched. Only a miss takes the serialized writer
    /// ([`ItemSetGraph::ensure_state`]) and refreshes the pin.
    fn actions_into(&self, state: StateId, symbol: SymbolId, out: &mut ActionCell) {
        self.action_calls.set(self.action_calls.get() + 1);
        {
            let snapshot = self.snapshot.borrow();
            if let Some(entry) = snapshot.get(state) {
                fill_cell(out, entry, symbol, self.eof);
                return;
            }
        }
        loop {
            if !self.graph.ensure_state_checked(self.grammar, state) {
                // A stale id (out of range, or reclaimed by GC) reads as a
                // syntax-error cell instead of crashing the shared graph.
                out.clear();
                return;
            }
            let fresh = self.graph.published_snapshot();
            let found = fresh.get(state).is_some();
            *self.snapshot.borrow_mut() = fresh;
            if found {
                let snapshot = self.snapshot.borrow();
                let entry = snapshot.get(state).expect("entry just observed");
                fill_cell(out, entry, symbol, self.eof);
                return;
            }
        }
    }

    /// The `GOTO` of §4. Appendix A proves that `GOTO` is only ever called
    /// with complete item sets, so no expansion is performed — in debug
    /// *and* release builds alike. The debug assertion checks the
    /// invariant; a violating call reads as an error entry (`None`) instead
    /// of silently expanding the set. Only a missing published row takes
    /// the writer (to publish it) and refreshes the pin.
    fn goto(&self, state: StateId, symbol: SymbolId) -> Option<StateId> {
        self.goto_calls.set(self.goto_calls.get() + 1);
        {
            let snapshot = self.snapshot.borrow();
            if let Some(entry) = snapshot.get(state) {
                return entry.row.target(symbol);
            }
        }
        loop {
            if !self.graph.prepare_goto(self.grammar, state) {
                return None;
            }
            let fresh = self.graph.published_snapshot();
            let found = fresh.get(state).is_some();
            *self.snapshot.borrow_mut() = fresh;
            if found {
                let snapshot = self.snapshot.borrow();
                return snapshot
                    .get(state)
                    .expect("entry just observed")
                    .row
                    .target(symbol);
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "lazy IPG tables ({}, grammar v{})",
            self.graph.size(),
            self.grammar.version()
        )
    }

    /// The version tag of every parse served through this handle. The
    /// epoch serving layer checks it against the pinned epoch's version,
    /// so results can be matched to the exact table state that produced
    /// them even while writers publish newer epochs.
    fn grammar_version(&self) -> u64 {
        self.grammar.version()
    }
}

impl TableExpansion for LazyTables<'_> {
    /// The explicit expansion entry point: materialise one state (expand
    /// it and publish its dense row) through the graph's serialized
    /// writer.
    fn ensure_state(&self, state: StateId) {
        self.graph.ensure_state(self.grammar, state);
    }

    /// Fully materialises the table (lazy generation becomes eager
    /// generation): every reachable state is expanded and every row
    /// published. Used to warm a served table before taking traffic.
    fn warm(&self) {
        self.graph.expand_all(self.grammar);
        self.graph.publish_all_rows(self.grammar);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GcPolicy;
    use ipg_glr::{GssParser, PoolGlrParser};
    use ipg_grammar::fixtures;
    use ipg_lr::{tokenize_names, Action, Lr0Automaton, LrParser, ParseTable, ParserTables};

    #[test]
    fn lazy_actions_agree_with_eager_lr0_table() {
        let g = fixtures::booleans();
        let automaton = Lr0Automaton::build(&g);
        let eager = ParseTable::lr0(&automaton, &g);
        let graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let lazy = LazyTables::new(&g, &graph).unwrap();

        // Compare the action sets cell by cell: states are matched through
        // their kernels because numbering may differ.
        for state in automaton.states() {
            let lazy_id = lazy
                .graph()
                .live_nodes()
                .find(|n| n.kernel == state.kernel)
                .map(|n| n.id)
                .expect("kernel exists in the lazy graph");
            for terminal in g.symbols().terminals() {
                let a = eager.actions(state.id, terminal).to_vec();
                let b = lazy.actions(lazy_id, terminal).to_vec();
                // Shift targets use different numbering; compare shapes.
                let shape = |v: &[Action]| {
                    v.iter()
                        .map(|a| match a {
                            Action::Shift(_) => "s".to_owned(),
                            Action::Reduce(r) => format!("r{}", r.index()),
                            Action::Accept => "acc".to_owned(),
                        })
                        .collect::<std::collections::BTreeSet<_>>()
                };
                assert_eq!(shape(&a), shape(&b), "state {:?} symbol {:?}", state.id, terminal);
            }
        }
    }

    #[test]
    fn parsing_expands_only_what_is_needed() {
        // §5.2: sentences using only `and` and `true` never force the
        // `false`/`or` parts of the table to be generated.
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true and true").unwrap();
        {
            let tables = LazyTables::new(&g, &graph).unwrap();
            assert!(parser.recognize(&tables, &tokens));
        }
        let size = graph.size();
        let full = Lr0Automaton::build(&g).num_states();
        assert!(size.complete < full, "only part of the table was generated");
        assert!(size.complete >= 4);
        // A second parse of the same sentence does not expand anything new.
        let expansions_before = graph.stats().expansions;
        {
            let tables = LazyTables::new(&g, &graph).unwrap();
            assert!(parser.recognize(&tables, &tokens));
        }
        assert_eq!(graph.stats().expansions, expansions_before);
    }

    #[test]
    fn lazy_tables_work_with_all_three_parsers() {
        // The deterministic LR parser needs an LR(0) grammar; the parallel
        // parsers handle the (non-LR(0)) arithmetic grammar as well.
        let lists = fixtures::left_recursive_list();
        let list_tokens = tokenize_names(&lists, "x , x , x").unwrap();
        let graph = ItemSetGraph::new(&lists);
        let det = LrParser::new(&lists);
        assert!(det
            .recognize(&LazyTables::new(&lists, &graph).unwrap(), &list_tokens)
            .unwrap());

        let g = fixtures::arithmetic();
        let tokens = tokenize_names(&g, "id + num * id").unwrap();

        let graph = ItemSetGraph::new(&g);
        let pool = PoolGlrParser::new(&g);
        assert!(pool
            .recognize(&LazyTables::new(&g, &graph).unwrap(), &tokens)
            .unwrap());

        let graph = ItemSetGraph::new(&g);
        let gss = GssParser::new(&g);
        assert!(gss.recognize(&LazyTables::new(&g, &graph).unwrap(), &tokens));
    }

    #[test]
    fn action_and_goto_calls_are_counted_per_handle_and_flushed() {
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or false").unwrap();
        {
            let tables = LazyTables::new(&g, &graph).unwrap();
            parser.recognize(&tables, &tokens);
            let (actions, gotos) = tables.query_counts();
            assert!(actions > 0);
            assert!(gotos > 0);
            // Not yet flushed into the graph-wide statistics.
            assert_eq!(graph.stats().action_calls, 0);
        }
        // Dropping the handle flushed its counters.
        assert!(graph.stats().action_calls > 0);
        assert!(graph.stats().goto_calls > 0);
        let tables = LazyTables::new(&g, &graph).unwrap();
        assert!(tables.describe().contains("lazy IPG tables"));
        assert_eq!(tables.grammar().num_active_rules(), 5);
    }

    #[test]
    fn incremental_update_keeps_lazy_tables_consistent() {
        // Parse, modify the grammar (Fig. 6.1: add `B ::= unknown`), parse a
        // sentence using the new rule, and one using only old rules.
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::with_policy(&g, GcPolicy::RefCount);
        let tokens_old = tokenize_names(&g, "true or false").unwrap();
        {
            let parser = GssParser::new(&g);
            assert!(parser.recognize(&LazyTables::new(&g, &graph).unwrap(), &tokens_old));
        }
        let b = g.symbol("B").unwrap();
        let unknown = g.terminal("unknown");
        graph.add_rule(&mut g, b, vec![unknown]);
        let parser = GssParser::new(&g);
        let tokens_new = tokenize_names(&g, "unknown or true and unknown").unwrap();
        assert!(parser.recognize(&LazyTables::new(&g, &graph).unwrap(), &tokens_new));
        assert!(parser.recognize(&LazyTables::new(&g, &graph).unwrap(), &tokens_old));
        assert!(graph.stats().modifications == 1);
    }

    #[test]
    fn out_of_sync_grammar_is_a_hard_error() {
        let mut g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        let b = g.symbol("B").unwrap();
        let u = g.terminal("unknown");
        // Modifying the grammar behind the graph's back is detected in
        // debug *and* release builds: a stale shared graph must not serve.
        g.add_rule(b, vec![u]);
        let err = LazyTables::new(&g, &graph).unwrap_err();
        assert_eq!(err.grammar_version, g.version());
        assert_eq!(err.graph_version, graph.grammar_version());
        assert!(err.to_string().contains("out of sync"));
    }

    #[test]
    fn warm_materialises_the_full_table() {
        use ipg_lr::TableExpansion;
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        let tables = LazyTables::new(&g, &graph).unwrap();
        tables.warm();
        let full = Lr0Automaton::build(&g).num_states();
        assert_eq!(graph.size().complete, full);
        // Every row is published: a fresh handle serves purely from reads.
        let rows_before = graph.stats().rows_built;
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or false and true").unwrap();
        assert!(parser.recognize(&tables, &tokens));
        assert_eq!(graph.stats().rows_built, rows_before);
        // The explicit per-state entry point is idempotent.
        tables.ensure_state(graph.start_state());
    }
}
