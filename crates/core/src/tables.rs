//! The lazy `ACTION` / `GOTO` functions of §5.1, packaged as an
//! implementation of `ipg_lr::ParserTables` so that the deterministic and
//! parallel parsers can be driven directly by the (partially generated)
//! item-set graph.

use ipg_grammar::{Grammar, SymbolId};
use ipg_lr::{ActionsRef, ParserTables, StateId};

use crate::graph::{ItemSetGraph, ItemSetKind};

/// A borrow of the grammar plus the item-set graph that behaves like a
/// parse table. Constructing one is free; the table contents materialise
/// on demand as the parser asks for actions.
///
/// ```
/// use ipg_grammar::fixtures;
/// use ipg_lr::{LrParser, tokenize_names};
/// use ipg::{ItemSetGraph, LazyTables};
///
/// let grammar = fixtures::arithmetic();
/// let mut graph = ItemSetGraph::new(&grammar);
/// let parser = LrParser::new(&grammar);
/// let tokens = tokenize_names(&grammar, "id + num").unwrap();
/// // No table generation phase: parsing starts immediately.
/// let mut tables = LazyTables::new(&grammar, &mut graph);
/// assert!(parser.recognize(&mut tables, &tokens).unwrap());
/// assert!(graph.size().complete > 0); // parts of the table now exist
/// ```
#[derive(Debug)]
pub struct LazyTables<'a> {
    grammar: &'a Grammar,
    graph: &'a mut ItemSetGraph,
}

impl<'a> LazyTables<'a> {
    /// Wraps the grammar and graph. The graph must have been created for
    /// (an earlier version of) the same grammar and kept in sync through
    /// [`ItemSetGraph::add_rule`] / [`ItemSetGraph::remove_rule`].
    pub fn new(grammar: &'a Grammar, graph: &'a mut ItemSetGraph) -> Self {
        debug_assert_eq!(
            grammar.version(),
            graph.grammar_version(),
            "the item-set graph is out of sync with the grammar; \
             use ItemSetGraph::add_rule/remove_rule for modifications"
        );
        LazyTables { grammar, graph }
    }

    /// The grammar the tables are generated from.
    pub fn grammar(&self) -> &Grammar {
        self.grammar
    }

    /// Read-only access to the underlying graph.
    pub fn graph(&self) -> &ItemSetGraph {
        self.graph
    }
}

impl ParserTables for LazyTables<'_> {
    fn start_state(&self) -> StateId {
        self.graph.start_state()
    }

    /// The lazy `ACTION` of §5.1: "when state is an initial set of items it
    /// must be expanded first", then the actions are read off the node.
    ///
    /// Steady-state path (complete node, dense row built): two array loads
    /// and zero heap allocations — the returned [`ActionsRef`] borrows the
    /// node's reduction list and reads the shift target from the row.
    fn actions(&mut self, state: StateId, symbol: SymbolId) -> ActionsRef<'_> {
        self.graph.note_action_call();
        self.graph.ensure_expanded(self.grammar, state);
        self.graph.ensure_row(self.grammar, state);
        let node = self.graph.node(state);
        let row = node.row.as_ref().expect("row built by ensure_row");
        ActionsRef {
            reductions: &node.reductions,
            shift: row.target(symbol),
            accept: node.accepting && symbol == self.grammar.eof_symbol(),
        }
    }

    /// The `GOTO` of §4. Appendix A proves that `GOTO` is only ever called
    /// with complete item sets, so no expansion is performed — in debug
    /// *and* release builds alike. The debug assertion checks the
    /// invariant; a violating call reads as an error entry (`None`) instead
    /// of silently expanding the set.
    fn goto(&mut self, state: StateId, symbol: SymbolId) -> Option<StateId> {
        self.graph.note_goto_call();
        debug_assert_eq!(
            self.graph.node(state).kind,
            ItemSetKind::Complete,
            "Appendix A invariant violated: GOTO called on a non-complete item set"
        );
        if self.graph.node(state).kind != ItemSetKind::Complete {
            return None;
        }
        self.graph.ensure_row(self.grammar, state);
        self.graph
            .node(state)
            .row
            .as_ref()
            .expect("row built by ensure_row")
            .target(symbol)
    }

    fn describe(&self) -> String {
        format!(
            "lazy IPG tables ({}, grammar v{})",
            self.graph.size(),
            self.grammar.version()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GcPolicy;
    use ipg_glr::{GssParser, PoolGlrParser};
    use ipg_grammar::fixtures;
    use ipg_lr::{tokenize_names, Action, Lr0Automaton, LrParser, ParseTable, ParserTables};

    #[test]
    fn lazy_actions_agree_with_eager_lr0_table() {
        let g = fixtures::booleans();
        let automaton = Lr0Automaton::build(&g);
        let mut eager = ParseTable::lr0(&automaton, &g);
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let mut lazy = LazyTables::new(&g, &mut graph);

        // Compare the action sets cell by cell: states are matched through
        // their kernels because numbering may differ.
        for state in automaton.states() {
            let lazy_id = lazy
                .graph()
                .live_nodes()
                .find(|n| n.kernel == state.kernel)
                .map(|n| n.id)
                .expect("kernel exists in the lazy graph");
            for terminal in g.symbols().terminals() {
                let a = eager.actions(state.id, terminal).to_vec();
                let b = lazy.actions(lazy_id, terminal).to_vec();
                // Shift targets use different numbering; compare shapes.
                let shape = |v: &[Action]| {
                    v.iter()
                        .map(|a| match a {
                            Action::Shift(_) => "s".to_owned(),
                            Action::Reduce(r) => format!("r{}", r.index()),
                            Action::Accept => "acc".to_owned(),
                        })
                        .collect::<std::collections::BTreeSet<_>>()
                };
                assert_eq!(shape(&a), shape(&b), "state {:?} symbol {:?}", state.id, terminal);
            }
        }
    }

    #[test]
    fn parsing_expands_only_what_is_needed() {
        // §5.2: sentences using only `and` and `true` never force the
        // `false`/`or` parts of the table to be generated.
        let g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true and true").unwrap();
        {
            let mut tables = LazyTables::new(&g, &mut graph);
            assert!(parser.recognize(&mut tables, &tokens));
        }
        let size = graph.size();
        let full = Lr0Automaton::build(&g).num_states();
        assert!(size.complete < full, "only part of the table was generated");
        assert!(size.complete >= 4);
        // A second parse of the same sentence does not expand anything new.
        let expansions_before = graph.stats().expansions;
        {
            let mut tables = LazyTables::new(&g, &mut graph);
            assert!(parser.recognize(&mut tables, &tokens));
        }
        assert_eq!(graph.stats().expansions, expansions_before);
    }

    #[test]
    fn lazy_tables_work_with_all_three_parsers() {
        // The deterministic LR parser needs an LR(0) grammar; the parallel
        // parsers handle the (non-LR(0)) arithmetic grammar as well.
        let lists = fixtures::left_recursive_list();
        let list_tokens = tokenize_names(&lists, "x , x , x").unwrap();
        let mut graph = ItemSetGraph::new(&lists);
        let det = LrParser::new(&lists);
        assert!(det
            .recognize(&mut LazyTables::new(&lists, &mut graph), &list_tokens)
            .unwrap());

        let g = fixtures::arithmetic();
        let tokens = tokenize_names(&g, "id + num * id").unwrap();

        let mut graph = ItemSetGraph::new(&g);
        let pool = PoolGlrParser::new(&g);
        assert!(pool
            .recognize(&mut LazyTables::new(&g, &mut graph), &tokens)
            .unwrap());

        let mut graph = ItemSetGraph::new(&g);
        let gss = GssParser::new(&g);
        assert!(gss.recognize(&mut LazyTables::new(&g, &mut graph), &tokens));
    }

    #[test]
    fn action_and_goto_calls_are_counted() {
        let g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or false").unwrap();
        parser.recognize(&mut LazyTables::new(&g, &mut graph), &tokens);
        assert!(graph.stats().action_calls > 0);
        assert!(graph.stats().goto_calls > 0);
        let tables = LazyTables::new(&g, &mut graph);
        assert!(tables.describe().contains("lazy IPG tables"));
        assert_eq!(tables.grammar().num_active_rules(), 5);
    }

    #[test]
    fn incremental_update_keeps_lazy_tables_consistent() {
        // Parse, modify the grammar (Fig. 6.1: add `B ::= unknown`), parse a
        // sentence using the new rule, and one using only old rules.
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::with_policy(&g, GcPolicy::RefCount);
        let tokens_old = tokenize_names(&g, "true or false").unwrap();
        {
            let parser = GssParser::new(&g);
            assert!(parser.recognize(&mut LazyTables::new(&g, &mut graph), &tokens_old));
        }
        let b = g.symbol("B").unwrap();
        let unknown = g.terminal("unknown");
        graph.add_rule(&mut g, b, vec![unknown]);
        let parser = GssParser::new(&g);
        let tokens_new = tokenize_names(&g, "unknown or true and unknown").unwrap();
        assert!(parser.recognize(&mut LazyTables::new(&g, &mut graph), &tokens_new));
        assert!(parser.recognize(&mut LazyTables::new(&g, &mut graph), &tokens_old));
        assert!(graph.stats().modifications == 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of sync")]
    fn out_of_sync_grammar_is_detected() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        let b = g.symbol("B").unwrap();
        let u = g.terminal("unknown");
        // Modifying the grammar behind the graph's back is a programming
        // error caught by the debug assertion.
        g.add_rule(b, vec![u]);
        let _ = LazyTables::new(&g, &mut graph);
    }
}
