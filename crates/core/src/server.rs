//! `IpgServer`: the shared-table serving layer.
//!
//! The paper amortises table generation across parses (§5); this module
//! amortises it across *parsers*. One lazily generated item-set graph — and
//! optionally one lazily determinised scanner — serves parse requests from
//! any number of threads, while grammar modifications are applied between
//! (or under) load with the paper's `MODIFY` invalidation semantics (§6).
//!
//! ## Locking model
//!
//! The server wraps an [`IpgSession`] in one `RwLock`:
//!
//! * **parses share the read lock** — [`IpgSession`]'s parse methods take
//!   `&self`, and the item-set graph underneath synchronises its own lazy
//!   expansion (sharded reader locks on the steady path, one serialized
//!   writer for EXPAND), so N readers genuinely run in parallel;
//! * **modifications take the write lock** — `ADD-RULE`/`DELETE-RULE`
//!   drain the in-flight parses, apply the paper's invalidation, and
//!   release. Every parse therefore sees one consistent grammar version
//!   end to end, which is exactly the consistency the stress tests assert
//!   against a single-threaded oracle.
//!
//! ```
//! use ipg::IpgServer;
//!
//! let server = IpgServer::from_bnf(r#"
//!     B ::= "true" | "false" | B "or" B | B "and" B
//!     START ::= B
//! "#).unwrap();
//!
//! // Threads parse one shared, lazily generated graph...
//! std::thread::scope(|scope| {
//!     for _ in 0..4 {
//!         scope.spawn(|| {
//!             assert!(server.parse_sentence("true and true").unwrap().accepted);
//!         });
//!     }
//! });
//!
//! // ...and the language designer modifies the grammar under load.
//! server.add_rule_text(r#"B ::= "unknown""#).unwrap();
//! assert!(server.parse_sentence("true or unknown").unwrap().accepted);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, RwLock};
use std::thread;

use ipg_glr::{GssParseResult, GssParser};
use ipg_grammar::{RuleId, SymbolId};
use ipg_lexer::{ScanError, Scanner};

use crate::session::{IpgSession, SessionError};
use crate::stats::GenStats;
use crate::tables::LazyTables;

/// Errors returned by [`IpgServer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// An error from the underlying session (unknown token, BNF, grammar).
    Session(SessionError),
    /// An error from the shared scanner while lexing request text.
    Scan(ScanError),
    /// [`IpgServer::parse_text`] was called on a server without a scanner.
    NoScanner,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Session(e) => write!(f, "{e}"),
            ServerError::Scan(e) => write!(f, "scan error: {e}"),
            ServerError::NoScanner => write!(f, "this server was built without a scanner"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SessionError> for ServerError {
    fn from(e: SessionError) -> Self {
        ServerError::Session(e)
    }
}

impl From<ScanError> for ServerError {
    fn from(e: ScanError) -> Self {
        ServerError::Scan(e)
    }
}

/// Per-thread query statistics of one server, plus the graph-wide
/// generator counters — the aggregation [`IpgServer::stats`] reports.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// The shared graph's work counters (expansions, invalidations, GC,
    /// rows built, plus all flushed query counts).
    pub graph: GenStats,
    /// Parses served and `ACTION`/`GOTO` queries issued, per serving
    /// thread (keyed by a debug rendering of the thread id).
    pub per_thread: Vec<(String, GenStats)>,
}

impl ServerStats {
    /// Total parses served across all threads.
    pub fn total_parses(&self) -> usize {
        self.per_thread.iter().map(|(_, s)| s.parses).sum()
    }

    /// Total `ACTION` queries across all threads.
    pub fn total_action_calls(&self) -> usize {
        self.per_thread.iter().map(|(_, s)| s.action_calls).sum()
    }
}

/// A multi-reader serving layer over one [`IpgSession`].
///
/// `&IpgServer` is `Sync`: share it across threads (scoped threads, a
/// thread pool, an async runtime's blocking pool) and call the parse
/// methods freely. Modification methods serialize against all parses.
#[derive(Debug)]
pub struct IpgServer {
    state: RwLock<IpgSession>,
    /// Optional shared scanner for [`IpgServer::parse_text`]. Scanning
    /// takes `&self` (the lazy DFA synchronises internally); definition
    /// changes go through [`IpgServer::modify_scanner`]'s write lock.
    scanner: Option<RwLock<Scanner>>,
    /// Per-thread query counters, updated once per parse (not per query).
    /// Bounded: once `MAX_TRACKED_THREADS` distinct threads have been
    /// seen, further threads fold into one overflow aggregate, so a
    /// server driven from a churning thread pool cannot leak one entry
    /// per retired `ThreadId`.
    per_thread: Mutex<PerThreadStats>,
}

/// Cap on individually tracked serving threads (see `IpgServer::per_thread`).
const MAX_TRACKED_THREADS: usize = 64;

#[derive(Debug, Default)]
struct PerThreadStats {
    tracked: HashMap<thread::ThreadId, GenStats>,
    /// Aggregate of every thread beyond the tracking cap.
    overflow: GenStats,
}

impl IpgServer {
    /// Wraps a session for serving.
    pub fn new(session: IpgSession) -> Self {
        IpgServer {
            state: RwLock::new(session),
            scanner: None,
            per_thread: Mutex::new(PerThreadStats::default()),
        }
    }

    /// Creates a server from the textual BNF notation.
    pub fn from_bnf(text: &str) -> Result<Self, SessionError> {
        Ok(Self::new(IpgSession::from_bnf(text)?))
    }

    /// Attaches a shared scanner, enabling [`IpgServer::parse_text`].
    pub fn with_scanner(mut self, scanner: Scanner) -> Self {
        self.scanner = Some(RwLock::new(scanner));
        self
    }

    /// Runs `f` on a shared borrow of the session (a read lock: parses in
    /// other threads keep running).
    pub fn read<R>(&self, f: impl FnOnce(&IpgSession) -> R) -> R {
        f(&self.state.read().unwrap())
    }

    /// Runs `f` on an exclusive borrow of the session (the write lock:
    /// drains in-flight parses first). This is the `MODIFY` entry point
    /// for structural changes beyond the convenience methods below.
    pub fn modify<R>(&self, f: impl FnOnce(&mut IpgSession) -> R) -> R {
        f(&mut self.state.write().unwrap())
    }

    /// Runs `f` on an exclusive borrow of the shared scanner.
    pub fn modify_scanner<R>(&self, f: impl FnOnce(&mut Scanner) -> R) -> Result<R, ServerError> {
        match &self.scanner {
            Some(scanner) => Ok(f(&mut scanner.write().unwrap())),
            None => Err(ServerError::NoScanner),
        }
    }

    /// The grammar version currently being served.
    pub fn grammar_version(&self) -> u64 {
        self.read(|s| s.grammar().version())
    }

    /// Warms the shared table: fully expands the item-set graph and
    /// publishes every dense row, so subsequent parses are pure reads.
    pub fn warm(&self) {
        self.read(|s| s.expand_all());
    }

    /// Converts a whitespace-separated sentence of terminal names into
    /// symbol ids against the current grammar.
    pub fn tokens(&self, sentence: &str) -> Result<Vec<SymbolId>, SessionError> {
        self.read(|s| s.tokens(sentence))
    }

    /// The one serve path every parse method goes through: take the read
    /// lock, hand the session and a fresh lazy-tables handle to `f`, then
    /// record the handle's query counts against the calling thread. A
    /// request that fails before parsing (unknown token, scan error) still
    /// counts as a served request with zero queries.
    fn serve<R>(&self, f: impl FnOnce(&IpgSession, &LazyTables<'_>) -> R) -> R {
        let session = self.state.read().unwrap();
        let tables: LazyTables<'_> = session.tables();
        let result = f(&session, &tables);
        let (action_calls, goto_calls) = tables.query_counts();
        drop(tables);
        drop(session);
        self.note_parse(action_calls, goto_calls);
        result
    }

    /// Parses a token sentence against the shared graph. Concurrent with
    /// other parses; serialized against modifications.
    pub fn parse(&self, tokens: &[SymbolId]) -> GssParseResult {
        self.parse_versioned(tokens).1
    }

    /// Like [`IpgServer::parse`], also returning the grammar version the
    /// parse ran against — captured under the same read lock, so the pair
    /// is consistent even while a writer is applying modifications.
    pub fn parse_versioned(&self, tokens: &[SymbolId]) -> (u64, GssParseResult) {
        self.serve(|session, tables| {
            let version = session.grammar().version();
            (version, GssParser::new(session.grammar()).parse(tables, tokens))
        })
    }

    /// Recognises a token sentence (no forest construction).
    pub fn recognize(&self, tokens: &[SymbolId]) -> bool {
        self.serve(|session, tables| {
            GssParser::new(session.grammar()).recognize(tables, tokens)
        })
    }

    /// Convenience: [`IpgServer::parse`] on a whitespace-separated sentence
    /// of terminal names (tokenized and parsed under one read lock, so the
    /// sentence is interpreted by the same grammar version it is parsed
    /// with).
    pub fn parse_sentence(&self, sentence: &str) -> Result<GssParseResult, SessionError> {
        self.serve(|session, tables| {
            let tokens = session.tokens(sentence)?;
            Ok(GssParser::new(session.grammar()).parse(tables, &tokens))
        })
    }

    /// Lexes `input` with the shared scanner and parses the token stream —
    /// the full text-to-forest pipeline under one grammar read lock. The
    /// scanner's lazy DFA synchronises internally, so concurrent
    /// `parse_text` calls share its cache without blocking each other.
    pub fn parse_text(&self, input: &str) -> Result<GssParseResult, ServerError> {
        let scanner = self.scanner.as_ref().ok_or(ServerError::NoScanner)?;
        self.serve(|session, tables| {
            let tokens = scanner
                .read()
                .unwrap()
                .tokenize_for(session.grammar(), input)?;
            Ok(GssParser::new(session.grammar()).parse(tables, &tokens))
        })
    }

    /// Adds a rule written in the textual BNF notation — the paper's
    /// `ADD-RULE` under the write lock.
    pub fn add_rule_text(&self, text: &str) -> Result<RuleId, SessionError> {
        self.modify(|s| s.add_rule_text(text))
    }

    /// Deletes a rule written in the textual BNF notation — the paper's
    /// `DELETE-RULE` under the write lock.
    pub fn remove_rule_text(&self, text: &str) -> Result<RuleId, SessionError> {
        self.modify(|s| s.remove_rule_text(text))
    }

    /// Runs a mark-and-sweep collection over the shared graph (exclusive,
    /// like a modification).
    pub fn collect_garbage(&self) {
        self.modify(|s| s.collect_garbage());
    }

    /// Parses every request, fanned out over `threads` scoped worker
    /// threads (request `i` goes to worker `i % threads`). Results come
    /// back in request order. A convenience for benches, tests and batch
    /// callers; network frontends would call [`IpgServer::parse`] from
    /// their own threads instead.
    pub fn parse_many(&self, requests: &[Vec<SymbolId>], threads: usize) -> Vec<GssParseResult> {
        let threads = threads.max(1);
        let mut results: Vec<Option<GssParseResult>> = vec![None; requests.len()];
        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = t;
                    while i < requests.len() {
                        out.push((i, self.parse(&requests[i])));
                        i += threads;
                    }
                    out
                }));
            }
            for handle in handles {
                for (i, result) in handle.join().expect("worker thread panicked") {
                    results[i] = Some(result);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every request was served"))
            .collect()
    }

    /// The aggregated statistics: the shared graph's counters plus the
    /// per-thread query/parse counts.
    pub fn stats(&self) -> ServerStats {
        let graph = self.read(|s| s.stats());
        let per_thread = self.per_thread.lock().unwrap();
        let mut entries: Vec<(String, GenStats)> = per_thread
            .tracked
            .iter()
            .map(|(id, stats)| (format!("{id:?}"), *stats))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        if per_thread.overflow.parses > 0 {
            entries.push(("(untracked threads)".to_owned(), per_thread.overflow));
        }
        ServerStats {
            graph,
            per_thread: entries,
        }
    }

    fn note_parse(&self, action_calls: usize, goto_calls: usize) {
        let mut per_thread = self.per_thread.lock().unwrap();
        let id = thread::current().id();
        let entry = if per_thread.tracked.contains_key(&id)
            || per_thread.tracked.len() < MAX_TRACKED_THREADS
        {
            per_thread.tracked.entry(id).or_default()
        } else {
            &mut per_thread.overflow
        };
        entry.parses += 1;
        entry.action_calls += action_calls;
        entry.goto_calls += goto_calls;
    }
}

// The whole point of the serving layer: one server instance may be shared
// across threads.
#[allow(dead_code)]
fn _assert_server_is_sync() {
    fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<IpgServer>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;
    use ipg_lexer::simple_scanner;

    fn boolean_server() -> IpgServer {
        IpgServer::new(IpgSession::new(fixtures::booleans()))
    }

    #[test]
    fn serves_parses_from_many_threads() {
        let server = boolean_server();
        let sentences = ["true", "true and true", "false or true", "true or"];
        let expected = [true, true, true, false];
        thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for (sentence, expect) in sentences.iter().zip(expected) {
                        let result = server.parse_sentence(sentence).unwrap();
                        assert_eq!(result.accepted, expect, "`{sentence}`");
                    }
                });
            }
        });
        let stats = server.stats();
        assert_eq!(stats.total_parses(), 16);
        assert!(!stats.per_thread.is_empty());
        assert!(stats.total_action_calls() > 0);
        assert!(stats.graph.expansions > 0);
    }

    #[test]
    fn modification_under_load_keeps_every_parse_consistent() {
        let server = boolean_server();
        let base_version = server.grammar_version();
        thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let tokens = match server.tokens("unknown or true") {
                            Ok(tokens) => tokens,
                            // `unknown` not interned yet: pre-modification.
                            Err(_) => server.tokens("true or true").unwrap(),
                        };
                        // Whichever grammar version the parse ran against,
                        // the sentence was chosen to be in its language.
                        let (version, result) = server.parse_versioned(&tokens);
                        assert!(result.accepted, "grammar v{version}");
                    }
                });
            }
            scope.spawn(|| {
                server.add_rule_text(r#"B ::= "unknown""#).unwrap();
            });
        });
        assert!(server.grammar_version() > base_version);
        assert!(server.parse_sentence("unknown and false").unwrap().accepted);
    }

    #[test]
    fn parse_many_round_robins_and_preserves_order() {
        let server = boolean_server();
        server.warm();
        let requests: Vec<Vec<_>> = (0..17)
            .map(|i| {
                let sentence = if i % 3 == 0 { "true or false" } else { "true and" };
                server.tokens(sentence).unwrap()
            })
            .collect();
        let expansions_before = server.stats().graph.total_expansions();
        let results = server.parse_many(&requests, 4);
        assert_eq!(results.len(), 17);
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.accepted, i % 3 == 0, "request {i}");
        }
        // Warm table: serving did not expand anything new.
        assert_eq!(server.stats().graph.total_expansions(), expansions_before);
    }

    #[test]
    fn text_pipeline_with_shared_scanner() {
        let server = IpgServer::new(IpgSession::new(fixtures::booleans()))
            .with_scanner(simple_scanner(&["true", "false", "or", "and"]));
        thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    assert!(server.parse_text("true or false -- comment\n").unwrap().accepted);
                    assert!(!server.parse_text("true or").unwrap().accepted);
                });
            }
        });
        assert!(matches!(
            server.parse_text("true $ false"),
            Err(ServerError::Scan(_))
        ));
        let err = boolean_server().parse_text("true").unwrap_err();
        assert_eq!(err, ServerError::NoScanner);
        assert!(err.to_string().contains("scanner"));
    }

    #[test]
    fn scanner_modifications_take_the_write_path() {
        let server = IpgServer::new(IpgSession::new(fixtures::booleans()))
            .with_scanner(simple_scanner(&["true", "or"]));
        assert!(server.parse_text("true % true").is_err());
        server
            .modify_scanner(|s| s.add_definition(ipg_lexer::TokenDef::keyword("%")))
            .unwrap();
        // `%` now scans but is not a grammar terminal: an unknown-terminal
        // scan error, not an unexpected-character one.
        assert!(matches!(
            server.parse_text("true % true"),
            Err(ServerError::Scan(ScanError::UnknownTerminal { .. }))
        ));
        assert!(boolean_server().modify_scanner(|_| ()).is_err());
    }

    #[test]
    fn read_and_modify_expose_the_session() {
        let server = boolean_server();
        let rules = server.read(|s| s.grammar().num_active_rules());
        assert_eq!(rules, 5);
        server.modify(|s| {
            s.add_rule_text(r#"B ::= "maybe""#).unwrap();
        });
        assert_eq!(server.read(|s| s.grammar().num_active_rules()), 6);
        server.collect_garbage();
        assert!(matches!(
            server.remove_rule_text(r#"B ::= "never""#),
            Err(SessionError::UnknownToken(_)) | Err(SessionError::Grammar(_))
        ));
    }

    #[test]
    fn per_thread_tracking_is_bounded() {
        let server = boolean_server();
        server.warm();
        let tokens = server.tokens("true or false").unwrap();
        // Far more threads than the tracking cap, one parse each.
        let total = MAX_TRACKED_THREADS + 8;
        for _ in 0..total {
            let server = &server;
            let tokens = &tokens;
            thread::scope(|scope| {
                scope.spawn(move || {
                    assert!(server.parse(tokens).accepted);
                });
            });
        }
        let stats = server.stats();
        // Every parse is accounted for, but the per-thread list stays at
        // the cap plus the single overflow aggregate.
        assert_eq!(stats.total_parses(), total);
        assert!(stats.per_thread.len() <= MAX_TRACKED_THREADS + 1);
        assert!(stats
            .per_thread
            .iter()
            .any(|(name, s)| name == "(untracked threads)" && s.parses == 8));
    }

    #[test]
    fn server_error_display() {
        let e: ServerError = SessionError::UnknownToken("zzz".into()).into();
        assert!(e.to_string().contains("zzz"));
        let s: ServerError = ScanError::UnexpectedCharacter { offset: 1, character: '$' }.into();
        assert!(s.to_string().contains("scan error"));
    }
}
