//! `IpgServer`: the epoch-versioned shared-table serving layer.
//!
//! The paper amortises table generation across parses (§5); this module
//! amortises it across *parsers*. One lazily generated item-set graph — and
//! optionally one lazily determinised scanner — serves parse requests from
//! any number of threads, while grammar modifications are applied under
//! load with the paper's `MODIFY` invalidation semantics (§6) and **never
//! drain in-flight parses**.
//!
//! ## Grammar epochs
//!
//! The server's unit of consistency is the [`GrammarEpoch`]: an immutable
//! bundle of one grammar version's table state (an [`IpgSession`] holding
//! the grammar plus its item-set graph, whose published
//! `Arc<TableSnapshot>` rows the lazy tables pin) and the scanner whose
//! lazily determinised DFA snapshot belongs to the same version. Epochs
//! move through four stages:
//!
//! ```text
//!        pin                         publish
//! parse ----> epoch k  ...  MODIFY ---------> epoch k+1 becomes current
//!                                |
//!                                v            retire          reclaim
//!                        epoch k is retired -------> pinned? ---------> freed
//!                                                    (readers finish)
//! ```
//!
//! * **pin** — every parse clones the current `Arc<GrammarEpoch>` once and
//!   runs entirely against it: ACTION/GOTO from the epoch's pinned table
//!   snapshot, `tokenize` from the epoch's pinned DFA snapshot. No lock is
//!   held while parsing.
//! * **publish** — `MODIFY` (`ADD-RULE`/`DELETE-RULE`), scanner-definition
//!   changes and GC each *fork* the current epoch's state, apply the change
//!   privately (the paper's §6 invalidation runs on the fork), and swap the
//!   result in as the new current epoch. The fork is **structurally
//!   shared**: grammar and item-set graph are persistent chunk stores, so
//!   forking clones O(#chunks) `Arc`s and the invalidation pass
//!   copies-on-write only the chunks holding invalidated states.
//!   Publication cost is therefore O(invalidated states) — independent of
//!   graph size *and* of how long any in-flight parse still runs (the
//!   `publish-scaling` bench tracks the former, `modify-concurrent` the
//!   latter). Scanner edits likewise **carry over** the still-valid lazy
//!   DFA states instead of rebuilding the scanner from zero.
//! * **retire** — the replaced epoch is parked on a retired list. Parses
//!   that pinned it keep reading it; they observe the grammar version they
//!   started with, end to end.
//! * **reclaim** — the deferred sweep drops a retired epoch once its last
//!   reader has left: it runs when a parse releases a stale pin and on the
//!   next publication, never while anyone can still query the storage.
//!   Reclamation is **chunk-granular**: dropping a retired epoch frees
//!   exactly the storage chunks (item sets, dense rows, DFA snapshot
//!   states) that no live epoch still shares — the chunks the epoch
//!   inherited from (or bequeathed to) its neighbours live on with them.
//!
//! ## The request path: checkout → parse → return
//!
//! Epochs make the *table* side of a request allocation-free; the
//! per-request scratch is recycled the same way. Every request checks a
//! [`RequestCtx`] out of a **per-thread context pool slot** (lock-free: a
//! `Cell` swap in thread-local storage, keyed by thread exactly like the
//! per-thread statistics), runs entirely inside it — GSS node/edge pools,
//! dense frontiers, reduction buffers, the forest arena and the scanner's
//! character buffer all live in the context and keep their capacity from
//! request to request — and returns it when done:
//!
//! ```text
//! request --> checkout ctx --> pin epoch --> parse --> release pin --> return ctx
//!             (TLS slot,                                              (TLS slot)
//!              reset O(live))
//! ```
//!
//! On a warm server a request through the pooled entry points
//! ([`IpgServer::parse_text_pooled`], [`IpgServer::parse_pooled`],
//! [`IpgServer::recognize`]) performs **zero heap allocations** end to
//! end — enforced by a counting-allocator gate in the serving bench and
//! the `alloc_free` regression suite. The owned conveniences
//! ([`IpgServer::parse`], [`IpgServer::parse_text`]) cost exactly one
//! forest copy on top.
//!
//! ## The wire path (`ipg-frontend`)
//!
//! The network frontend (the `ipg-frontend` crate) slots straight onto
//! this layer: each of its worker threads maps 1:1 onto a per-thread
//! context-pool slot, so serving a network request *is* a context
//! checkout. The full path of one `PARSE-TEXT` frame:
//!
//! ```text
//! accept --> read frame --> admit ----------------> worker dequeues
//!            (size-capped,   │ queue full?               │ deadline dead?
//!             timeouts       └--> OVERLOADED             └--> DEADLINE_EXCEEDED
//!             classified)
//!        --> checkout ctx --> pin epoch --> scan+parse --> reply --> return ctx
//!                             │ deadline dead at pin?      (reused buffer)
//!                             └--> DEADLINE_EXCEEDED
//! ```
//!
//! Everything left of "checkout" is the frontend's admission control: a
//! bounded queue is the only backlog, and whatever it cannot hold is
//! answered immediately instead of buffered. The shed/deadline semantics,
//! in one table (every admitted or shed request gets **exactly one**
//! reply):
//!
//! | situation                          | reply                | counted in `GenStats` |
//! |------------------------------------|----------------------|-----------------------|
//! | admission queue full               | `OVERLOADED`         | `shed_overload`       |
//! | deadline expired in the queue      | `DEADLINE_EXCEEDED`  | `shed_deadline`       |
//! | deadline expired at epoch-pin time | `DEADLINE_EXCEEDED`  | `shed_deadline`       |
//! | deadline expires *after* the pin   | `DEADLINE_EXCEEDED` — the GSS loop observes it at the next budget stride and cancels cooperatively | `parses_cancelled`, `ctx_quarantined` |
//! | parse exceeds a resource cap (step fuel, GSS/forest byte caps) | `RESOURCE_EXHAUSTED` | `parses_exhausted`, `ctx_quarantined` |
//! | client cancelled a queued request  | `CANCELLED`          | `parses_cancelled`    |
//! | request panics inside a worker     | `ERROR` (exactly once); the worker survives | `worker_panics`, `ctx_quarantined` |
//! | frame arrives while draining       | `SHUTTING_DOWN`      | `shed_shutdown`       |
//! | malformed frame (bad length/verb)  | `MALFORMED` if the id was decodable, then the connection closes | `rejected_malformed` |
//! | peer stalls mid-frame / never reads replies | none — only that connection is poisoned | `io_timeouts` |
//!
//! ## Per-request budgets and context quarantine
//!
//! Every parse entry point has a budgeted form
//! ([`IpgServer::parse_text_budgeted`], [`IpgServer::parse_sentence_budgeted`],
//! the document paths) threading an [`ipg_glr::ParseBudget`] — deadline
//! instant, step fuel, byte caps on the GSS pools and forest arena — into
//! the GSS driver, which checks it every few dozen work units (amortized:
//! an unlimited budget costs one counter bump per unit, so the zero-alloc
//! warm path is untouched). The unbudgeted names delegate with the
//! server's **default budget** ([`IpgServer::set_default_budget`] — per
//! tenant when servers live in a registry), and the frontend tightens the
//! wire deadline into the effective budget, which is what makes
//! `DEADLINE_EXCEEDED` fire *mid-parse* instead of only at admission.
//!
//! **Quarantine lifecycle:** a budget-killed parse returns
//! [`ServerError::Exhausted`] and its pooled [`RequestCtx`] is *dropped*
//! instead of recycled — the pools just proved they can balloon to the cap,
//! so the next checkout rebuilds fresh (`ctx_quarantined`, then
//! `ctx_fresh`). A panicking parse quarantines implicitly: the context
//! unwinds out of the per-thread slot and is freed with the stack. Either
//! way the worker thread itself is preserved at full pool strength.
//!
//! Grammar edits over the wire (`ADD-RULE`/`DELETE-RULE`) go through
//! [`IpgServer::add_rule_text`]/[`IpgServer::remove_rule_text`] like any
//! library caller — non-draining epoch publication, never blocked behind
//! parses.
//!
//! Text requests are additionally **fused**: [`IpgServer::parse_text`]
//! streams scanner matches from the epoch's pinned DFA snapshot directly
//! into the GSS driver (token-id slots resolved to terminals through a
//! per-epoch precomputed map), so no token vector, token structs or name
//! strings are ever materialised.
//!
//! ## Document sessions (incremental re-parse)
//!
//! The editor/IDE workload keeps a *document* open and edits it: the
//! per-request model above would re-lex and re-parse the whole text on
//! every keystroke. A document session keeps the full pipeline state
//! alive between edits instead:
//!
//! ```text
//! open_document(text) --> doc id      (full lex + recorded parse,
//!                                      epoch pinned in the session)
//! apply_edit(id, byte_range, repl) -->
//!     epoch still current?  ──no──> re-pin + full re-lex + re-parse
//!     │ yes                          (`reparse_full`)
//!     └─> splice text, re-lex only the damaged match region
//!         (examined-extent damage tracking + boundary resync),
//!         re-run the GSS only from the leftmost damaged token
//!         (checkpointed frontiers; retained forest subtrees are reused)
//!         (`reparse_incremental`)
//! close_document(id) --> session dropped, its epoch pin released
//! ```
//!
//! The session owns a private `ParseCtx` (GSS pools + forest arena), the
//! lexer's match records and the GSS `ParseHistory`, so an edit costs
//! O(damage), not O(document). **Epoch staleness rule:** a session pins
//! the epoch it last parsed under; if any `MODIFY`/`modify_scanner`/GC
//! published a newer epoch since, the next edit detects the stale pin
//! (one atomic compare), re-pins the current epoch and rebuilds from
//! scratch — retained forests and histories are never spliced across
//! epochs. The incremental path is digest-equivalent to a cold
//! [`IpgServer::parse_text`] of the spliced text by construction (the
//! rollback restores the exact cold-parse state), and the
//! `incremental_reparse` proptest harness enforces it, edit script by
//! edit script. See [`crate::document`] for the session internals.
//!
//! ## Residency and re-lazification (multi-tenant serving)
//!
//! Everything an epoch holds resident is *derived* state — item-set
//! chunks, published ACTION/GOTO rows, materialised DFA snapshot states —
//! rebuildable on demand from the cheap persistent grammar by the lazy
//! expander. That makes eviction safe by construction:
//! [`IpgServer::relazify`] publishes a **cold epoch** (same grammar, fresh
//! lazily-expanded graph, re-lazified scanner) and the next parses rebuild
//! exactly what they touch. In-flight parses are, as always, unaffected:
//! they pinned the warm epoch and keep it alive until they finish.
//!
//! The byte accounting behind the eviction decision is chunk-granular
//! ([`IpgServer::resident_bytes`] / [`IpgServer::chunk_accounting`]; byte
//! model in [`crate::graph::ItemSetGraph::resident_bytes`]) and
//! pointer-keyed, so chunks structurally shared between servers forked
//! from one base are counted once. [`crate::registry::GrammarRegistry`]
//! stacks many `IpgServer` tenants under one global byte budget on these
//! primitives; its module docs carry the full tenancy lifecycle
//! (attach → serve → cool → evict → re-lazify) and the residency/eviction
//! semantics table.
//!
//! ## What serializes with what
//!
//! | operation                  | parses (readers)  | other writers |
//! |----------------------------|-------------------|---------------|
//! | `parse*`, `recognize`      | fully concurrent  | never blocked by writers (pin the old epoch) |
//! | context checkout/return    | thread-local, lock-free | not shared across threads |
//! | `MODIFY`, `modify_scanner`, `collect_garbage` | do **not** wait for parses | serialize among themselves |
//! | epoch swap                 | nanoseconds (pointer swap) | under the writer lock |
//!
//! ```
//! use ipg::IpgServer;
//!
//! let server = IpgServer::from_bnf(r#"
//!     B ::= "true" | "false" | B "or" B | B "and" B
//!     START ::= B
//! "#).unwrap();
//!
//! // Threads parse one shared, lazily generated graph...
//! std::thread::scope(|scope| {
//!     for _ in 0..4 {
//!         scope.spawn(|| {
//!             assert!(server.parse_sentence("true and true").unwrap().accepted);
//!         });
//!     }
//! });
//!
//! // ...and the language designer modifies the grammar under load: the
//! // edit is published as a new epoch without draining running parses.
//! server.add_rule_text(r#"B ::= "unknown""#).unwrap();
//! assert!(server.parse_sentence("true or unknown").unwrap().accepted);
//! ```

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use ipg_glr::{
    ExhaustReason, Forest, GssParseResult, GssParser, GssStats, ParseBudget, ParseCtx,
    ParseOutcome, TokenSource,
};
use ipg_grammar::{RuleId, SymbolId};
use ipg_lexer::{ScanError, Scanner, TokenStream};

use crate::session::{IpgSession, SessionError};
use crate::stats::GenStats;
use crate::tables::LazyTables;

/// Errors returned by [`IpgServer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// An error from the underlying session (unknown token, BNF, grammar).
    Session(SessionError),
    /// An error from the shared scanner while lexing request text.
    Scan(ScanError),
    /// [`IpgServer::parse_text`] was called on a server without a scanner.
    NoScanner,
    /// A document operation named a document id that is not open (never
    /// opened, or already closed).
    UnknownDocument(u64),
    /// An edit's byte range does not fit the document (out of bounds,
    /// inverted, or not on UTF-8 character boundaries).
    InvalidRange {
        /// Start of the offending byte range.
        start: usize,
        /// End of the offending byte range.
        end: usize,
        /// The document's length in bytes.
        len: usize,
    },
    /// The parse was cancelled mid-flight by its [`ParseBudget`]: the
    /// request's deadline passed (`Deadline` — surfaced as
    /// `DEADLINE_EXCEEDED` on the wire) or a resource cap tripped
    /// (`RESOURCE_EXHAUSTED`). The request context was quarantined.
    Exhausted(ExhaustReason),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Session(e) => write!(f, "{e}"),
            ServerError::Scan(e) => write!(f, "scan error: {e}"),
            ServerError::NoScanner => write!(f, "this server was built without a scanner"),
            ServerError::UnknownDocument(id) => write!(f, "unknown document id {id}"),
            ServerError::InvalidRange { start, end, len } => {
                write!(f, "invalid edit range {start}..{end} in a document of {len} bytes")
            }
            ServerError::Exhausted(reason) => {
                write!(f, "parse budget exhausted ({reason})")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SessionError> for ServerError {
    fn from(e: SessionError) -> Self {
        ServerError::Session(e)
    }
}

impl From<ScanError> for ServerError {
    fn from(e: ScanError) -> Self {
        ServerError::Scan(e)
    }
}

/// One immutable grammar epoch: the table state of one grammar version
/// plus the scanner whose DFA snapshot matches it.
///
/// Epochs are handed out as `Arc<GrammarEpoch>` by
/// [`IpgServer::current_epoch`] and pinned internally by every parse. The
/// bundled [`IpgSession`] is only ever *read* once the epoch is published
/// (its item-set graph still grows lazily under its own internal writer,
/// which is sound — lazy expansion adds entries, it never changes what an
/// existing entry means); all `MODIFY`-style mutation happens on a private
/// fork before the successor epoch is published.
#[derive(Debug)]
pub struct GrammarEpoch {
    /// Monotonic epoch number (0 for the epoch the server was built with).
    number: u64,
    /// The epoch's grammar + item-set graph. `Arc`-shared so a
    /// scanner-only epoch can reuse the table state of its predecessor.
    session: Arc<IpgSession>,
    /// The epoch's scanner (lexical syntax + lazily determinised DFA).
    scanner: Option<Arc<Scanner>>,
    /// Lazily built `token-id slot -> grammar terminal` map for the fused
    /// text path: both the scanner's slot table and the grammar are
    /// immutable within one epoch, so the (per-token string) name lookup
    /// is paid once per epoch instead of once per token.
    terminal_slots: OnceLock<Vec<Option<SymbolId>>>,
}

impl GrammarEpoch {
    /// The epoch number (increments on every publication).
    pub fn number(&self) -> u64 {
        self.number
    }

    /// The epoch's session: grammar plus item-set graph.
    pub fn session(&self) -> &IpgSession {
        &self.session
    }

    /// The grammar version this epoch serves.
    pub fn grammar_version(&self) -> u64 {
        self.session.grammar().version()
    }

    /// The epoch's scanner, if the server was built with one.
    pub fn scanner(&self) -> Option<&Scanner> {
        self.scanner.as_deref()
    }

    /// The `token-id slot -> terminal` map of this epoch (empty for
    /// servers without a scanner). Layout slots and slots whose token name
    /// has no terminal in this epoch's grammar map to `None`.
    pub(crate) fn terminal_slots(&self) -> &[Option<SymbolId>] {
        self.terminal_slots.get_or_init(|| {
            let Some(scanner) = self.scanner.as_deref() else {
                return Vec::new();
            };
            let grammar = self.session.grammar();
            (0..scanner.num_slots())
                .map(|id| {
                    scanner
                        .slot(id)
                        .filter(|def| !def.layout)
                        .and_then(|def| grammar.symbol(&def.name))
                        .filter(|&s| grammar.is_terminal(s))
                })
                .collect()
        })
    }
}

/// The fused lexer→parser token source: pulls the next scanner match from
/// the epoch's pinned DFA snapshot and maps its slot to a grammar terminal
/// through the epoch's precomputed slot table — no token vector, no
/// per-token strings.
struct EpochTokenSource<'a> {
    stream: TokenStream<'a>,
    slots: &'a [Option<SymbolId>],
    scanner: &'a Scanner,
    /// The request budget's deadline, re-checked every
    /// [`TOKEN_DEADLINE_STRIDE`] tokens so a scanner grinding through a
    /// pathological lexical input (long skip loops, dense fallback) cannot
    /// outlive its deadline between GSS-side budget checks.
    deadline: Option<Instant>,
    ticks: u32,
}

/// Tokens between deadline re-checks in the fused token source.
const TOKEN_DEADLINE_STRIDE: u32 = 32;

impl TokenSource for EpochTokenSource<'_> {
    type Error = ServerError;

    fn next_token(&mut self) -> Result<Option<SymbolId>, ServerError> {
        if let Some(deadline) = self.deadline {
            self.ticks += 1;
            if self.ticks >= TOKEN_DEADLINE_STRIDE {
                self.ticks = 0;
                if Instant::now() >= deadline {
                    return Err(ServerError::Exhausted(ExhaustReason::Deadline));
                }
            }
        }
        let Some(slot) = self.stream.next_slot()? else {
            return Ok(None);
        };
        match self.slots.get(slot).copied().flatten() {
            Some(symbol) => Ok(Some(symbol)),
            None => Err(ServerError::Scan(ScanError::UnknownTerminal {
                name: self
                    .scanner
                    .slot(slot)
                    .map(|def| def.name.clone())
                    .unwrap_or_default(),
            })),
        }
    }
}

/// A reusable per-worker request context: everything one request needs as
/// scratch — the GSS driver's [`ParseCtx`] (node/edge pools, frontiers,
/// forest arena, token buffer) plus the scanner's character buffer.
///
/// Contexts are recycled through a per-thread pool slot (see the module
/// docs): a warm request checks one out, parses, and returns it, touching
/// the allocator not at all.
#[derive(Debug, Default)]
pub struct RequestCtx {
    /// The parse driver's scratch (forest arena included).
    glr: ParseCtx,
    /// The fused scanner's reusable character buffer.
    chars: Vec<char>,
}

thread_local! {
    /// The per-thread context pool slot. Keyed by thread like the server's
    /// per-thread statistics, and lock-free by construction: checkout and
    /// return are plain `Cell` swaps with no cross-thread traffic. One
    /// slot suffices because a thread runs one request at a time; a nested
    /// checkout (reentrant parse) simply builds a fresh context, and the
    /// last return wins the slot.
    static CTX_SLOT: Cell<Option<Box<RequestCtx>>> = const { Cell::new(None) };
}

/// Takes the calling thread's pooled context, or builds a fresh one.
/// Returns whether the context was recycled (for the stats counters).
fn checkout_ctx() -> (Box<RequestCtx>, bool) {
    match CTX_SLOT.try_with(Cell::take).ok().flatten() {
        Some(ctx) => (ctx, true),
        None => (Box::default(), false),
    }
}

/// Returns a context to the calling thread's pool slot. The last return
/// wins the slot: if it is occupied (overlapping pooled results returned
/// out of order), the previously resident context is dropped so exactly
/// one stays pooled. `try_with` covers returns during thread teardown,
/// where the context is simply dropped.
fn checkin_ctx(ctx: Box<RequestCtx>) {
    let _ = CTX_SLOT.try_with(|slot| slot.set(Some(ctx)));
}

/// A parse result that *borrows* the pooled context it was produced in —
/// the zero-allocation counterpart of [`GssParseResult`].
///
/// The forest lives in the context's arena and is read in place through
/// [`PooledParse::forest`]; dropping the result returns the context (arena
/// capacity and all) to the per-thread pool. Convert with
/// [`PooledParse::into_result`] when an owned, `'static` result is worth
/// one forest copy.
#[derive(Debug)]
pub struct PooledParse {
    /// Always `Some` until dropped.
    ctx: Option<Box<RequestCtx>>,
    outcome: ParseOutcome,
}

impl PooledParse {
    /// Whether the input is a sentence of the language.
    pub fn accepted(&self) -> bool {
        self.outcome.accepted()
    }

    /// Work counters of the parse.
    pub fn stats(&self) -> GssStats {
        self.outcome.stats()
    }

    /// The grammar version the parse ran against.
    pub fn grammar_version(&self) -> u64 {
        self.outcome.grammar_version()
    }

    /// The shared parse forest, read in place from the pooled context.
    pub fn forest(&self) -> &Forest {
        self.ctx
            .as_ref()
            .expect("context present until drop")
            .glr
            .forest()
    }

    /// Copies the borrowed result into an owned [`GssParseResult`] (one
    /// forest clone); the context still returns to the pool with its
    /// capacity intact.
    pub fn into_result(self) -> GssParseResult {
        self.outcome.into_result(self.forest().clone())
    }
}

impl Drop for PooledParse {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            checkin_ctx(ctx);
        }
    }
}

/// Per-thread query statistics of one server, plus the graph-wide
/// generator counters — the aggregation [`IpgServer::stats`] reports.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// The current epoch's graph work counters (expansions, invalidations,
    /// GC, rows built, flushed query counts — carried forward across
    /// epochs by the fork) plus the server's epoch counters
    /// (`epochs_published` / `epochs_retired` / `epochs_reclaimed`).
    pub graph: GenStats,
    /// Parses served, `ACTION`/`GOTO` queries issued and epoch
    /// reclamations triggered, per serving thread (keyed by a debug
    /// rendering of the thread id).
    pub per_thread: Vec<(String, GenStats)>,
    /// Epochs retired but not yet reclaimed: still pinned by at least one
    /// in-flight parse (or an externally held [`IpgServer::current_epoch`]
    /// handle).
    pub retired_epochs: usize,
}

impl ServerStats {
    /// Total parses served across all threads.
    pub fn total_parses(&self) -> usize {
        self.per_thread.iter().map(|(_, s)| s.parses).sum()
    }

    /// Total `ACTION` queries across all threads.
    pub fn total_action_calls(&self) -> usize {
        self.per_thread.iter().map(|(_, s)| s.action_calls).sum()
    }

    /// One [`GenStats`] folding the graph counters and every per-thread
    /// entry together through [`GenStats::merge`]: counters sum, latency
    /// histograms merge exactly, high-water marks take the maximum. This
    /// is what the network frontend's STATS verb reports.
    pub fn merged(&self) -> GenStats {
        let mut total = self.graph;
        for (_, stats) in &self.per_thread {
            total.merge(stats);
        }
        total
    }

    /// The effective-parallelism high-water mark across all threads: the
    /// largest worker count [`IpgServer::parse_many`] (or the network
    /// frontend's pool) actually ran with, after clamping — as opposed to
    /// whatever was configured.
    pub fn effective_workers(&self) -> usize {
        self.per_thread
            .iter()
            .map(|(_, s)| s.effective_workers)
            .max()
            .unwrap_or(0)
    }

    /// The merged service-latency histogram across all threads (exact:
    /// bucket counts add, the maximum is the true global maximum).
    pub fn latency(&self) -> crate::stats::LatencyHistogram {
        let mut total = crate::stats::LatencyHistogram::default();
        for (_, stats) in &self.per_thread {
            total.merge(&stats.latency);
        }
        total
    }
}

/// A multi-reader serving layer over epoch-versioned [`IpgSession`]s.
///
/// `&IpgServer` is `Sync`: share it across threads (scoped threads, a
/// thread pool, an async runtime's blocking pool) and call the parse
/// methods freely. Modification methods publish new epochs and therefore
/// never wait for in-flight parses; they serialize only among themselves.
#[derive(Debug)]
pub struct IpgServer {
    /// The current epoch. Readers hold this lock only long enough to
    /// clone the `Arc`; the writer holds it only for the pointer swap.
    current: RwLock<Arc<GrammarEpoch>>,
    /// Shadow of `current`'s epoch number, so a parse releasing its pin
    /// can detect "my epoch was retired" with one atomic load instead of
    /// a lock.
    current_number: AtomicU64,
    /// The write side: serializes publications and owns the retired list.
    writer: Mutex<EpochWriter>,
    /// Per-thread query counters, updated once per parse (not per query).
    /// Bounded: once `MAX_TRACKED_THREADS` distinct threads have been
    /// seen, further threads fold into one overflow aggregate, so a
    /// server driven from a churning thread pool cannot leak one entry
    /// per retired `ThreadId`.
    per_thread: Mutex<PerThreadStats>,
    /// Open document sessions (see [`crate::document`]): incremental
    /// re-parse state keyed by document id.
    pub(crate) documents: crate::document::DocRegistry,
    /// The default per-request [`ParseBudget`] the unbudgeted parse paths
    /// apply (unlimited unless configured). Read per request, written
    /// rarely (tenant attach / admin), hence the `RwLock`.
    budget: RwLock<ParseBudget>,
}

/// Cap on individually tracked serving threads (see `IpgServer::per_thread`).
const MAX_TRACKED_THREADS: usize = 64;

#[derive(Debug, Default)]
struct PerThreadStats {
    tracked: HashMap<thread::ThreadId, GenStats>,
    /// Aggregate of every thread beyond the tracking cap.
    overflow: GenStats,
}

/// Serialized write-side state: the retired-epoch park and the lifetime
/// epoch counters.
#[derive(Debug, Default)]
struct EpochWriter {
    /// Epochs that are no longer current but may still be pinned by
    /// readers. Swept (deferred reclamation) on release and publication.
    retired: Vec<Arc<GrammarEpoch>>,
    /// Epochs published over the server's lifetime (the initial epoch is
    /// not counted — it was never *published* over a predecessor).
    published: usize,
    /// Epochs retired over the server's lifetime.
    retired_total: usize,
    /// Retired epochs whose storage has been reclaimed.
    reclaimed_total: usize,
}

impl IpgServer {
    /// Wraps a session for serving (epoch 0).
    pub fn new(session: IpgSession) -> Self {
        IpgServer {
            current: RwLock::new(Arc::new(GrammarEpoch {
                number: 0,
                session: Arc::new(session),
                scanner: None,
                terminal_slots: OnceLock::new(),
            })),
            current_number: AtomicU64::new(0),
            writer: Mutex::new(EpochWriter::default()),
            per_thread: Mutex::new(PerThreadStats::default()),
            documents: crate::document::DocRegistry::default(),
            budget: RwLock::new(ParseBudget::UNLIMITED),
        }
    }

    /// Creates a server from the textual BNF notation.
    pub fn from_bnf(text: &str) -> Result<Self, SessionError> {
        Ok(Self::new(IpgSession::from_bnf(text)?))
    }

    /// Attaches a shared scanner, enabling [`IpgServer::parse_text`]. A
    /// construction-time convenience: the scanner joins the current epoch
    /// in place (no publication).
    pub fn with_scanner(self, scanner: Scanner) -> Self {
        {
            let mut current = self.current.write().unwrap();
            *current = Arc::new(GrammarEpoch {
                number: current.number,
                session: current.session.clone(),
                scanner: Some(Arc::new(scanner)),
                terminal_slots: OnceLock::new(),
            });
        }
        self
    }

    /// Builder: sets the default per-request budget (see
    /// [`IpgServer::set_default_budget`]).
    pub fn with_default_budget(self, budget: ParseBudget) -> Self {
        self.set_default_budget(budget);
        self
    }

    /// The default per-request [`ParseBudget`] applied by the unbudgeted
    /// parse paths ([`IpgServer::parse_text`], [`IpgServer::parse_text_pooled`],
    /// document opens/edits). Unlimited unless configured.
    pub fn default_budget(&self) -> ParseBudget {
        *self.budget.read().unwrap()
    }

    /// Sets the default per-request budget. Takes effect for requests that
    /// start after the call; in-flight parses keep the budget they started
    /// with. A [`crate::GrammarRegistry`] uses this as the per-tenant
    /// default (dialect forks inherit the base tenant's budget).
    pub fn set_default_budget(&self, budget: ParseBudget) {
        *self.budget.write().unwrap() = budget;
    }

    // ------------------------------------------------------------------
    // Epoch lifecycle
    // ------------------------------------------------------------------

    /// Pins the current epoch: clones the `Arc` under a momentary read
    /// lock. Everything a parse needs afterwards comes from the pin.
    pub(crate) fn acquire(&self) -> Arc<GrammarEpoch> {
        self.current.read().unwrap().clone()
    }

    /// The current epoch, pinned. Public for observability (tests, tools
    /// that want to tag work with an epoch); dropping the `Arc` releases
    /// the pin, and any storage it kept alive is reclaimed by the next
    /// deferred sweep (a parse release or a publication).
    pub fn current_epoch(&self) -> Arc<GrammarEpoch> {
        self.acquire()
    }

    /// The current epoch number (0 until the first publication).
    pub fn epoch_number(&self) -> u64 {
        self.current_number.load(Ordering::Acquire)
    }

    /// Number of retired epochs still pinned by readers (awaiting
    /// deferred reclamation).
    pub fn retired_epochs(&self) -> usize {
        self.writer.lock().unwrap().retired.len()
    }

    /// Releases a pin. If the epoch was retired while the caller used it,
    /// run the deferred sweep so the storage of epochs whose last reader
    /// just left is reclaimed promptly. `try_lock`: if a publication is
    /// in progress the sweep is skipped — that publication sweeps itself,
    /// so a parse never blocks on a writer here.
    pub(crate) fn release(&self, epoch: Arc<GrammarEpoch>) {
        let number = epoch.number;
        drop(epoch);
        if number == self.current_number.load(Ordering::Acquire) {
            return;
        }
        if let Ok(mut writer) = self.writer.try_lock() {
            let reclaimed = Self::sweep_locked(&mut writer);
            drop(writer);
            if reclaimed > 0 {
                self.note_epochs(0, reclaimed);
            }
        }
    }

    /// Publishes `next` as the current epoch, retires the predecessor and
    /// sweeps. Returns the number of epochs reclaimed by the sweep.
    fn install_locked(&self, writer: &mut EpochWriter, next: GrammarEpoch) -> usize {
        let next = Arc::new(next);
        self.current_number.store(next.number, Ordering::Release);
        let old = {
            let mut current = self.current.write().unwrap();
            std::mem::replace(&mut *current, next)
        };
        writer.published += 1;
        writer.retired_total += 1;
        writer.retired.push(old);
        Self::sweep_locked(writer)
    }

    /// Drops every retired epoch whose last reader has left (strong count
    /// 1 = only the retired list itself). This is the deferred
    /// reclamation: the item sets, dense rows and DFA snapshot of a
    /// retired epoch are freed here, never while a reader could still
    /// query them.
    fn sweep_locked(writer: &mut EpochWriter) -> usize {
        let before = writer.retired.len();
        writer.retired.retain(|epoch| Arc::strong_count(epoch) > 1);
        let reclaimed = before - writer.retired.len();
        writer.reclaimed_total += reclaimed;
        reclaimed
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Runs `f` on the current epoch's session (a pinned read: writers
    /// publishing new epochs neither wait for `f` nor invalidate what it
    /// sees).
    pub fn read<R>(&self, f: impl FnOnce(&IpgSession) -> R) -> R {
        let epoch = self.acquire();
        let result = f(&epoch.session);
        self.release(epoch);
        result
    }

    /// The grammar version currently being served.
    pub fn grammar_version(&self) -> u64 {
        self.read(|s| s.grammar().version())
    }

    /// Warms the shared table: fully expands the current epoch's item-set
    /// graph and publishes every dense row, so subsequent parses are pure
    /// reads.
    pub fn warm(&self) {
        self.read(|s| s.expand_all());
    }

    /// [`IpgServer::warm`] with the cold-start expansion fanned out over
    /// `threads` worker threads (see
    /// [`IpgSession::expand_all_parallel`]). The warmed table is identical
    /// to the serial warm's; steady-state misses and `MODIFY` keep their
    /// serialized writer regardless of how the table was warmed.
    pub fn warm_parallel(&self, threads: usize) {
        self.read(|s| s.expand_all_parallel(threads));
    }

    /// Converts a whitespace-separated sentence of terminal names into
    /// symbol ids against the current grammar.
    pub fn tokens(&self, sentence: &str) -> Result<Vec<SymbolId>, SessionError> {
        self.read(|s| s.tokens(sentence))
    }

    /// The one serve path every parse method goes through: check a context
    /// out of the per-thread pool, pin the current epoch, hand epoch +
    /// lazy-tables handle + context to `f`, record the handle's query
    /// counts against the calling thread, release the pin and return the
    /// context. A request that fails before parsing (unknown token, scan
    /// error) still counts as a served request with zero queries.
    fn serve<R>(&self, f: impl FnOnce(&GrammarEpoch, &LazyTables<'_>, &mut RequestCtx) -> R) -> R {
        let started = Instant::now();
        let (mut ctx, reused) = checkout_ctx();
        let epoch = self.acquire();
        ipg_glr::fault::point("post-pin");
        let tables: LazyTables<'_> = epoch.session.tables();
        let result = f(&epoch, &tables, &mut ctx);
        let (action_calls, goto_calls) = tables.query_counts();
        drop(tables);
        self.release(epoch);
        checkin_ctx(ctx);
        self.note_parse(action_calls, goto_calls, reused, started.elapsed());
        result
    }

    /// The serve path of the pooled (borrowed-result) parse methods: like
    /// [`IpgServer::serve`], but on success the checked-out context rides
    /// inside the returned [`PooledParse`] and only goes back to the pool
    /// when the caller drops the result.
    fn serve_pooled<E>(
        &self,
        f: impl FnOnce(&GrammarEpoch, &LazyTables<'_>, &mut RequestCtx) -> Result<ParseOutcome, E>,
    ) -> Result<PooledParse, E> {
        let started = Instant::now();
        let (mut ctx, reused) = checkout_ctx();
        let epoch = self.acquire();
        ipg_glr::fault::point("post-pin");
        let tables: LazyTables<'_> = epoch.session.tables();
        let outcome = f(&epoch, &tables, &mut ctx);
        let (action_calls, goto_calls) = tables.query_counts();
        drop(tables);
        self.release(epoch);
        self.note_parse(action_calls, goto_calls, reused, started.elapsed());
        match outcome {
            Ok(outcome) => Ok(PooledParse {
                ctx: Some(ctx),
                outcome,
            }),
            Err(e) => {
                checkin_ctx(ctx);
                Err(e)
            }
        }
    }

    /// The budgeted serve path: like [`IpgServer::serve_pooled`] but
    /// specialised to [`ServerError`] so it can implement the quarantine
    /// lifecycle — a parse that exhausts its [`ParseBudget`] (either the
    /// GSS driver reporting [`ParseOutcome::Exhausted`] or the fused token
    /// source erroring with [`ServerError::Exhausted`]) has its context
    /// **dropped instead of recycled** (the pools may have ballooned to
    /// the byte cap) and is surfaced as `Err(ServerError::Exhausted)`.
    fn serve_pooled_budgeted(
        &self,
        budget: ParseBudget,
        f: impl FnOnce(
            &GrammarEpoch,
            &LazyTables<'_>,
            &mut RequestCtx,
            ParseBudget,
        ) -> Result<ParseOutcome, ServerError>,
    ) -> Result<PooledParse, ServerError> {
        let started = Instant::now();
        let (mut ctx, reused) = checkout_ctx();
        let epoch = self.acquire();
        ipg_glr::fault::point("post-pin");
        let tables: LazyTables<'_> = epoch.session.tables();
        let outcome = f(&epoch, &tables, &mut ctx, budget);
        let (action_calls, goto_calls) = tables.query_counts();
        drop(tables);
        self.release(epoch);
        self.note_parse(action_calls, goto_calls, reused, started.elapsed());
        match outcome {
            Ok(outcome) => match outcome.exhausted() {
                None => Ok(PooledParse {
                    ctx: Some(ctx),
                    outcome,
                }),
                Some(reason) => {
                    self.quarantine_ctx(ctx, reason);
                    Err(ServerError::Exhausted(reason))
                }
            },
            Err(ServerError::Exhausted(reason)) => {
                self.quarantine_ctx(ctx, reason);
                Err(ServerError::Exhausted(reason))
            }
            Err(e) => {
                checkin_ctx(ctx);
                Err(e)
            }
        }
    }

    /// Quarantines a request context after a budget kill: drops it (the
    /// next checkout builds fresh) and records the exhaustion counters —
    /// `parses_cancelled` for a deadline cut, `parses_exhausted` for a
    /// resource cap.
    fn quarantine_ctx(&self, ctx: Box<RequestCtx>, reason: ExhaustReason) {
        drop(ctx);
        let mut delta = GenStats {
            ctx_quarantined: 1,
            ..GenStats::default()
        };
        match reason {
            ExhaustReason::Deadline => delta.parses_cancelled = 1,
            _ => delta.parses_exhausted = 1,
        }
        self.note(&delta);
    }

    /// The fused text pipeline body shared by [`IpgServer::parse_text`]
    /// and [`IpgServer::parse_text_pooled`]: stream scanner matches from
    /// the epoch's pinned DFA snapshot straight into the GSS driver, with
    /// slots resolved to terminals through the epoch's precomputed map.
    fn parse_text_fused(
        epoch: &GrammarEpoch,
        tables: &LazyTables<'_>,
        ctx: &mut RequestCtx,
        input: &str,
        budget: ParseBudget,
    ) -> Result<ParseOutcome, ServerError> {
        let scanner = epoch.scanner().ok_or(ServerError::NoScanner)?;
        let RequestCtx { glr, chars } = ctx;
        let source = EpochTokenSource {
            stream: scanner.stream(input, chars),
            slots: epoch.terminal_slots(),
            scanner,
            deadline: budget.deadline,
            ticks: 0,
        };
        GssParser::new(epoch.session.grammar()).parse_stream_budgeted(glr, tables, source, budget)
    }

    /// Parses a token sentence against the shared graph. Concurrent with
    /// other parses *and* with modifications (which publish new epochs;
    /// this parse completes on the epoch it pinned).
    pub fn parse(&self, tokens: &[SymbolId]) -> GssParseResult {
        self.parse_versioned(tokens).1
    }

    /// Like [`IpgServer::parse`], also returning the grammar version the
    /// parse ran against — the version tag of the pinned epoch, which the
    /// result's own `grammar_version` field repeats, so the pair stays
    /// consistent however many epochs writers publish meanwhile.
    pub fn parse_versioned(&self, tokens: &[SymbolId]) -> (u64, GssParseResult) {
        self.serve(|epoch, tables, ctx| {
            let outcome =
                GssParser::new(epoch.session.grammar()).parse_into(&mut ctx.glr, tables, tokens);
            debug_assert_eq!(outcome.grammar_version(), epoch.grammar_version());
            (
                outcome.grammar_version(),
                outcome.into_result(ctx.glr.forest().clone()),
            )
        })
    }

    /// Like [`IpgServer::parse`], but the result *borrows* the pooled
    /// context it was produced in: the forest is read in place and nothing
    /// is copied or allocated on the warm path. Drop the result to return
    /// the context to the pool.
    pub fn parse_pooled(&self, tokens: &[SymbolId]) -> PooledParse {
        let served: Result<PooledParse, std::convert::Infallible> =
            self.serve_pooled(|epoch, tables, ctx| {
                Ok(GssParser::new(epoch.session.grammar()).parse_into(
                    &mut ctx.glr,
                    tables,
                    tokens,
                ))
            });
        match served {
            Ok(parsed) => parsed,
            Err(infallible) => match infallible {},
        }
    }

    /// Recognises a token sentence (no forest construction; zero
    /// allocations on the warm path).
    pub fn recognize(&self, tokens: &[SymbolId]) -> bool {
        self.serve(|epoch, tables, ctx| {
            GssParser::new(epoch.session.grammar())
                .recognize_into(&mut ctx.glr, tables, tokens)
                .accepted()
        })
    }

    /// Convenience: [`IpgServer::parse`] on a whitespace-separated sentence
    /// of terminal names (tokenized — into the context's reusable token
    /// buffer — and parsed against one pinned epoch, so the sentence is
    /// interpreted by the same grammar version it is parsed with).
    pub fn parse_sentence(&self, sentence: &str) -> Result<GssParseResult, SessionError> {
        self.serve(|epoch, tables, ctx| {
            epoch.session.tokens_into(sentence, &mut ctx.glr.tokens)?;
            let outcome = GssParser::new(epoch.session.grammar()).parse_buffered(&mut ctx.glr, tables);
            Ok(outcome.into_result(ctx.glr.forest().clone()))
        })
    }

    /// [`IpgServer::parse_sentence`] under an explicit [`ParseBudget`]. An
    /// exhausted parse returns [`ServerError::Exhausted`] and quarantines
    /// its context (see the module docs).
    pub fn parse_sentence_budgeted(
        &self,
        sentence: &str,
        budget: ParseBudget,
    ) -> Result<GssParseResult, ServerError> {
        let pooled = self.serve_pooled_budgeted(budget, |epoch, tables, ctx, budget| {
            epoch
                .session
                .tokens_into(sentence, &mut ctx.glr.tokens)
                .map_err(ServerError::from)?;
            Ok(GssParser::new(epoch.session.grammar()).parse_buffered_budgeted(
                &mut ctx.glr,
                tables,
                budget,
            ))
        })?;
        Ok(pooled.into_result())
    }

    /// Lexes `input` with the pinned epoch's scanner and parses the token
    /// stream — the full text-to-forest pipeline against one epoch, so
    /// lexical and context-free syntax can never be observed from two
    /// different versions within one request.
    ///
    /// Scanning is **fused** into the parse: the scanner's matches (served
    /// from its pinned, lock-free DFA snapshot) feed the GSS driver one
    /// terminal at a time, so no token vector, token structs or name
    /// strings are ever materialised. Fusion is lazy end to end — if every
    /// parallel parser dies early, the rest of the text is never scanned,
    /// so a lexical error *beyond* the point of rejection is not reported
    /// (the parse returns a plain rejection). See
    /// [`IpgServer::parse_text_pooled`] for the zero-copy form.
    pub fn parse_text(&self, input: &str) -> Result<GssParseResult, ServerError> {
        Ok(self
            .parse_text_budgeted(input, self.default_budget())?
            .into_result())
    }

    /// Like [`IpgServer::parse_text`], but the result borrows the pooled
    /// context: on a warm server (table expanded, DFA snapshot populated,
    /// context pools grown) a request through this path performs **zero
    /// heap allocations** end to end — scan, parse and forest all run in
    /// recycled memory. Drop the result to return the context.
    ///
    /// Runs under the server's default budget
    /// ([`IpgServer::default_budget`]); see
    /// [`IpgServer::parse_text_budgeted`] for an explicit one.
    pub fn parse_text_pooled(&self, input: &str) -> Result<PooledParse, ServerError> {
        self.parse_text_budgeted(input, self.default_budget())
    }

    /// [`IpgServer::parse_text_pooled`] under an explicit [`ParseBudget`]:
    /// the GSS driver checks the budget every few dozen work units and the
    /// fused token source re-checks the deadline while scanning, so a
    /// pathological request is cut off *mid-parse*. An exhausted parse
    /// returns [`ServerError::Exhausted`] and quarantines its context.
    pub fn parse_text_budgeted(
        &self,
        input: &str,
        budget: ParseBudget,
    ) -> Result<PooledParse, ServerError> {
        self.serve_pooled_budgeted(budget, |epoch, tables, ctx, budget| {
            Self::parse_text_fused(epoch, tables, ctx, input, budget)
        })
    }

    // ------------------------------------------------------------------
    // Write path (epoch publication)
    // ------------------------------------------------------------------

    /// Runs `f` on a private fork of the current epoch's session and
    /// publishes the result as the next epoch — the `MODIFY` entry point
    /// for structural changes beyond the convenience methods below.
    ///
    /// Publication cost is the structurally shared fork (O(#chunks) `Arc`
    /// clones of grammar + item-set graph) plus whatever `f` invalidates
    /// (copied chunk-wise on write); it does **not** wait for in-flight
    /// parses, which keep reading the epoch they pinned, and it does not
    /// grow with the size of the graph.
    pub fn modify<R>(&self, f: impl FnOnce(&mut IpgSession) -> R) -> R {
        let mut writer = self.writer.lock().unwrap();
        let cur = self.acquire();
        let mut session = (*cur.session).clone();
        let result = f(&mut session);
        let next = GrammarEpoch {
            number: cur.number + 1,
            session: Arc::new(session),
            scanner: cur.scanner.clone(),
            terminal_slots: OnceLock::new(),
        };
        drop(cur);
        let reclaimed = self.install_locked(&mut writer, next);
        drop(writer);
        self.note_epochs(1, reclaimed);
        result
    }

    /// Runs `f` on a private fork of the current epoch's scanner and
    /// publishes the result as the next epoch (which shares the
    /// predecessor's table state — lexical edits do not fork the parser
    /// tables). Definition changes applied through `f` carry over the
    /// still-valid lazy-DFA states (see `ipg_lexer::Scanner`), so a
    /// lexical edit does not restart the scanner cold. In-flight
    /// `parse_text` calls finish on the DFA snapshot they pinned.
    pub fn modify_scanner<R>(&self, f: impl FnOnce(&mut Scanner) -> R) -> Result<R, ServerError> {
        let mut writer = self.writer.lock().unwrap();
        let cur = self.acquire();
        let Some(scanner) = cur.scanner.as_deref() else {
            return Err(ServerError::NoScanner);
        };
        let mut scanner = scanner.clone();
        let result = f(&mut scanner);
        let next = GrammarEpoch {
            number: cur.number + 1,
            session: cur.session.clone(),
            scanner: Some(Arc::new(scanner)),
            terminal_slots: OnceLock::new(),
        };
        drop(cur);
        let reclaimed = self.install_locked(&mut writer, next);
        drop(writer);
        self.note_epochs(1, reclaimed);
        Ok(result)
    }

    /// Adds a rule written in the textual BNF notation — the paper's
    /// `ADD-RULE`, published as a new epoch.
    pub fn add_rule_text(&self, text: &str) -> Result<RuleId, SessionError> {
        self.modify(|s| s.add_rule_text(text))
    }

    /// Deletes a rule written in the textual BNF notation — the paper's
    /// `DELETE-RULE`, published as a new epoch.
    pub fn remove_rule_text(&self, text: &str) -> Result<RuleId, SessionError> {
        self.modify(|s| s.remove_rule_text(text))
    }

    /// Runs a mark-and-sweep collection: like `MODIFY`, the collection
    /// happens on a private fork that is then published, so parses in
    /// flight keep their (uncollected) epoch until they finish and the
    /// old storage is reclaimed by the deferred sweep.
    pub fn collect_garbage(&self) {
        self.modify(|s| s.collect_garbage());
    }

    /// Evicts this server's derived state by publishing a **cold epoch**:
    /// the same grammar (and GC policy, and active token definitions) with
    /// a fresh, unexpanded item-set graph and a re-lazified scanner. The
    /// next parses rebuild exactly the chunks they touch through the lazy
    /// expander — the registry's evict → re-lazify cycle, and the paper's
    /// laziness applied to memory instead of cold-start time.
    ///
    /// Work counters are carried onto the cold epoch ("how much work has
    /// this tenant caused over its lifetime"), so stats stay monotone
    /// across eviction; the residency gauges drop to the cold working set.
    /// In-flight parses finish on the warm epoch they pinned; its storage
    /// is reclaimed by the deferred sweep once the last reader leaves.
    ///
    /// Returns the number of chunks evicted (node chunks, snapshot chunks
    /// and DFA snapshot states the warm epoch held beyond the cold one).
    pub fn relazify(&self) -> usize {
        let mut writer = self.writer.lock().unwrap();
        let cur = self.acquire();
        let warm_chunks = cur.session.chunk_accounting().len()
            + cur.scanner().map_or(0, |s| s.snapshot_accounting().len());
        let mut carried = cur.session.graph().stats();
        // The high-water gauge must remember the *full* warm residency
        // (graph + rule arena + scanner snapshot), not just the graph's
        // own share; the live gauge is resampled from the cold stores.
        let warm_resident = cur.session.resident_bytes()
            + cur.scanner().map_or(0, |s| s.resident_bytes());
        carried.resident_high_water = carried.resident_high_water.max(warm_resident);
        carried.resident_bytes = 0;
        let session = IpgSession::with_policy(
            cur.session.grammar().clone(),
            cur.session.graph().gc_policy(),
        );
        session.graph().adopt_stats(carried);
        let scanner = cur.scanner().map(|s| Arc::new(s.relazified()));
        let cold_chunks = session.chunk_accounting().len()
            + scanner.as_deref().map_or(0, |s| s.snapshot_accounting().len());
        let next = GrammarEpoch {
            number: cur.number + 1,
            session: Arc::new(session),
            scanner,
            terminal_slots: OnceLock::new(),
        };
        drop(cur);
        let reclaimed = self.install_locked(&mut writer, next);
        drop(writer);
        self.note_epochs(1, reclaimed);
        let evicted = warm_chunks.saturating_sub(cold_chunks);
        self.note(&GenStats {
            chunks_evicted: evicted,
            ..GenStats::default()
        });
        evicted
    }

    /// Modeled resident bytes of the current epoch: the session's stores
    /// (node chunks + published snapshot + rule arena) plus the scanner's
    /// materialised DFA snapshot. Retired-but-pinned epochs are not
    /// counted here; their storage is either shared with the current epoch
    /// (already counted) or reclaimed when their last reader leaves.
    pub fn resident_bytes(&self) -> usize {
        let epoch = self.acquire();
        let bytes = epoch.session.resident_bytes()
            + epoch.scanner().map_or(0, |s| s.resident_bytes());
        self.release(epoch);
        bytes
    }

    /// Pointer-keyed accounting rows `(Arc pointer as usize, modeled
    /// bytes)` over everything the current epoch holds resident. Servers
    /// forked from a common base share chunks by `Arc`; a registry summing
    /// residency across tenants dedupes these rows by pointer identity so
    /// each shared chunk is counted once.
    pub fn chunk_accounting(&self) -> Vec<(usize, usize)> {
        let epoch = self.acquire();
        let mut rows = epoch.session.chunk_accounting();
        if let Some(scanner) = epoch.scanner() {
            rows.extend(scanner.snapshot_accounting());
        }
        self.release(epoch);
        rows
    }

    // ------------------------------------------------------------------
    // Batch + statistics
    // ------------------------------------------------------------------

    /// Parses every request, fanned out over `threads` scoped worker
    /// threads pulling from a shared atomic work queue: each worker grabs
    /// the next unclaimed request index when it finishes its current one,
    /// so one slow request delays only the worker running it — not every
    /// request that a static striping would have assigned to the same
    /// lane. Results come back in request order. A convenience for
    /// benches, tests and batch callers; the network frontend
    /// (`ipg-frontend`) calls [`IpgServer::parse`] from its own worker
    /// pool instead.
    ///
    /// `threads` is a *request*: it is clamped to the number of requests
    /// (and to at least 1), and the count actually used is surfaced as the
    /// max-merged [`GenStats::effective_workers`] high-water mark — read
    /// it back through [`ServerStats::effective_workers`] — so callers and
    /// benches report real, not configured, parallelism.
    pub fn parse_many(&self, requests: &[Vec<SymbolId>], threads: usize) -> Vec<GssParseResult> {
        let threads = threads.max(1).min(requests.len().max(1));
        self.note(&GenStats {
            effective_workers: threads,
            ..GenStats::default()
        });
        let queue = AtomicUsize::new(0);
        let mut results: Vec<Option<GssParseResult>> = vec![None; requests.len()];
        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let queue = &queue;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = queue.fetch_add(1, Ordering::Relaxed);
                        if i >= requests.len() {
                            break;
                        }
                        out.push((i, self.parse(&requests[i])));
                    }
                    out
                }));
            }
            for handle in handles {
                for (i, result) in handle.join().expect("worker thread panicked") {
                    results[i] = Some(result);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every request was served"))
            .collect()
    }

    /// The aggregated statistics: the current epoch's graph counters
    /// (carried forward across epochs), the server's epoch counters and
    /// the per-thread query/parse counts. Runs an opportunistic sweep so
    /// reclamation is visible promptly.
    pub fn stats(&self) -> ServerStats {
        let mut graph = {
            let epoch = self.acquire();
            let mut graph = epoch.session.stats();
            // The scanner's carry-over and dense-path counters ride along
            // with the graph counters (zero for servers without a scanner).
            if let Some(scanner) = epoch.scanner() {
                graph.dfa_states_carried = scanner.carried_states();
                let dfa = scanner.dfa_stats();
                graph.dense_rows_built = dfa.dense_rows_built;
                graph.dense_bytes = dfa.dense_bytes;
                graph.skip_loop_bytes = dfa.skip_loop_bytes;
                // The scanner's materialised DFA snapshot joins the
                // residency gauge (the session already folded in its graph
                // and rule-arena bytes).
                graph.resident_bytes += scanner.resident_bytes();
                graph.resident_high_water =
                    graph.resident_high_water.max(graph.resident_bytes);
            }
            self.release(epoch);
            graph
        };
        let retired_epochs = {
            let mut writer = self.writer.lock().unwrap();
            Self::sweep_locked(&mut writer);
            graph.epochs_published += writer.published;
            graph.epochs_retired += writer.retired_total;
            graph.epochs_reclaimed += writer.reclaimed_total;
            writer.retired.len()
        };
        let per_thread = self.per_thread.lock().unwrap();
        let mut entries: Vec<(String, GenStats)> = per_thread
            .tracked
            .iter()
            .map(|(id, stats)| (format!("{id:?}"), *stats))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        if per_thread.overflow != GenStats::default() {
            entries.push(("(untracked threads)".to_owned(), per_thread.overflow));
        }
        ServerStats {
            graph,
            per_thread: entries,
            retired_epochs,
        }
    }

    fn note_parse(&self, action_calls: usize, goto_calls: usize, ctx_reused: bool, latency: Duration) {
        let mut delta = GenStats {
            parses: 1,
            action_calls,
            goto_calls,
            ..GenStats::default()
        };
        if ctx_reused {
            delta.ctx_reused = 1;
        } else {
            delta.ctx_fresh = 1;
        }
        delta.latency.record(latency);
        self.note(&delta);
    }

    fn note_epochs(&self, retired: usize, reclaimed: usize) {
        if retired == 0 && reclaimed == 0 {
            return;
        }
        self.note(&GenStats {
            epochs_published: retired,
            epochs_retired: retired,
            epochs_reclaimed: reclaimed,
            ..GenStats::default()
        });
    }

    /// Folds a delta into the calling thread's stats entry (or, past the
    /// tracking cap, the overflow aggregate) through [`GenStats::merge`] —
    /// one merge function for both paths, so the overflow aggregate keeps
    /// exact histograms and max-merged high-water marks just like a
    /// tracked entry does.
    pub(crate) fn note(&self, delta: &GenStats) {
        let mut per_thread = self.per_thread.lock().unwrap();
        Self::entry_mut(&mut per_thread).merge(delta);
    }

    fn entry_mut(per_thread: &mut PerThreadStats) -> &mut GenStats {
        let id = thread::current().id();
        if per_thread.tracked.contains_key(&id) || per_thread.tracked.len() < MAX_TRACKED_THREADS
        {
            per_thread.tracked.entry(id).or_default()
        } else {
            &mut per_thread.overflow
        }
    }
}

// The whole point of the serving layer: one server instance may be shared
// across threads.
#[allow(dead_code)]
fn _assert_server_is_sync() {
    fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<IpgServer>();
    is_send_sync::<GrammarEpoch>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;
    use ipg_lexer::simple_scanner;

    fn boolean_server() -> IpgServer {
        IpgServer::new(IpgSession::new(fixtures::booleans()))
    }

    #[test]
    fn serves_parses_from_many_threads() {
        let server = boolean_server();
        let sentences = ["true", "true and true", "false or true", "true or"];
        let expected = [true, true, true, false];
        thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for (sentence, expect) in sentences.iter().zip(expected) {
                        let result = server.parse_sentence(sentence).unwrap();
                        assert_eq!(result.accepted, expect, "`{sentence}`");
                    }
                });
            }
        });
        let stats = server.stats();
        assert_eq!(stats.total_parses(), 16);
        assert!(!stats.per_thread.is_empty());
        assert!(stats.total_action_calls() > 0);
        assert!(stats.graph.expansions > 0);
    }

    #[test]
    fn modification_under_load_keeps_every_parse_consistent() {
        let server = boolean_server();
        let base_version = server.grammar_version();
        thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let tokens = match server.tokens("unknown or true") {
                            Ok(tokens) => tokens,
                            // `unknown` not interned yet: pre-modification.
                            Err(_) => server.tokens("true or true").unwrap(),
                        };
                        // Whichever grammar version the parse ran against,
                        // the sentence was chosen to be in its language.
                        let (version, result) = server.parse_versioned(&tokens);
                        assert!(result.accepted, "grammar v{version}");
                    }
                });
            }
            scope.spawn(|| {
                server.add_rule_text(r#"B ::= "unknown""#).unwrap();
            });
        });
        assert!(server.grammar_version() > base_version);
        assert!(server.parse_sentence("unknown and false").unwrap().accepted);
    }

    #[test]
    fn parse_many_round_robins_and_preserves_order() {
        let server = boolean_server();
        server.warm();
        let requests: Vec<Vec<_>> = (0..17)
            .map(|i| {
                let sentence = if i % 3 == 0 { "true or false" } else { "true and" };
                server.tokens(sentence).unwrap()
            })
            .collect();
        let expansions_before = server.stats().graph.total_expansions();
        let results = server.parse_many(&requests, 4);
        assert_eq!(results.len(), 17);
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.accepted, i % 3 == 0, "request {i}");
        }
        // Warm table: serving did not expand anything new.
        assert_eq!(server.stats().graph.total_expansions(), expansions_before);
    }

    #[test]
    fn text_pipeline_with_shared_scanner() {
        let server = IpgServer::new(IpgSession::new(fixtures::booleans()))
            .with_scanner(simple_scanner(&["true", "false", "or", "and"]));
        thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    assert!(server.parse_text("true or false -- comment\n").unwrap().accepted);
                    assert!(!server.parse_text("true or").unwrap().accepted);
                });
            }
        });
        assert!(matches!(
            server.parse_text("true $ false"),
            Err(ServerError::Scan(_))
        ));
        let err = boolean_server().parse_text("true").unwrap_err();
        assert_eq!(err, ServerError::NoScanner);
        assert!(err.to_string().contains("scanner"));
    }

    #[test]
    fn scanner_modifications_publish_a_new_epoch() {
        let server = IpgServer::new(IpgSession::new(fixtures::booleans()))
            .with_scanner(simple_scanner(&["true", "or"]));
        let epoch_before = server.epoch_number();
        let version_before = server.grammar_version();
        assert!(server.parse_text("true % true").is_err());
        server
            .modify_scanner(|s| s.add_definition(ipg_lexer::TokenDef::keyword("%")))
            .unwrap();
        // A lexical edit publishes an epoch but shares the table state.
        assert_eq!(server.epoch_number(), epoch_before + 1);
        assert_eq!(server.grammar_version(), version_before);
        // `%` now scans but is not a grammar terminal: an unknown-terminal
        // scan error, not an unexpected-character one.
        assert!(matches!(
            server.parse_text("true % true"),
            Err(ServerError::Scan(ScanError::UnknownTerminal { .. }))
        ));
        assert!(boolean_server().modify_scanner(|_| ()).is_err());
    }

    #[test]
    fn read_and_modify_expose_the_session() {
        let server = boolean_server();
        let rules = server.read(|s| s.grammar().num_active_rules());
        assert_eq!(rules, 5);
        server.modify(|s| {
            s.add_rule_text(r#"B ::= "maybe""#).unwrap();
        });
        assert_eq!(server.read(|s| s.grammar().num_active_rules()), 6);
        server.collect_garbage();
        assert!(matches!(
            server.remove_rule_text(r#"B ::= "never""#),
            Err(SessionError::UnknownToken(_)) | Err(SessionError::Grammar(_))
        ));
    }

    #[test]
    fn modifications_retire_and_reclaim_epochs() {
        let server = boolean_server();
        server.warm();
        assert_eq!(server.epoch_number(), 0);
        let weak = Arc::downgrade(&server.current_epoch());
        server.add_rule_text(r#"B ::= "maybe""#).unwrap();
        assert_eq!(server.epoch_number(), 1);
        let stats = server.stats();
        assert_eq!(stats.graph.epochs_published, 1);
        assert_eq!(stats.graph.epochs_retired, 1);
        // No reader pinned epoch 0, so the publication's own sweep (or the
        // one in `stats`) already reclaimed it: the item-set storage of
        // the retired epoch is gone.
        assert_eq!(stats.graph.epochs_reclaimed, 1);
        assert_eq!(stats.retired_epochs, 0);
        assert!(weak.upgrade().is_none(), "retired epoch 0 was freed");
    }

    #[test]
    fn pinned_epoch_defers_reclamation_until_released() {
        let server = boolean_server();
        let pinned = server.current_epoch();
        let weak = Arc::downgrade(&pinned);
        server.add_rule_text(r#"B ::= "maybe""#).unwrap();
        // The pin keeps the retired epoch (and its storage) alive...
        assert_eq!(server.stats().retired_epochs, 1);
        assert!(weak.upgrade().is_some());
        // ...and the pinned state still answers for its own version.
        assert!(pinned.grammar_version() < server.grammar_version());
        drop(pinned);
        // The next sweep (here: via stats) reclaims it.
        let stats = server.stats();
        assert_eq!(stats.retired_epochs, 0);
        assert!(weak.upgrade().is_none());
        assert_eq!(stats.graph.epochs_reclaimed, 1);
    }

    #[test]
    fn per_thread_tracking_is_bounded() {
        let server = boolean_server();
        server.warm();
        let tokens = server.tokens("true or false").unwrap();
        // Far more threads than the tracking cap, one parse each.
        let total = MAX_TRACKED_THREADS + 8;
        for _ in 0..total {
            let server = &server;
            let tokens = &tokens;
            thread::scope(|scope| {
                scope.spawn(move || {
                    assert!(server.parse(tokens).accepted);
                });
            });
        }
        let stats = server.stats();
        // Every parse is accounted for, but the per-thread list stays at
        // the cap plus the single overflow aggregate.
        assert_eq!(stats.total_parses(), total);
        assert!(stats.per_thread.len() <= MAX_TRACKED_THREADS + 1);
        let overflow = stats
            .per_thread
            .iter()
            .find(|(name, _)| name == "(untracked threads)")
            .map(|(_, s)| s)
            .expect("overflow aggregate present");
        assert_eq!(overflow.parses, 8);
        // The overflow aggregate goes through the same field-aware merge
        // as tracked entries: its latency histogram holds one exact sample
        // per folded-in parse (nothing lossy like a clobbered mean), and
        // the merged view accounts for every thread's samples.
        assert_eq!(overflow.latency.count(), 8);
        assert!(overflow.latency.max_us() <= stats.merged().latency.max_us());
        assert_eq!(stats.latency().count() as usize, total);
        assert_eq!(stats.merged().parses, total);
    }

    #[test]
    fn parse_many_surfaces_the_effective_worker_count() {
        let server = boolean_server();
        let requests = vec![server.tokens("true or false").unwrap(); 2];
        // 8 threads requested, but only 2 requests exist: the clamp to the
        // request count must be visible, not silently applied.
        server.parse_many(&requests, 8);
        assert_eq!(server.stats().effective_workers(), 2);
        // A larger batch raises the high-water mark; a later smaller batch
        // does not lower it (max-merge, not last-write).
        let many = vec![server.tokens("true and true").unwrap(); 16];
        server.parse_many(&many, 4);
        assert_eq!(server.stats().effective_workers(), 4);
        server.parse_many(&requests, 8);
        assert_eq!(server.stats().effective_workers(), 4);
        // Zero threads and empty batches degrade to 1 worker, visibly.
        server.parse_many(&requests, 0);
        assert_eq!(server.stats().effective_workers(), 4);
    }

    #[test]
    fn serve_records_latency_samples() {
        let server = boolean_server();
        let tokens = server.tokens("true or false").unwrap();
        for _ in 0..5 {
            assert!(server.parse(&tokens).accepted);
        }
        let latency = server.stats().latency();
        assert_eq!(latency.count(), 5);
        // Quantiles are served from the merged histogram without panicking
        // and respect ordering.
        let (p50, p99, p999) = latency.percentiles_us();
        assert!(p50 <= p99 && p99 <= p999);
        assert!(p999 <= latency.max_us().max(1));
    }

    #[test]
    fn pooled_parses_reuse_the_thread_context() {
        let server = IpgServer::new(IpgSession::new(fixtures::booleans()))
            .with_scanner(simple_scanner(&["true", "false", "or", "and"]));
        server.warm();
        for _ in 0..8 {
            let parsed = server.parse_text_pooled("true or false and true").unwrap();
            assert!(parsed.accepted());
            assert!(parsed.stats().shifts > 0);
            assert_eq!(parsed.grammar_version(), server.grammar_version());
            assert!(!parsed.forest().roots().is_empty());
        }
        let stats = server.stats();
        let (reused, fresh): (usize, usize) = stats
            .per_thread
            .iter()
            .fold((0, 0), |(r, f), (_, s)| (r + s.ctx_reused, f + s.ctx_fresh));
        assert_eq!(reused + fresh, 8);
        // At most the first request on this thread built a context.
        assert!(reused >= 7, "contexts must be recycled: {reused} reused / {fresh} fresh");
    }

    #[test]
    fn pooled_and_owned_parse_text_agree() {
        let server = IpgServer::new(IpgSession::new(fixtures::booleans()))
            .with_scanner(simple_scanner(&["true", "false", "or", "and"]));
        for input in ["true or false", "true or true or true", "true or", ""] {
            let owned = server.parse_text(input).unwrap();
            let pooled = server.parse_text_pooled(input).unwrap();
            assert_eq!(pooled.accepted(), owned.accepted, "`{input}`");
            assert_eq!(
                pooled.forest().tree_count(100),
                owned.forest.tree_count(100),
                "`{input}`"
            );
            let copied = pooled.into_result();
            assert_eq!(copied.accepted, owned.accepted);
            assert_eq!(copied.grammar_version, owned.grammar_version);
        }
        // Error paths return the context to the pool and surface the error.
        assert!(matches!(
            server.parse_text_pooled("true $ false"),
            Err(ServerError::Scan(_))
        ));
        let tokens = server.tokens("true or false").unwrap();
        assert!(server.parse_pooled(&tokens).accepted());
    }

    #[test]
    fn fused_scanning_is_lazy_past_the_point_of_rejection() {
        let server = IpgServer::new(IpgSession::new(fixtures::booleans()))
            .with_scanner(simple_scanner(&["true", "false", "or", "and"]));
        // `true true` kills every parallel parser before `$` is scanned:
        // the fused pipeline reports a rejection, not a scan error.
        let result = server.parse_text("true true $").unwrap();
        assert!(!result.accepted);
        // With the parse still alive at the error, the scan error surfaces.
        assert!(matches!(
            server.parse_text("true or $"),
            Err(ServerError::Scan(ScanError::UnexpectedCharacter { .. }))
        ));
    }

    #[test]
    fn parse_many_with_more_threads_than_requests() {
        let server = boolean_server();
        let requests = vec![server.tokens("true or false").unwrap()];
        let results = server.parse_many(&requests, 8);
        assert_eq!(results.len(), 1);
        assert!(results[0].accepted);
        assert!(server.parse_many(&[], 4).is_empty());
    }

    #[test]
    fn relazify_publishes_a_cold_epoch_with_unchanged_behaviour() {
        let server = IpgServer::new(IpgSession::new(fixtures::booleans()))
            .with_scanner(simple_scanner(&["true", "false", "or", "and"]));
        server.warm();
        assert!(server.parse_text("true or false and true").unwrap().accepted);
        let warm_bytes = server.resident_bytes();
        let warm_expansions = server.stats().graph.total_expansions();
        let epoch_before = server.epoch_number();

        let evicted = server.relazify();
        assert!(evicted > 0, "a warmed server has derived chunks to evict");
        assert_eq!(server.epoch_number(), epoch_before + 1);
        // The grammar version is untouched: eviction is not an edit.
        assert!(server.resident_bytes() < warm_bytes, "cold epoch is smaller");
        // Work counters carried over (monotone across eviction)...
        let stats = server.stats();
        assert!(stats.graph.total_expansions() >= warm_expansions);
        assert_eq!(stats.merged().chunks_evicted, evicted);
        // ...and the high-water gauge remembers the warm working set.
        assert!(stats.graph.resident_high_water >= warm_bytes);

        // Re-lazification: parses rebuild exactly what they touch.
        assert!(server.parse_text("true or false and true").unwrap().accepted);
        assert!(!server.parse_text("true or").unwrap().accepted);
        assert!(server.stats().graph.total_expansions() > warm_expansions);
        // Accounting rows sum to the total (pointer-keyed, no double count).
        let rows = server.chunk_accounting();
        assert_eq!(
            rows.iter().map(|&(_, b)| b).sum::<usize>(),
            server.resident_bytes()
        );
    }

    #[test]
    fn server_error_display() {
        let e: ServerError = SessionError::UnknownToken("zzz".into()).into();
        assert!(e.to_string().contains("zzz"));
        let s: ServerError = ScanError::UnexpectedCharacter { offset: 1, character: '$' }.into();
        assert!(s.to_string().contains("scan error"));
    }
}
