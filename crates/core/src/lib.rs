//! # ipg — Incremental Parser Generation
//!
//! A from-scratch Rust implementation of **IPG**, the lazy and incremental
//! LR(0) parser generator of *Incremental Generation of Parsers* (J.
//! Heering, P. Klint, J. Rekers; CWI report CS-R8822 / PLDI 1989).
//!
//! The system eliminates the separate parse-table generation phase:
//!
//! * **Lazy generation (§5)** — parsing starts against an item-set graph
//!   that contains only the initial start state; whenever the parser asks
//!   `ACTION` about a state that has not been expanded yet, that single
//!   state is expanded on the spot. Input that exercises only part of the
//!   grammar only ever generates that part of the table.
//! * **Incremental modification (§6)** — `ADD-RULE` / `DELETE-RULE` update
//!   the grammar and invalidate exactly the item sets whose expansion is no
//!   longer valid (those with a transition on the rule's left-hand side).
//!   Everything else is reused; invalidated item sets are re-expanded by
//!   need.
//! * **Garbage collection (§6.2)** — reference counting (plus an optional
//!   mark-and-sweep pass) reclaims item sets that can no longer be reached
//!   after modifications.
//! * **Parallel parsing (§3)** — the tables are driven by the Tomita-style
//!   parsers of `ipg-glr`, so arbitrary context-free grammars are accepted.
//!
//! ## Crate layout
//!
//! | module | paper | contents |
//! |--------|-------|----------|
//! | [`graph`] | §4–§6 | the item-set graph, `EXPAND`, `MODIFY`, GC, and the dense [`ActionRow`] cache shadowing complete item sets |
//! | [`tables`] | §5.1 | lazy `ACTION`/`GOTO` as `ipg_lr::ParserTables` — borrow-based, allocation-free on the steady-state path |
//! | [`session`] | §1, §8 | the interactive language-definition facade |
//! | [`stats`] | §5.2, §7 | work counters and coverage measurements |
//!
//! ## Quick start
//!
//! ```
//! use ipg::IpgSession;
//!
//! let mut session = IpgSession::from_bnf(r#"
//!     B ::= "true" | "false" | B "or" B | B "and" B
//!     START ::= B
//! "#).unwrap();
//!
//! // No generation phase: parsing starts immediately and generates only
//! // the needed parts of the parse table.
//! assert!(session.parse_sentence("true and true").unwrap().accepted);
//! assert!(session.coverage() < 1.0);
//!
//! // Modify the grammar; the existing table is updated, not regenerated.
//! session.add_rule_text(r#"B ::= "unknown""#).unwrap();
//! assert!(session.parse_sentence("unknown or true").unwrap().accepted);
//! ```
//!
//! ## Driving the tables directly
//!
//! `ParserTables::actions_into` fills a reusable [`ipg_lr::ActionCell`] —
//! the reduce set, the optional shift target and the accept flag of one
//! ACTION cell, read from a dense per-state row without allocating (the
//! `actions` convenience below returns a fresh cell):
//!
//! ```
//! use ipg::{ItemSetGraph, LazyTables};
//! use ipg_grammar::fixtures;
//! use ipg_lr::ParserTables;
//!
//! let grammar = fixtures::booleans();
//! let graph = ItemSetGraph::new(&grammar);
//! let tables = LazyTables::new(&grammar, &graph).unwrap();
//!
//! let start = tables.start_state();
//! let tru = grammar.symbol("true").unwrap();
//! let cell = tables.actions(start, tru); // expands the start state
//! assert!(cell.shift.is_some());
//! assert!(cell.reductions.is_empty() && !cell.accept);
//! ```
//!
//! ## Serving many parsers from one graph
//!
//! The table stack is split into a `&self` **read path** (steady-state
//! `ACTION`/`GOTO` queries never block each other) and serialized
//! **writers** (lazy expansion, `MODIFY`, GC). [`IpgServer`] packages the
//! split for multi-threaded use with **grammar epochs**: N threads parse
//! one shared, lazily generated graph, and each modification forks the
//! table state, applies the paper's invalidation privately and publishes
//! the result as a new immutable epoch — in-flight parses finish on the
//! epoch they pinned instead of being drained, and retired epochs are
//! reclaimed once their last reader leaves — see [`server`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod document;
pub mod graph;
pub mod registry;
pub mod server;
pub mod session;
pub mod stats;
pub mod tables;

pub use document::DocumentInfo;
pub use ipg_glr::{ExhaustReason, FaultPlan, ParseBudget};
pub use graph::{
    ActionRow, ChunkHandle, ChunkObserver, GcPolicy, GraphError, ItemSetGraph, ItemSetKind,
    ItemSetNode, CHUNK_SIZE,
};
pub use registry::{GrammarRegistry, RegistryError};
pub use server::{GrammarEpoch, IpgServer, PooledParse, RequestCtx, ServerError, ServerStats};
pub use session::{IpgSession, SessionError};
pub use stats::{GenStats, GraphSize, LatencyHistogram, HISTOGRAM_BUCKETS};
pub use tables::{LazyTables, StaleGraphError};
