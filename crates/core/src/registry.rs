//! `GrammarRegistry`: many grammar tenants under one global byte budget.
//!
//! The paper's laziness makes it cheap for parser state to *not* be
//! resident: anything the lazy expander built once, it can build again on
//! demand. One grammar rarely needs that; thousands do. The registry is
//! the multi-tenant serving layer built on exactly that property — a named
//! collection of [`IpgServer`] tenants whose combined **derived** state
//! (item-set chunks, published ACTION/GOTO rows, materialised DFA snapshot
//! states) is kept under a global byte budget by evicting cold tenants
//! back to their cheap persistent grammars.
//!
//! ## Tenancy lifecycle
//!
//! ```text
//!  attach ──> serve ──> cool ──> evict ──> re-lazify ──> serve ...
//!    │          │         │        │           │
//!    │          │         │        │           └ the next request on an
//!    │          │         │        │             evicted tenant rebuilds
//!    │          │         │        │             exactly the chunks it
//!    │          │         │        │             touches (lazy EXPAND)
//!    │          │         │        └ over budget: the clock hand picks the
//!    │          │         │          least-recently-touched tenant and
//!    │          │         │          publishes a cold epoch
//!    │          │         └ a tenant nobody touches just ages; cooling
//!    │          │           costs nothing
//!    │          └ every request touches the tenant's clock position
//!    └ `attach` / `attach_dialect`: dialects fork a base tenant's epoch
//!      copy-on-write, so shared chunks are resident (and counted) once
//! ```
//!
//! ## Residency and eviction semantics
//!
//! | state                    | resident?                        | evictable? | rebuilt by |
//! |--------------------------|----------------------------------|------------|------------|
//! | grammar rule arena       | yes (cheap, persistent)          | no — it is the source of truth | — |
//! | item-set node chunks     | yes, chunk-granular              | yes        | lazy `EXPAND` on first `ACTION`/`GOTO` miss |
//! | published snapshot rows  | yes, chunk-granular              | yes        | row build + publish on next complete state |
//! | DFA snapshot states      | yes, per state                   | yes        | lazy subset construction on next scan |
//! | chunks shared by dialects| counted **once** (pointer-keyed) | yes (each fork re-lazifies independently) | per-tenant lazy expansion |
//! | retired pinned epochs    | held by their readers            | reclaimed by the deferred sweep, not the registry | — |
//!
//! Eviction is **safe by construction**: it publishes a cold epoch of the
//! same grammar ([`IpgServer::relazify`]), so in-flight parses finish on
//! the warm epoch they pinned and later parses rebuild through the same
//! lazy expander that built the evicted state in the first place. An
//! evicted-then-retouched tenant is digest-equivalent to a never-evicted
//! oracle — the `registry_eviction` proptest harness enforces it.
//!
//! ## Accounting
//!
//! Residency is modeled, chunk-granular and pointer-keyed: every tenant
//! reports `(Arc pointer, modeled bytes)` rows
//! ([`IpgServer::chunk_accounting`]) and the registry sums them **deduped
//! by pointer identity**, so a chunk structurally shared by N dialect
//! forks of one base counts once, not N times. The byte model itself is
//! documented at [`crate::graph::ItemSetGraph::resident_bytes`];
//! per-tenant caches are maintained incrementally at intern/COW/publish
//! time, so a budget-enforcement pass is O(total chunks), never O(nodes).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use ipg_grammar::modules::{GrammarModule, NamedSymbol};

use crate::server::IpgServer;
use crate::session::SessionError;
use crate::stats::GenStats;

/// Errors returned by [`GrammarRegistry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// A tenant with this name is already attached.
    DuplicateName(String),
    /// No tenant with this name (for dialect bases) or id.
    UnknownTenant(String),
    /// A dialect's delta rules failed to apply.
    Session(SessionError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateName(n) => write!(f, "tenant `{n}` already attached"),
            RegistryError::UnknownTenant(n) => write!(f, "unknown tenant `{n}`"),
            RegistryError::Session(e) => write!(f, "dialect rules rejected: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<SessionError> for RegistryError {
    fn from(e: SessionError) -> Self {
        RegistryError::Session(e)
    }
}

/// One attached tenant: a server plus its clock/eviction bookkeeping.
#[derive(Debug)]
struct Tenant {
    name: String,
    server: Arc<IpgServer>,
    /// Logical-clock timestamp of the last touch (request routed here).
    last_touch: AtomicU64,
    /// Set by eviction, cleared by the first post-eviction request; while
    /// set, `after_request` attributes rebuilt chunks to re-lazification.
    evicted: AtomicBool,
    /// Chunk count right after eviction — the baseline the re-lazified
    /// chunk counter is measured against.
    evicted_baseline: AtomicUsize,
}

#[derive(Debug, Default)]
struct RegistryInner {
    by_name: HashMap<String, u32>,
    tenants: Vec<Arc<Tenant>>,
}

/// A named collection of [`IpgServer`] tenants under one global byte
/// budget (see the module docs for lifecycle and semantics).
///
/// `&GrammarRegistry` is `Sync`: the frontend's workers route requests
/// through it concurrently. Attachment takes the registry's write lock;
/// serving takes a momentary read lock plus per-tenant atomics.
#[derive(Debug)]
pub struct GrammarRegistry {
    inner: RwLock<RegistryInner>,
    /// Global budget over the deduped resident bytes of all tenants.
    /// `usize::MAX` disables eviction.
    budget: usize,
    /// Budget-enforcement cadence: one pass per this many completed
    /// requests (an enforcement pass is O(total chunks)).
    sweep_every: usize,
    /// The logical clock: ticks once per routed request.
    clock: AtomicU64,
    /// Completed requests since the last enforcement pass.
    ops_since_sweep: AtomicUsize,
    /// High-water mark of the deduped resident bytes, sampled at every
    /// enforcement pass (the cadence the budget gate is defined over).
    high_water: AtomicUsize,
}

impl GrammarRegistry {
    /// Creates a registry with a global byte budget over the deduped
    /// resident bytes of all tenants, enforced every `sweep_every`
    /// completed requests (clamped to at least 1).
    pub fn new(budget_bytes: usize, sweep_every: usize) -> Self {
        GrammarRegistry {
            inner: RwLock::new(RegistryInner::default()),
            budget: budget_bytes,
            sweep_every: sweep_every.max(1),
            clock: AtomicU64::new(0),
            ops_since_sweep: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
        }
    }

    /// A registry that never evicts (budget `usize::MAX`).
    pub fn unbounded() -> Self {
        Self::new(usize::MAX, usize::MAX)
    }

    /// The global byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of attached tenants.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().tenants.len()
    }

    /// Whether no tenant is attached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attaches a server as a new tenant. Returns the tenant id (dense,
    /// starting at 0 — the wire protocol's tenant field).
    pub fn attach(&self, name: &str, server: IpgServer) -> Result<u32, RegistryError> {
        self.attach_arc(name, Arc::new(server))
    }

    /// [`GrammarRegistry::attach`] for a server that is already shared —
    /// the frontend attaches its pre-existing default server this way
    /// (as tenant 0) without republishing it.
    pub fn attach_shared(
        &self,
        name: &str,
        server: Arc<IpgServer>,
    ) -> Result<u32, RegistryError> {
        self.attach_arc(name, server)
    }

    fn attach_arc(&self, name: &str, server: Arc<IpgServer>) -> Result<u32, RegistryError> {
        let mut inner = self.inner.write().unwrap();
        if inner.by_name.contains_key(name) {
            return Err(RegistryError::DuplicateName(name.to_owned()));
        }
        let id = inner.tenants.len() as u32;
        inner.by_name.insert(name.to_owned(), id);
        inner.tenants.push(Arc::new(Tenant {
            name: name.to_owned(),
            server,
            last_touch: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
            evicted: AtomicBool::new(false),
            evicted_baseline: AtomicUsize::new(0),
        }));
        Ok(id)
    }

    /// Attaches a **dialect** of an existing tenant: forks the base
    /// tenant's current epoch copy-on-write (exactly like a `MODIFY`
    /// fork — O(#chunks) `Arc` clones) and applies `delta_bnf` as
    /// added rules. Chunks untouched by the delta stay shared with the
    /// base and are counted once by the registry's deduped accounting,
    /// so N dialects of one base cost ~1 base plus their deltas.
    ///
    /// The dialect starts with a re-lazified copy of the base's scanner
    /// (same token definitions, cold DFA), if the base has one.
    pub fn attach_dialect(
        &self,
        name: &str,
        base: &str,
        delta_bnf: &str,
    ) -> Result<u32, RegistryError> {
        self.attach_forked(name, base, |session| {
            session.add_rule_text(delta_bnf).map(|_| ())
        })
    }

    /// [`GrammarRegistry::attach_dialect`] with the delta given as an SDF
    /// [`GrammarModule`] (the module system of `ipg-grammar`): every rule
    /// of the module — hidden ones included, the module *is* the dialect —
    /// is added to the base fork, symbols interned by name.
    pub fn attach_dialect_module(
        &self,
        name: &str,
        base: &str,
        module: &GrammarModule,
    ) -> Result<u32, RegistryError> {
        self.attach_forked(name, base, |session| {
            for rule in &module.rules {
                let lhs = session.nonterminal(&rule.lhs);
                let rhs = rule
                    .rhs
                    .iter()
                    .map(|s| match s {
                        NamedSymbol::Terminal(n) => session.terminal(n),
                        NamedSymbol::NonTerminal(n) => session.nonterminal(n),
                    })
                    .collect();
                session.add_rule(lhs, rhs);
            }
            Ok(())
        })
    }

    fn attach_forked(
        &self,
        name: &str,
        base: &str,
        delta: impl FnOnce(&mut crate::session::IpgSession) -> Result<(), SessionError>,
    ) -> Result<u32, RegistryError> {
        let base_tenant = self
            .tenant_by_name(base)
            .ok_or_else(|| RegistryError::UnknownTenant(base.to_owned()))?;
        let epoch = base_tenant.server.current_epoch();
        // The CoW fork: clone shares every chunk Arc; the delta below
        // copies-on-write only the chunks its invalidation touches.
        let mut session = epoch.session().clone();
        delta(&mut session)?;
        // The fork inherits the base tenant's default parse budget: a
        // dialect of a contained tenant is contained too.
        let server = crate::server::IpgServer::new(session)
            .with_default_budget(base_tenant.server.default_budget());
        let server = match epoch.scanner() {
            Some(scanner) => server.with_scanner(scanner.relazified()),
            None => server,
        };
        drop(epoch);
        self.attach_arc(name, Arc::new(server))
    }

    fn tenant(&self, id: u32) -> Option<Arc<Tenant>> {
        self.inner.read().unwrap().tenants.get(id as usize).cloned()
    }

    fn tenant_by_name(&self, name: &str) -> Option<Arc<Tenant>> {
        let inner = self.inner.read().unwrap();
        let &id = inner.by_name.get(name)?;
        inner.tenants.get(id as usize).cloned()
    }

    /// The tenant id attached under `name`, if any.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        self.inner.read().unwrap().by_name.get(name).copied()
    }

    /// The tenant's name, if the id is attached.
    pub fn name_of(&self, id: u32) -> Option<String> {
        self.tenant(id).map(|t| t.name.clone())
    }

    /// Whether the tenant is currently cold — evicted by a budget pass
    /// and not yet retouched. Observability for benches and tests; the
    /// serving path never needs it (evicted tenants serve normally,
    /// rebuilding lazily).
    pub fn is_evicted(&self, id: u32) -> Option<bool> {
        self.tenant(id).map(|t| t.evicted.load(Ordering::Acquire))
    }

    /// Routes a request: touches the tenant's clock position and returns
    /// its server. `None` for unknown ids — the frontend answers `ERROR`
    /// without consuming a worker parse.
    pub fn server(&self, id: u32) -> Option<Arc<IpgServer>> {
        let tenant = self.tenant(id)?;
        tenant
            .last_touch
            .store(self.clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        Some(tenant.server.clone())
    }

    /// Completes a request on tenant `id`: attributes any post-eviction
    /// rebuild to the re-lazified counter and, on the sweep cadence, runs
    /// a budget-enforcement pass. Call after the request's parse work is
    /// done (the frontend's workers do).
    pub fn after_request(&self, id: u32) {
        if let Some(tenant) = self.tenant(id) {
            if tenant.evicted.swap(false, Ordering::AcqRel) {
                let baseline = tenant.evicted_baseline.load(Ordering::Relaxed);
                let rebuilt = tenant
                    .server
                    .chunk_accounting()
                    .len()
                    .saturating_sub(baseline);
                if rebuilt > 0 {
                    tenant.server.note(&GenStats {
                        chunks_relazified: rebuilt,
                        ..GenStats::default()
                    });
                }
            }
        }
        if self.ops_since_sweep.fetch_add(1, Ordering::Relaxed) + 1 >= self.sweep_every {
            self.ops_since_sweep.store(0, Ordering::Relaxed);
            self.enforce_budget();
        }
    }

    /// Deduped resident bytes across all tenants: every accounting row is
    /// keyed by its `Arc` pointer, so a chunk shared by several tenants
    /// (dialect forks of one base) is counted exactly once.
    pub fn resident_bytes(&self) -> usize {
        let tenants: Vec<Arc<Tenant>> = self.inner.read().unwrap().tenants.clone();
        let mut seen: HashMap<usize, usize> = HashMap::new();
        for tenant in &tenants {
            for (ptr, bytes) in tenant.server.chunk_accounting() {
                seen.insert(ptr, bytes);
            }
        }
        seen.values().sum()
    }

    /// High-water mark of the deduped resident bytes, sampled at every
    /// budget-enforcement pass.
    pub fn resident_high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// One budget-enforcement pass: while the deduped resident bytes
    /// exceed the budget, the least-recently-touched non-evicted tenant is
    /// re-lazified ([`IpgServer::relazify`]). Each tenant is evicted at
    /// most once per pass; if every tenant is cold-minimal and the total
    /// still exceeds the budget, the pass stops (the floor is the sum of
    /// the persistent grammars, which are not evictable).
    ///
    /// Runs automatically on the `sweep_every` cadence; public so tests
    /// and benches can force a pass.
    pub fn enforce_budget(&self) {
        let tenants: Vec<Arc<Tenant>> = self.inner.read().unwrap().tenants.clone();
        let mut resident = self.resident_bytes();
        self.high_water.fetch_max(resident, Ordering::Relaxed);
        if resident <= self.budget {
            return;
        }
        let mut by_cold: Vec<&Arc<Tenant>> = tenants
            .iter()
            .filter(|t| !t.evicted.load(Ordering::Acquire))
            .collect();
        by_cold.sort_by_key(|t| t.last_touch.load(Ordering::Relaxed));
        for tenant in by_cold {
            if resident <= self.budget {
                break;
            }
            tenant.server.relazify();
            tenant
                .evicted_baseline
                .store(tenant.server.chunk_accounting().len(), Ordering::Relaxed);
            tenant.evicted.store(true, Ordering::Release);
            resident = self.resident_bytes();
        }
        self.high_water.fetch_max(resident, Ordering::Relaxed);
    }

    /// The registry-wide statistics: every tenant's merged server stats
    /// folded together ([`GenStats::merge`]: counters sum, gauges
    /// max-merge), with the residency gauges overwritten by the
    /// **deduped** registry totals — per-tenant gauges double-count
    /// chunks shared between dialect forks; the registry's don't.
    pub fn stats(&self) -> GenStats {
        let tenants: Vec<Arc<Tenant>> = self.inner.read().unwrap().tenants.clone();
        let mut total = GenStats::default();
        for tenant in &tenants {
            total.merge(&tenant.server.stats().merged());
        }
        let resident = self.resident_bytes();
        self.high_water.fetch_max(resident, Ordering::Relaxed);
        total.resident_bytes = resident;
        total.resident_high_water = self.high_water.load(Ordering::Relaxed);
        total.tenants_active = tenants.len();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::IpgSession;
    use ipg_grammar::fixtures;

    fn boolean_server() -> IpgServer {
        IpgServer::new(IpgSession::new(fixtures::booleans()))
    }

    #[test]
    fn attach_routes_and_rejects_duplicates_and_unknowns() {
        let registry = GrammarRegistry::unbounded();
        assert!(registry.is_empty());
        let a = registry.attach("alpha", boolean_server()).unwrap();
        let b = registry.attach("beta", boolean_server()).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.id_of("beta"), Some(1));
        assert_eq!(registry.name_of(0).as_deref(), Some("alpha"));
        assert!(registry.server(0).is_some());
        assert!(registry.server(7).is_none(), "unknown tenants route nowhere");
        assert_eq!(
            registry.attach("alpha", boolean_server()),
            Err(RegistryError::DuplicateName("alpha".to_owned()))
        );
        assert!(matches!(
            registry.attach_dialect("gamma", "nope", r#"B ::= "x""#),
            Err(RegistryError::UnknownTenant(_))
        ));
        let err = RegistryError::UnknownTenant("nope".to_owned());
        assert!(err.to_string().contains("nope"));
    }

    /// A grammar wide enough that its item-set graph spans several
    /// 512-slot chunks (`S ::= "opI" AI; AI ::= "xI"` for I in 0..n gives
    /// ~3n+1 small states), with deltas that invalidate exactly one state:
    /// the shape where chunk-granular structural sharing pays off.
    fn wide_grammar_bnf(n: usize) -> String {
        let mut text = String::from("START ::= S\n");
        for i in 0..n {
            text.push_str(&format!("S ::= \"op{i}\" A{i}\nA{i} ::= \"x{i}\"\n"));
        }
        text
    }

    #[test]
    fn dialects_share_the_base_working_set() {
        // A warmed wide base and 8 dialects forked from it. Each delta
        // adds one alternative to one `AI` sort, so its invalidation
        // copies-on-write one node chunk (and one snapshot/arena chunk)
        // out of several — everything else stays shared with the base.
        let registry = GrammarRegistry::unbounded();
        let base = IpgServer::new(IpgSession::from_bnf(&wide_grammar_bnf(550)).unwrap());
        registry.attach("base", base).unwrap();
        registry.server(0).unwrap().warm();
        let base_bytes = registry.resident_bytes();
        for i in 0..8 {
            registry
                .attach_dialect(
                    &format!("dialect-{i}"),
                    "base",
                    &format!(r#"A{} ::= "kw{i}""#, i * 31),
                )
                .unwrap();
        }
        let shared_total = registry.resident_bytes();

        // 9 unshared tenants would each hold a full warmed working set of
        // ~base_bytes; the deduped shared total must beat that by >= 2x.
        let independent_total = base_bytes * 9;
        assert!(
            shared_total * 2 < independent_total,
            "shared {shared_total} vs independent {independent_total}: \
             dialect forks must give >= 2x headroom"
        );

        // Dialects actually serve their dialect syntax.
        let d3 = registry.server(registry.id_of("dialect-3").unwrap()).unwrap();
        assert!(d3.parse_sentence(&format!("op{} kw3", 3 * 31)).unwrap().accepted);
        assert!(d3.parse_sentence("kw0").is_err(), "other deltas are not shared");
    }

    #[test]
    fn dialect_modules_apply_their_rules() {
        use ipg_grammar::modules::GrammarModule;
        use NamedSymbol as S;
        let registry = GrammarRegistry::unbounded();
        registry.attach("base", boolean_server()).unwrap();
        let module = GrammarModule::new("Xor")
            .rule("B", vec![S::nt("B"), S::t("xor"), S::nt("B")])
            .hidden_rule("B", vec![S::t("secret")]);
        let id = registry.attach_dialect_module("xor", "base", &module).unwrap();
        let server = registry.server(id).unwrap();
        assert!(server.parse_sentence("true xor false").unwrap().accepted);
        // The module *is* the dialect: hidden rules are included too.
        assert!(server.parse_sentence("secret or true").unwrap().accepted);
    }

    #[test]
    fn over_budget_registries_evict_the_coldest_tenant() {
        // Budget so small that any warmed tenant exceeds it.
        let registry = GrammarRegistry::new(1, 1);
        registry.attach("cold", boolean_server()).unwrap();
        registry.attach("hot", boolean_server()).unwrap();
        registry.server(0).unwrap().warm();
        registry.server(1).unwrap().warm();
        let warm = registry.resident_bytes();

        // Touch order: tenant 0 is the coldest. A completed request on
        // tenant 1 triggers the sweep.
        registry.server(1).unwrap();
        registry.after_request(1);
        assert!(registry.resident_high_water() >= warm);
        let stats = registry.stats();
        assert!(stats.chunks_evicted > 0, "eviction must be visible in stats");
        assert!(stats.resident_bytes < warm, "eviction must shrink residency");
        assert_eq!(stats.tenants_active, 2);

        // The evicted tenant still serves — re-lazification rebuilds what
        // the request touches, and the rebuild is counted.
        let cold = registry.server(0).unwrap();
        assert!(cold.parse_sentence("true and false or true").unwrap().accepted);
        registry.after_request(0);
        assert!(registry.stats().chunks_relazified > 0);
    }

    #[test]
    fn evicted_then_retouched_equals_a_never_evicted_oracle() {
        let registry = GrammarRegistry::new(1, 1);
        registry.attach("t", boolean_server()).unwrap();
        let oracle = boolean_server();
        let sentences = ["true", "true or false", "true and true or false", "or or"];
        for sentence in sentences {
            let server = registry.server(0).unwrap();
            let ours = server.parse_sentence(sentence).unwrap();
            let theirs = oracle.parse_sentence(sentence).unwrap();
            assert_eq!(ours.accepted, theirs.accepted, "`{sentence}`");
            assert_eq!(
                ours.forest.tree_count(100),
                theirs.forest.tree_count(100),
                "`{sentence}`"
            );
            // Every request lands over budget, so every request evicts.
            registry.after_request(0);
        }
        assert!(registry.stats().chunks_evicted > 0);
    }
}
