//! Document sessions: long-lived per-document parse state with
//! incremental re-lex and re-parse on edits.
//!
//! A [`DocumentSession`] (created by [`IpgServer::open_document`]) keeps
//! the whole text→forest pipeline warm between edits:
//!
//! * the text and its character vector;
//! * the lexer's [`MatchRec`] list with per-match examined extents, so an
//!   edit re-lexes only the damaged region and resynchronises with the
//!   old token boundaries (`ipg_lexer::relex`);
//! * the parser's `ParseCtx` (GSS pools + flat forest arena) and
//!   `ParseHistory` (per-token checkpoints), so the GSS re-runs only from
//!   the leftmost damaged token and retained forest subtrees are reused;
//! * the pinned `Arc<GrammarEpoch>` and DFA snapshot the state was built
//!   against.
//!
//! [`IpgServer::apply_edit`] is the hot path: splice, bounded re-lex, GSS
//! resume — O(damage) instead of O(document). Its staleness rule is
//! strict: if the server published any epoch since the session last
//! parsed (grammar `MODIFY`, scanner edit, GC), the edit re-pins the
//! current epoch and rebuilds everything from scratch (`reparse_full`) —
//! match records, token vectors, forests and histories are never spliced
//! across epochs. The same full rebuild covers sessions desynchronised by
//! a scan error (the text edit is applied even when the new text does not
//! lex; parse state catches up on the next lexable edit).
//!
//! Correctness of the incremental path is proven, not assumed: the
//! `incremental_reparse` suite digest-compares every incremental result
//! against a cold parse of the spliced text over random grammars and edit
//! scripts, including edits raced with `MODIFY`.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ipg_glr::{
    ExhaustReason, GssParseResult, GssParser, GssStats, ParseBudget, ParseCtx, ParseHistory,
    ParseOutcome,
};
use ipg_grammar::SymbolId;
use ipg_lexer::{relex, DfaSnapshot, MatchRec, ScanError};

use crate::server::{GrammarEpoch, IpgServer, ServerError};
use crate::stats::GenStats;

/// The state of one open document (see the module docs).
#[derive(Debug)]
struct DocumentSession {
    /// The epoch this session's parse state was built against. Pinned: a
    /// long-lived open document intentionally keeps its epoch's storage
    /// alive until the next edit re-pins (or the document closes).
    epoch: Arc<GrammarEpoch>,
    /// The pinned DFA snapshot re-lexing runs off (refreshed in place on
    /// cache misses, replaced when the epoch is re-pinned).
    pin: Arc<DfaSnapshot>,
    text: String,
    chars: Vec<char>,
    recs: Vec<MatchRec>,
    /// The non-layout terminal sequence (parallel to the non-layout
    /// records; spliced, not rebuilt, on incremental edits).
    tokens: Vec<SymbolId>,
    ctx: ParseCtx,
    history: ParseHistory,
    /// Whether `recs`/`tokens`/`ctx`/`history` describe `text`. False
    /// after a scan error applied the text edit but could not rebuild the
    /// parse state; the next edit rebuilds from scratch.
    synced: bool,
    /// The most recent successful parse outcome (its forest lives in
    /// `ctx`).
    last: ParseOutcome,
}

/// The server's open-document registry. Lives in [`IpgServer`]; the
/// registry lock is held only to look up or insert the per-document
/// `Arc`, so edits to different documents run concurrently and only edits
/// to the *same* document serialize (on that document's own mutex).
#[derive(Debug, Default)]
pub(crate) struct DocRegistry {
    next: AtomicU64,
    map: Mutex<HashMap<u64, Arc<Mutex<DocumentSession>>>>,
}

impl DocRegistry {
    /// Locks the id→session map, recovering from poison: the map itself is
    /// only mutated by whole-entry insert/remove, so a panic elsewhere in a
    /// holder's critical section cannot leave it inconsistent.
    fn lock_map(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<Mutex<DocumentSession>>>> {
        match self.map.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.map.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    fn insert(&self, doc: DocumentSession) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.lock_map().insert(id, Arc::new(Mutex::new(doc)));
        id
    }

    fn get(&self, id: u64) -> Result<Arc<Mutex<DocumentSession>>, ServerError> {
        self.lock_map()
            .get(&id)
            .cloned()
            .ok_or(ServerError::UnknownDocument(id))
    }

    fn remove(&self, id: u64) -> Option<Arc<Mutex<DocumentSession>>> {
        self.lock_map().remove(&id)
    }

    fn len(&self) -> usize {
        self.lock_map().len()
    }
}

/// Locks one document session, recovering from a poisoned mutex: a panic
/// mid-edit (an injected fault, or a real bug unwinding out of the re-lex
/// or GSS resume) leaves the session's incremental state half-updated, so
/// recovery takes the data anyway (`PoisonError::into_inner`), marks the
/// session **desynchronised** — the next edit rebuilds text→tokens→forest
/// from scratch instead of trusting spliced state — and clears the poison
/// flag so the document stays usable instead of erroring forever.
fn lock_doc(doc: &Arc<Mutex<DocumentSession>>) -> std::sync::MutexGuard<'_, DocumentSession> {
    match doc.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            doc.clear_poison();
            let mut guard = poisoned.into_inner();
            guard.synced = false;
            guard
        }
    }
}

/// A point-in-time description of an open document, for observability
/// (and the frontend's replies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DocumentInfo {
    /// Document length in bytes.
    pub bytes: usize,
    /// Number of (non-layout) tokens of the last synced lex.
    pub tokens: usize,
    /// The epoch number the session's parse state is pinned to.
    pub epoch: u64,
    /// Whether the last successful parse accepted the document.
    pub accepted: bool,
    /// Whether the parse state currently describes the text (false after
    /// a scan error until a later edit rebuilds).
    pub synced: bool,
}

impl IpgServer {
    /// Opens a document session: lexes and parses `text` against the
    /// current epoch with checkpoint recording, and registers the state
    /// for incremental edits. Returns the new document id.
    ///
    /// Requires a scanner ([`ServerError::NoScanner`] otherwise). A scan
    /// or unknown-terminal error closes nothing — no session is created.
    pub fn open_document(&self, text: &str) -> Result<u64, ServerError> {
        self.open_document_budgeted(text, self.default_budget())
    }

    /// [`IpgServer::open_document`] under an explicit [`ParseBudget`]. If
    /// the initial parse exhausts the budget no session is created and
    /// [`ServerError::Exhausted`] is returned.
    pub fn open_document_budgeted(
        &self,
        text: &str,
        budget: ParseBudget,
    ) -> Result<u64, ServerError> {
        let started = Instant::now();
        let epoch = self.acquire();
        let Some(scanner) = epoch.scanner() else {
            self.release(epoch);
            return Err(ServerError::NoScanner);
        };
        let pin = scanner.dfa_snapshot();
        let grammar_version = epoch.grammar_version();
        let mut doc = DocumentSession {
            epoch,
            pin,
            text: text.to_owned(),
            chars: Vec::new(),
            recs: Vec::new(),
            tokens: Vec::new(),
            ctx: ParseCtx::new(),
            history: ParseHistory::new(),
            synced: false,
            last: ParseOutcome::Done {
                accepted: false,
                stats: GssStats::default(),
                grammar_version,
            },
        };
        let (_, action_calls, goto_calls) =
            match self.reload_document(&mut doc, budget) {
                Ok(reloaded) => reloaded,
                Err(ServerError::Exhausted(reason)) => {
                    return Err(self.note_doc_exhausted(started, reason));
                }
                Err(e) => return Err(e),
            };
        let id = self.documents.insert(doc);
        let mut delta = GenStats {
            parses: 1,
            action_calls,
            goto_calls,
            ..GenStats::default()
        };
        delta.latency.record(started.elapsed());
        self.note(&delta);
        Ok(id)
    }

    /// Applies one edit — replace bytes `range` of the document with
    /// `replacement` — and re-parses, incrementally when possible (see
    /// the module docs for the full decision ladder). Returns the parse
    /// outcome of the edited document; read the forest back with
    /// [`IpgServer::document_result`].
    ///
    /// On a scan error the text edit **is** applied (the document is the
    /// source of truth) but the parse state is marked desynchronised and
    /// rebuilt by the next edit; the error is returned.
    pub fn apply_edit(
        &self,
        id: u64,
        range: Range<usize>,
        replacement: &str,
    ) -> Result<ParseOutcome, ServerError> {
        self.apply_edit_budgeted(id, range, replacement, self.default_budget())
    }

    /// [`IpgServer::apply_edit`] under an explicit [`ParseBudget`]. A
    /// budget-killed re-parse leaves the text edit applied but the parse
    /// state desynchronised; the next edit rebuilds from scratch.
    pub fn apply_edit_budgeted(
        &self,
        id: u64,
        range: Range<usize>,
        replacement: &str,
        budget: ParseBudget,
    ) -> Result<ParseOutcome, ServerError> {
        let started = Instant::now();
        let doc = self.documents.get(id)?;
        let mut doc = lock_doc(&doc);
        let doc = &mut *doc;
        if range.start > range.end
            || range.end > doc.text.len()
            || !doc.text.is_char_boundary(range.start)
            || !doc.text.is_char_boundary(range.end)
        {
            return Err(ServerError::InvalidRange {
                start: range.start,
                end: range.end,
                len: doc.text.len(),
            });
        }

        // Staleness rule: any epoch published since this session last
        // parsed (grammar MODIFY, scanner edit, GC) forces a full rebuild
        // against a fresh pin — state is never spliced across epochs.
        let stale = doc.epoch.number() != self.epoch_number();
        if stale || !doc.synced {
            doc.text.replace_range(range, replacement);
            if stale {
                let old = std::mem::replace(&mut doc.epoch, self.acquire());
                self.release(old);
            }
            let (outcome, action_calls, goto_calls) =
                match self.reload_document(doc, budget) {
                    Ok(reloaded) => reloaded,
                    Err(ServerError::Exhausted(reason)) => {
                        return Err(self.note_doc_exhausted(started, reason));
                    }
                    Err(e) => return Err(e),
                };
            let mut delta = GenStats {
                parses: 1,
                action_calls,
                goto_calls,
                reparse_full: 1,
                ..GenStats::default()
            };
            delta.latency.record(started.elapsed());
            self.note(&delta);
            return Ok(outcome);
        }

        // Incremental path. The char-coordinate edit is derived from the
        // still-synced records before anything is spliced.
        let edit = relex::char_edit(&doc.recs, &doc.text, range.start, range.end, replacement);
        doc.text.replace_range(range, replacement);
        doc.chars
            .splice(edit.char_start..edit.char_end, replacement.chars());

        let epoch = doc.epoch.clone();
        let scanner = epoch
            .scanner()
            .expect("synced session implies a scanner-backed epoch");
        ipg_glr::fault::point("relex");
        let relexed = scanner.relex_splice(&mut doc.pin, &mut doc.recs, &doc.chars, edit);
        let rel = match relexed {
            Ok(rel) => rel,
            Err(e) => return Err(self.desync(doc, started, e)),
        };

        // Map the re-lexed records to grammar terminals and splice the
        // token vector.
        let slots = epoch.terminal_slots();
        let mut new_syms: Vec<SymbolId> = Vec::with_capacity(rel.new_tokens);
        for rec in &doc.recs[rel.first_damaged..rel.first_damaged + rel.relexed] {
            if rec.layout {
                continue;
            }
            match slots.get(rec.slot).copied().flatten() {
                Some(symbol) => new_syms.push(symbol),
                None => {
                    let e = ScanError::UnknownTerminal {
                        name: scanner
                            .slot(rec.slot)
                            .map(|def| def.name.clone())
                            .unwrap_or_default(),
                    };
                    return Err(self.desync(doc, started, e));
                }
            }
        }
        let damage = rel.tokens_before_damage;
        let removed_end = damage + rel.old_tokens_removed;
        if new_syms.len() == rel.old_tokens_removed && doc.tokens[damage..removed_end] == new_syms {
            // Token-identical splice (layout-only edit, or a replacement
            // lexing to the very same terminals): the parse — forest,
            // history and all — is still exact. Nothing re-runs.
            let mut delta = GenStats {
                parses: 1,
                reparse_incremental: 1,
                tokens_relexed: rel.relexed,
                ..GenStats::default()
            };
            delta.latency.record(started.elapsed());
            self.note(&delta);
            return Ok(doc.last);
        }
        doc.tokens.splice(damage..removed_end, new_syms);

        let tables = epoch.session().tables();
        let parser = GssParser::new(epoch.session().grammar());
        let (outcome, _resumed) = parser.parse_resumed_budgeted(
            &mut doc.ctx,
            &tables,
            &doc.tokens,
            &mut doc.history,
            damage,
            budget,
        );
        let (action_calls, goto_calls) = tables.query_counts();
        drop(tables);
        if let Some(reason) = outcome.exhausted() {
            // The splice already happened, so the GSS/history state is a
            // half-advanced hybrid: desynchronise and rebuild next edit.
            doc.synced = false;
            return Err(self.note_doc_exhausted(started, reason));
        }
        doc.last = outcome;
        let mut delta = GenStats {
            parses: 1,
            action_calls,
            goto_calls,
            reparse_incremental: 1,
            tokens_relexed: rel.relexed,
            states_rerun: outcome.stats().nodes,
            ..GenStats::default()
        };
        delta.latency.record(started.elapsed());
        self.note(&delta);
        Ok(outcome)
    }

    /// The last successful parse of the document, with an owned copy of
    /// its forest. After an edit that returned a scan error this is still
    /// the pre-error result (the parse state did not advance).
    pub fn document_result(&self, id: u64) -> Result<GssParseResult, ServerError> {
        let doc = self.documents.get(id)?;
        let doc = lock_doc(&doc);
        Ok(doc.last.into_result(doc.ctx.forest().clone()))
    }

    /// The document's current text (always reflects every applied edit,
    /// including ones whose re-parse failed).
    pub fn document_text(&self, id: u64) -> Result<String, ServerError> {
        Ok(lock_doc(&self.documents.get(id)?).text.clone())
    }

    /// A point-in-time description of an open document.
    pub fn document_info(&self, id: u64) -> Result<DocumentInfo, ServerError> {
        let doc = self.documents.get(id)?;
        let doc = lock_doc(&doc);
        Ok(DocumentInfo {
            bytes: doc.text.len(),
            tokens: doc.tokens.len(),
            epoch: doc.epoch.number(),
            accepted: doc.last.accepted(),
            synced: doc.synced,
        })
    }

    /// Closes a document session, dropping its state and releasing its
    /// epoch pin (a stale pinned epoch becomes reclaimable here).
    pub fn close_document(&self, id: u64) -> Result<(), ServerError> {
        let doc = self
            .documents
            .remove(id)
            .ok_or(ServerError::UnknownDocument(id))?;
        let epoch = match Arc::try_unwrap(doc) {
            // Closing a session whose last holder panicked mid-edit is
            // still fine — only the pin is read out of the wreckage.
            Ok(mutex) => mutex.into_inner().unwrap_or_else(|p| p.into_inner()).epoch,
            // A concurrent reader still holds the session `Arc`; it drops
            // the pin when it finishes.
            Err(arc) => lock_doc(&arc).epoch.clone(),
        };
        self.release(epoch);
        Ok(())
    }

    /// Number of currently open document sessions.
    pub fn open_documents(&self) -> usize {
        self.documents.len()
    }

    /// Full rebuild of a session's parse state from its text against its
    /// pinned epoch: re-pin the DFA snapshot, lex everything, map tokens,
    /// parse with checkpoint recording. Returns the outcome plus the
    /// table query counts. On error the session stays desynchronised.
    fn reload_document(
        &self,
        doc: &mut DocumentSession,
        budget: ParseBudget,
    ) -> Result<(ParseOutcome, usize, usize), ServerError> {
        doc.synced = false;
        let epoch = doc.epoch.clone();
        let scanner = epoch.scanner().ok_or(ServerError::NoScanner)?;
        doc.pin = scanner.dfa_snapshot();
        doc.chars.clear();
        let text: &str = &doc.text;
        doc.chars.extend(text.chars());
        scanner.lex_records(&mut doc.pin, &doc.chars, &mut doc.recs)?;
        doc.tokens.clear();
        let slots = epoch.terminal_slots();
        for rec in doc.recs.iter().filter(|rec| !rec.layout) {
            match slots.get(rec.slot).copied().flatten() {
                Some(symbol) => doc.tokens.push(symbol),
                None => {
                    return Err(ServerError::Scan(ScanError::UnknownTerminal {
                        name: scanner
                            .slot(rec.slot)
                            .map(|def| def.name.clone())
                            .unwrap_or_default(),
                    }))
                }
            }
        }
        let tables = epoch.session().tables();
        let parser = GssParser::new(epoch.session().grammar());
        let outcome = parser.parse_recorded_budgeted(
            &mut doc.ctx,
            &tables,
            &doc.tokens,
            &mut doc.history,
            budget,
        );
        let (action_calls, goto_calls) = tables.query_counts();
        drop(tables);
        if let Some(reason) = outcome.exhausted() {
            // `synced` stays false: a budget-killed rebuild left a partial
            // GSS behind, and the next edit retries the full reload.
            return Err(ServerError::Exhausted(reason));
        }
        doc.last = outcome;
        doc.synced = true;
        Ok((outcome, action_calls, goto_calls))
    }

    /// Records a budget-killed document parse — served, counted, and the
    /// caller is told exactly why — and builds its error.
    fn note_doc_exhausted(&self, started: Instant, reason: ExhaustReason) -> ServerError {
        let mut delta = GenStats {
            parses: 1,
            ..GenStats::default()
        };
        match reason {
            ExhaustReason::Deadline => delta.parses_cancelled = 1,
            _ => delta.parses_exhausted = 1,
        }
        delta.latency.record(started.elapsed());
        self.note(&delta);
        ServerError::Exhausted(reason)
    }

    /// Marks a session desynchronised after a failed re-lex and records
    /// the served (but unparsed) edit.
    fn desync(&self, doc: &mut DocumentSession, started: Instant, e: ScanError) -> ServerError {
        doc.synced = false;
        let mut delta = GenStats {
            parses: 1,
            ..GenStats::default()
        };
        delta.latency.record(started.elapsed());
        self.note(&delta);
        ServerError::Scan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boolean_server() -> IpgServer {
        IpgServer::from_bnf(
            r#"
            B ::= "true" | "false" | B "or" B | B "and" B
            START ::= B
        "#,
        )
        .unwrap()
        .with_scanner(ipg_lexer::simple_scanner(&["true", "false", "or", "and"]))
    }

    /// Digest for exact comparison: acceptance, roots, tree count, first
    /// tree shape.
    fn digest(r: &GssParseResult) -> (bool, usize, usize, Option<String>) {
        (
            r.accepted,
            r.forest.roots().len(),
            r.forest.tree_count(64),
            r.forest.first_tree().map(|t| format!("{t:?}")),
        )
    }

    #[test]
    fn open_edit_close_lifecycle() {
        let server = boolean_server();
        let id = server.open_document("true or false").unwrap();
        assert_eq!(server.open_documents(), 1);
        let info = server.document_info(id).unwrap();
        assert!(info.accepted && info.synced);
        assert_eq!(info.tokens, 3);

        // `false` -> `true and true`.
        let outcome = server.apply_edit(id, 8..13, "true and true").unwrap();
        assert!(outcome.accepted());
        assert_eq!(server.document_text(id).unwrap(), "true or true and true");
        let cold = server.parse_text("true or true and true").unwrap();
        assert_eq!(digest(&server.document_result(id).unwrap()), digest(&cold));

        server.close_document(id).unwrap();
        assert_eq!(server.open_documents(), 0);
        assert!(matches!(
            server.document_result(id),
            Err(ServerError::UnknownDocument(_))
        ));
    }

    #[test]
    fn incremental_edits_are_counted_and_equivalent() {
        let server = boolean_server();
        let id = server.open_document("true or false and true").unwrap();
        for (range, repl) in [
            (8..13, "true"),     // replace a token
            (0..0, "false or "), // insert at front
            (5..6, "  "),        // whitespace-only edit
            (0..10, ""),         // delete the first clause again
        ] {
            server.apply_edit(id, range, repl).unwrap();
            let text = server.document_text(id).unwrap();
            let cold = server.parse_text(&text).unwrap();
            assert_eq!(
                digest(&server.document_result(id).unwrap()),
                digest(&cold),
                "text `{text}`"
            );
        }
        let stats = server.stats().merged();
        assert_eq!(stats.reparse_incremental, 4);
        assert_eq!(stats.reparse_full, 0);
        assert!(stats.tokens_relexed > 0);
        server.close_document(id).unwrap();
    }

    #[test]
    fn stale_epoch_forces_full_reparse() {
        let server = boolean_server();
        let id = server.open_document("true or false").unwrap();
        server.add_rule_text(r#"B ::= "true" "true""#).unwrap();
        let outcome = server.apply_edit(id, 8..13, "true true").unwrap();
        assert!(outcome.accepted(), "new rule is visible after the fallback");
        let stats = server.stats().merged();
        assert_eq!(stats.reparse_full, 1);
        assert_eq!(stats.reparse_incremental, 0);
        assert_eq!(
            server.document_info(id).unwrap().epoch,
            server.epoch_number()
        );
        server.close_document(id).unwrap();
    }

    #[test]
    fn scan_error_then_fix_recovers_via_full_reparse() {
        let server = boolean_server();
        let id = server.open_document("true or false").unwrap();
        assert!(matches!(
            server.apply_edit(id, 4..4, "%"),
            Err(ServerError::Scan(ScanError::UnexpectedCharacter { character: '%', .. }))
        ));
        assert_eq!(server.document_text(id).unwrap(), "true% or false");
        assert!(!server.document_info(id).unwrap().synced);
        // The old result is still served.
        assert!(server.document_result(id).unwrap().accepted);
        // Removing the bad character rebuilds from scratch.
        let outcome = server.apply_edit(id, 4..5, "").unwrap();
        assert!(outcome.accepted());
        assert!(server.document_info(id).unwrap().synced);
        assert_eq!(server.stats().merged().reparse_full, 1);
        server.close_document(id).unwrap();
    }

    #[test]
    fn invalid_ranges_are_rejected_without_mutation() {
        let server = boolean_server();
        let id = server.open_document("true or false").unwrap();
        for (start, end) in [(5, 4), (0, 999), (999, 1000)] {
            assert!(matches!(
                server.apply_edit(id, start..end, "x"),
                Err(ServerError::InvalidRange { .. })
            ));
        }
        assert_eq!(server.document_text(id).unwrap(), "true or false");
        assert!(server.document_info(id).unwrap().synced);
        server.close_document(id).unwrap();
    }

    #[test]
    fn unknown_document_operations_error() {
        let server = boolean_server();
        assert!(matches!(
            server.apply_edit(7, 0..0, "x"),
            Err(ServerError::UnknownDocument(7))
        ));
        assert!(matches!(
            server.close_document(7),
            Err(ServerError::UnknownDocument(7))
        ));
        assert!(matches!(
            server.document_text(7),
            Err(ServerError::UnknownDocument(7))
        ));
    }

    #[test]
    fn open_document_without_scanner_errors() {
        let server = IpgServer::from_bnf(
            r#"
            B ::= "true"
            START ::= B
        "#,
        )
        .unwrap();
        assert_eq!(server.open_document("true"), Err(ServerError::NoScanner));
        assert_eq!(server.open_documents(), 0);
    }

    #[test]
    fn closing_a_document_releases_its_stale_epoch() {
        let server = boolean_server();
        let id = server.open_document("true").unwrap();
        server.add_rule_text(r#"B ::= "maybe""#).unwrap();
        // The stale epoch is still pinned by the open session.
        assert_eq!(server.retired_epochs(), 1);
        server.close_document(id).unwrap();
        assert_eq!(server.retired_epochs(), 0, "close released the pin");
    }

    /// Satellite 1: a panic *while holding the document mutex* (injected
    /// into the re-lex) poisons the lock; the next edit must recover —
    /// desync + full rebuild — instead of erroring forever.
    #[test]
    fn poisoned_document_recovers_via_full_rebuild() {
        let server = boolean_server();
        let id = server.open_document("true or false").unwrap();

        ipg_glr::FaultPlan::new().fail("relex", 1).arm_scoped();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = server.apply_edit(id, 8..13, "true");
        }));
        ipg_glr::fault::disarm();
        assert!(panicked.is_err(), "injected fault should unwind");
        assert_eq!(ipg_glr::fault::injected(), 1);

        // The panic left the session mutex poisoned with half-spliced
        // text/chars. Reads recover and report desync...
        assert!(!server.document_info(id).unwrap().synced);
        // ...and the next edit rebuilds from scratch and is equivalent to
        // a cold parse of the final text.
        let outcome = server.apply_edit(id, 0..4, "false").unwrap();
        assert!(outcome.accepted());
        let text = server.document_text(id).unwrap();
        let cold = server.parse_text(&text).unwrap();
        assert_eq!(digest(&server.document_result(id).unwrap()), digest(&cold));
        assert!(server.stats().merged().reparse_full >= 1);
        server.close_document(id).unwrap();
    }

    /// A budget-killed incremental re-parse desynchronises the session and
    /// the next (budgeted-enough) edit recovers with a full rebuild.
    #[test]
    fn exhausted_edit_desyncs_then_recovers() {
        let server = boolean_server();
        let id = server.open_document("true or false").unwrap();
        let starved = ParseBudget::default().with_fuel(1);
        let tail = "true and true or false and true or true and false or true";
        let err = server
            .apply_edit_budgeted(id, 8..13, tail, starved)
            .unwrap_err();
        assert!(matches!(err, ServerError::Exhausted(_)));
        // Text is the source of truth; parse state is behind.
        assert_eq!(server.document_text(id).unwrap(), format!("true or {tail}"));
        assert!(!server.document_info(id).unwrap().synced);
        let stats = server.stats().merged();
        assert_eq!(stats.parses_exhausted, 1);

        let outcome = server.apply_edit(id, 0..0, "false or ").unwrap();
        assert!(outcome.accepted());
        assert!(server.document_info(id).unwrap().synced);
        let text = server.document_text(id).unwrap();
        let cold = server.parse_text(&text).unwrap();
        assert_eq!(digest(&server.document_result(id).unwrap()), digest(&cold));
        server.close_document(id).unwrap();
    }
}
