//! The lazily generated, incrementally maintained graph of item sets — the
//! heart of IPG (§5 and §6 of the paper).
//!
//! Every set of items lives in an arena and goes through the life cycle
//!
//! ```text
//! initial --EXPAND--> complete --MODIFY--> initial            (no GC)
//! initial --EXPAND--> complete --MODIFY--> dirty --RE-EXPAND--> complete   (refcount GC)
//! ```
//!
//! * `EXPAND` (§4/§5) computes the closure of the kernel, creates successor
//!   kernels and records transitions and reductions;
//! * `MODIFY` (§6.1) adds or deletes a grammar rule and invalidates exactly
//!   the complete item sets that had a transition on the rule's left-hand
//!   side (plus the start item set when the rule defines `START`);
//! * reference-count garbage collection (§6.2) reclaims item sets that are
//!   no longer referenced after a re-expansion; an optional mark-and-sweep
//!   pass (suggested by the paper as future work) handles cycles.

use std::collections::{BTreeMap, HashMap};

use ipg_grammar::{Grammar, GrammarError, RuleId, SymbolId};
use ipg_lr::itemset::{closure, completed_items, partition_by_next_symbol, start_kernel, ItemSet};
use ipg_lr::{Item, StateId};

use crate::stats::{GenStats, GraphSize};

/// The life-cycle stage of a set of items (the paper's `type` field).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ItemSetKind {
    /// The kernel is known but transitions and reductions have not been
    /// computed yet.
    Initial,
    /// The item set was complete, but a grammar modification invalidated
    /// it. Its *old* transitions are retained so that reference counts can
    /// be adjusted when it is re-expanded (§6.2).
    Dirty,
    /// Transitions and reductions are valid for the current grammar.
    Complete,
}

/// Garbage-collection policy for item sets that become unreachable after
/// grammar modifications.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GcPolicy {
    /// §6.1: invalidated item sets become `Initial`; nothing is ever
    /// reclaimed ("when everything is retained, we end up with too much
    /// garbage").
    Retain,
    /// §6.2: invalidated item sets become `Dirty`; reference counting
    /// reclaims item sets whose count drops to zero after re-expansion.
    #[default]
    RefCount,
    /// Reference counting plus a mark-and-sweep pass whenever the fraction
    /// of dirty/garbage item sets exceeds the given percentage (0–100) of
    /// the graph — the paper's suggested remedy for cyclic references.
    RefCountWithSweep {
        /// Sweep when `100 * (live - reachable) / live` exceeds this value.
        threshold_percent: u8,
    },
}

/// A dense, symbol-indexed shadow of a complete item set's transitions —
/// the action-row cache of the lazy tables (the §5.1 `ACTION`/`GOTO` hot
/// path). One `u32` per interned symbol maps the symbol to its shift/GOTO
/// target (`0` = no edge), so a steady-state table query is a single array
/// load instead of a `BTreeMap` walk, with zero heap allocation.
///
/// A row's validity is tied to the life cycle of the item set it shadows:
/// it is built lazily on the first query after the node becomes `Complete`
/// and dropped the moment the node is invalidated by `MODIFY` or replaced
/// by `RE-EXPAND` — exactly when the underlying expansion itself becomes
/// invalid (§6 semantics).
#[derive(Clone, Debug)]
pub struct ActionRow {
    /// Grammar version at build time (diagnostic; validity is structural).
    version: u64,
    /// `symbol index -> target state + 1`, `0` meaning no transition.
    targets: Vec<u32>,
}

impl ActionRow {
    /// The shift/GOTO target recorded for `symbol`, if any. Symbols
    /// interned after the row was built read as "no transition", which is
    /// correct: the node cannot have grown an edge on them without being
    /// re-expanded (which drops the row).
    #[inline]
    pub fn target(&self, symbol: SymbolId) -> Option<StateId> {
        match self.targets.get(symbol.index()) {
            Some(&t) if t != 0 => Some(StateId(t - 1)),
            _ => None,
        }
    }

    /// The grammar version the row was built against.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// One set of items in the graph.
#[derive(Clone, Debug)]
pub struct ItemSetNode {
    /// Identity of the node (index in the arena; stable for the lifetime of
    /// the graph, even across garbage collection).
    pub id: StateId,
    /// The kernel: the dotted rules that are potentially being recognised.
    pub kernel: ItemSet,
    /// Life-cycle stage.
    pub kind: ItemSetKind,
    /// Closure of the kernel (valid when `Complete`; retained on `Dirty`).
    pub closure: ItemSet,
    /// Outgoing edges (valid when `Complete`; the *old* edges when `Dirty`).
    pub transitions: BTreeMap<SymbolId, StateId>,
    /// Rules that may be reduced in this state (valid when `Complete`).
    pub reductions: Vec<RuleId>,
    /// Whether this state has the `($ accept)` transition.
    pub accepting: bool,
    /// Number of transitions from live item sets that point here.
    pub refcount: usize,
    /// `false` once the node has been reclaimed by a garbage collector.
    pub alive: bool,
    /// Dense table-row cache over `transitions`; `None` until the first
    /// query after (re-)expansion, dropped on every invalidation.
    pub row: Option<ActionRow>,
}

impl ItemSetNode {
    fn new(id: StateId, kernel: ItemSet) -> Self {
        ItemSetNode {
            id,
            kernel,
            kind: ItemSetKind::Initial,
            closure: ItemSet::new(),
            transitions: BTreeMap::new(),
            reductions: Vec::new(),
            accepting: false,
            refcount: 0,
            alive: true,
            row: None,
        }
    }

    /// `true` when the node still needs (re-)expansion before its
    /// transitions and reductions may be consulted.
    pub fn needs_expansion(&self) -> bool {
        self.kind != ItemSetKind::Complete
    }
}

/// The lazily generated graph of item sets.
#[derive(Clone, Debug)]
pub struct ItemSetGraph {
    nodes: Vec<ItemSetNode>,
    /// Kernel → node index for all *live* nodes; used by `EXPAND` to share
    /// item sets ("if a set of items with kernel kernel' does not yet
    /// exist, it is generated").
    kernel_index: HashMap<ItemSet, StateId>,
    start: StateId,
    gc: GcPolicy,
    stats: GenStats,
    grammar_version: u64,
    /// Scratch for `RE-EXPAND`'s old-target snapshot (reused, not
    /// reallocated per re-expansion).
    scratch_targets: Vec<StateId>,
    /// Scratch for `expand_all`'s pending list.
    scratch_pending: Vec<StateId>,
    /// Scratch work-stack for iterative `DECR-REFCOUNT`.
    gc_stack: Vec<StateId>,
}

impl ItemSetGraph {
    /// The paper's lazy `GENERATE-PARSER` (§5.1): creates only the start
    /// item set, as an initial set of items.
    pub fn new(grammar: &Grammar) -> Self {
        Self::with_policy(grammar, GcPolicy::default())
    }

    /// Like [`ItemSetGraph::new`] with an explicit garbage-collection
    /// policy.
    pub fn with_policy(grammar: &Grammar, gc: GcPolicy) -> Self {
        let mut graph = ItemSetGraph {
            nodes: Vec::new(),
            kernel_index: HashMap::new(),
            start: StateId(0),
            gc,
            stats: GenStats::default(),
            grammar_version: grammar.version(),
            scratch_targets: Vec::new(),
            scratch_pending: Vec::new(),
            gc_stack: Vec::new(),
        };
        let start = graph.intern_kernel(start_kernel(grammar));
        graph.start = start;
        graph
    }

    /// The state in which parsing starts.
    pub fn start_state(&self) -> StateId {
        self.start
    }

    /// The garbage-collection policy in force.
    pub fn gc_policy(&self) -> GcPolicy {
        self.gc
    }

    /// The grammar version the graph currently corresponds to. Updated by
    /// [`ItemSetGraph::add_rule`] / [`ItemSetGraph::remove_rule`].
    pub fn grammar_version(&self) -> u64 {
        self.grammar_version
    }

    /// Work counters.
    pub fn stats(&self) -> &GenStats {
        &self.stats
    }

    /// Borrow a node (dead nodes remain accessible for post-mortems).
    pub fn node(&self, id: StateId) -> &ItemSetNode {
        &self.nodes[id.index()]
    }

    /// Iterates over the live nodes.
    pub fn live_nodes(&self) -> impl Iterator<Item = &ItemSetNode> {
        self.nodes.iter().filter(|n| n.alive)
    }

    /// Number of live nodes.
    pub fn num_live(&self) -> usize {
        self.live_nodes().count()
    }

    /// Size snapshot of the graph.
    pub fn size(&self) -> GraphSize {
        let mut size = GraphSize::default();
        for node in self.live_nodes() {
            size.total += 1;
            match node.kind {
                ItemSetKind::Initial => size.initial += 1,
                ItemSetKind::Dirty => size.dirty += 1,
                ItemSetKind::Complete => size.complete += 1,
            }
            if node.kind != ItemSetKind::Initial {
                size.transitions += node.transitions.len();
            }
        }
        size
    }

    fn intern_kernel(&mut self, kernel: ItemSet) -> StateId {
        if let Some(&id) = self.kernel_index.get(&kernel) {
            return id;
        }
        let id = StateId::from_index(self.nodes.len());
        self.kernel_index.insert(kernel.clone(), id);
        self.nodes.push(ItemSetNode::new(id, kernel));
        self.stats.nodes_created += 1;
        id
    }

    /// Ensures the node's transitions and reductions are valid for the
    /// current grammar: the lazy `ACTION`'s "if state.type = initial then
    /// EXPAND(state)", extended with `RE-EXPAND` for dirty nodes.
    pub fn ensure_expanded(&mut self, grammar: &Grammar, id: StateId) {
        match self.nodes[id.index()].kind {
            ItemSetKind::Complete => {}
            ItemSetKind::Initial => self.expand(grammar, id),
            ItemSetKind::Dirty => self.re_expand(grammar, id),
        }
    }

    /// The paper's `EXPAND`: transform an initial set of items into a
    /// complete one.
    fn expand(&mut self, grammar: &Grammar, id: StateId) {
        self.stats.expansions += 1;
        self.expand_common(grammar, id);
    }

    /// The paper's `RE-EXPAND` (§6.2): expand a dirty set of items, then
    /// release the references its old transitions held.
    fn re_expand(&mut self, grammar: &Grammar, id: StateId) {
        self.stats.re_expansions += 1;
        let mut old_targets = std::mem::take(&mut self.scratch_targets);
        old_targets.clear();
        old_targets.extend(self.nodes[id.index()].transitions.values().copied());
        self.expand_common(grammar, id);
        if self.refcounting() {
            for &target in &old_targets {
                self.decr_refcount(target);
            }
        }
        self.scratch_targets = old_targets;
    }

    fn expand_common(&mut self, grammar: &Grammar, id: StateId) {
        self.stats.closures += 1;
        let kernel = self.nodes[id.index()].kernel.clone();
        let closed = closure(grammar, &kernel);
        let successors = partition_by_next_symbol(grammar, &closed);

        let mut transitions = BTreeMap::new();
        for (symbol, succ_kernel) in successors {
            let target = self.intern_kernel(succ_kernel);
            transitions.insert(symbol, target);
            if self.refcounting() {
                self.nodes[target.index()].refcount += 1;
            }
        }

        let mut reductions = Vec::new();
        let mut accepting = false;
        for item in completed_items(grammar, &closed) {
            // A completed item of a rule that has been deleted from the
            // grammar must not be reported as a reduction; such items can
            // linger in the kernels of stale (unreachable) item sets.
            if !grammar.is_active(item.rule) {
                continue;
            }
            if grammar.rule(item.rule).lhs == grammar.start_symbol() {
                accepting = true;
            } else {
                reductions.push(item.rule);
            }
        }
        reductions.sort();
        reductions.dedup();

        let node = &mut self.nodes[id.index()];
        node.closure = closed;
        node.transitions = transitions;
        node.reductions = reductions;
        node.accepting = accepting;
        node.kind = ItemSetKind::Complete;
        // The dense row shadows the (old) transitions; rebuild on demand.
        node.row = None;
    }

    /// Builds the dense [`ActionRow`] of a complete node if it is missing.
    /// The row is the steady-state `ACTION`/`GOTO` fast path: after this,
    /// table queries for the node are array loads with no allocation.
    ///
    /// # Panics
    /// Debug-asserts that the node is `Complete`; rows of initial/dirty
    /// nodes would shadow invalid transitions.
    pub fn ensure_row(&mut self, grammar: &Grammar, id: StateId) {
        let num_symbols = grammar.symbols().len();
        let version = grammar.version();
        let node = &mut self.nodes[id.index()];
        debug_assert_eq!(
            node.kind,
            ItemSetKind::Complete,
            "action rows only shadow complete item sets"
        );
        if node.row.is_some() {
            return;
        }
        let mut targets = vec![0u32; num_symbols];
        for (&symbol, &target) in &node.transitions {
            targets[symbol.index()] = target.0 + 1;
        }
        node.row = Some(ActionRow { version, targets });
        self.stats.rows_built += 1;
    }

    /// The dense action row of a node, if one has been built and is valid.
    pub fn action_row(&self, id: StateId) -> Option<&ActionRow> {
        self.nodes[id.index()].row.as_ref()
    }

    fn refcounting(&self) -> bool {
        !matches!(self.gc, GcPolicy::Retain)
    }

    /// The paper's `DECR-REFCOUNT`: release one reference to `id`; if the
    /// count drops to zero the node is reclaimed and the references *it*
    /// holds are released in turn. Iterative over a reused work stack, so
    /// deep release chains neither recurse nor allocate in steady state.
    fn decr_refcount(&mut self, id: StateId) {
        let mut stack = std::mem::take(&mut self.gc_stack);
        debug_assert!(stack.is_empty());
        stack.push(id);
        while let Some(id) = stack.pop() {
            if id == self.start {
                continue; // the start item set is never collected
            }
            let idx = id.index();
            let node = &mut self.nodes[idx];
            if !node.alive {
                continue;
            }
            node.refcount = node.refcount.saturating_sub(1);
            if node.refcount > 0 {
                continue;
            }
            node.alive = false;
            // A dead node is never queried again; free its row (the
            // largest per-node allocation) immediately.
            node.row = None;
            self.stats.nodes_collected += 1;
            // Only remove the index entry if it still points at this node
            // (a newer live node may have reused the kernel).
            if self.kernel_index.get(&self.nodes[idx].kernel) == Some(&id) {
                self.kernel_index.remove(&self.nodes[idx].kernel);
            }
            if self.nodes[idx].kind != ItemSetKind::Initial {
                stack.extend(self.nodes[idx].transitions.values().copied());
            }
        }
        self.gc_stack = stack;
    }

    /// Adds `lhs ::= rhs` to the grammar and updates the graph — the
    /// paper's `ADD-RULE`.
    pub fn add_rule(&mut self, grammar: &mut Grammar, lhs: SymbolId, rhs: Vec<SymbolId>) -> RuleId {
        let rule = grammar.add_rule(lhs, rhs);
        self.modify(grammar, lhs, rule, true);
        rule
    }

    /// Deletes `lhs ::= rhs` from the grammar and updates the graph — the
    /// paper's `DELETE-RULE`.
    pub fn remove_rule(
        &mut self,
        grammar: &mut Grammar,
        lhs: SymbolId,
        rhs: &[SymbolId],
    ) -> Result<RuleId, GrammarError> {
        let rule = grammar.remove_rule_matching(lhs, rhs)?;
        self.modify(grammar, lhs, rule, false);
        Ok(rule)
    }

    /// The paper's `MODIFY`: after the grammar has been updated, invalidate
    /// every complete item set whose expansion is no longer correct. These
    /// are exactly the complete item sets with a transition on the rule's
    /// left-hand side, plus the start item set when the rule defines
    /// `START`.
    fn modify(&mut self, grammar: &Grammar, lhs: SymbolId, rule: RuleId, added: bool) {
        self.stats.modifications += 1;
        self.grammar_version = grammar.version();
        let invalidated_kind = if self.refcounting() {
            ItemSetKind::Dirty
        } else {
            ItemSetKind::Initial
        };

        if lhs == grammar.start_symbol() {
            // The start item set's kernel is derived from the START rules;
            // keep it in sync and re-expand it lazily.
            let start = self.start;
            let node = &mut self.nodes[start.index()];
            let item = Item::start(rule);
            if added {
                node.kernel.insert(item);
            } else {
                node.kernel.remove(&item);
            }
            if node.kind == ItemSetKind::Complete {
                node.kind = invalidated_kind;
                node.row = None;
                self.stats.invalidations += 1;
            } else if node.kind == ItemSetKind::Initial && invalidated_kind == ItemSetKind::Initial
            {
                // Already initial: nothing to do.
            }
            // Keep the kernel index in sync with the changed kernel.
            self.kernel_index.retain(|_, &mut v| v != start);
            self.kernel_index
                .insert(self.nodes[start.index()].kernel.clone(), start);
        } else {
            // Invalidate in place: the cached action rows are dropped in
            // the same breath as the item sets they shadow.
            for node in self.nodes.iter_mut() {
                if node.alive
                    && node.kind == ItemSetKind::Complete
                    && node.transitions.contains_key(&lhs)
                {
                    node.kind = invalidated_kind;
                    node.row = None;
                    self.stats.invalidations += 1;
                }
            }
        }

        self.maybe_sweep(grammar);
    }

    /// Runs a mark-and-sweep pass if the policy asks for one and the
    /// garbage fraction exceeds its threshold.
    fn maybe_sweep(&mut self, grammar: &Grammar) {
        let GcPolicy::RefCountWithSweep { threshold_percent } = self.gc else {
            return;
        };
        let live = self.num_live();
        if live == 0 {
            return;
        }
        let reachable = self.reachable_from_start();
        let garbage = live.saturating_sub(reachable.len());
        if garbage * 100 > threshold_percent as usize * live {
            self.mark_and_sweep(grammar);
        }
    }

    fn reachable_from_start(&self) -> Vec<StateId> {
        let mut marked = vec![false; self.nodes.len()];
        let mut stack = vec![self.start];
        marked[self.start.index()] = true;
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id.index()];
            if node.kind == ItemSetKind::Initial {
                continue;
            }
            for &target in node.transitions.values() {
                if self.nodes[target.index()].alive && !marked[target.index()] {
                    marked[target.index()] = true;
                    stack.push(target);
                }
            }
        }
        marked
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(i, _)| StateId::from_index(i))
            .collect()
    }

    /// Mark-and-sweep collection: reclaims every live item set that is not
    /// reachable from the start item set, and recomputes reference counts.
    /// This is the paper's proposed answer to cyclic references that
    /// reference counting alone cannot reclaim.
    pub fn mark_and_sweep(&mut self, _grammar: &Grammar) {
        self.stats.sweeps += 1;
        let reachable = self.reachable_from_start();
        let mut keep = vec![false; self.nodes.len()];
        for id in &reachable {
            keep[id.index()] = true;
        }
        for (i, &keep_node) in keep.iter().enumerate() {
            if self.nodes[i].alive && !keep_node {
                self.nodes[i].alive = false;
                self.nodes[i].row = None;
                self.stats.nodes_swept += 1;
                if self.kernel_index.get(&self.nodes[i].kernel) == Some(&StateId::from_index(i)) {
                    self.kernel_index.remove(&self.nodes[i].kernel);
                }
            }
        }
        // Recompute reference counts over the surviving graph. The edge map
        // of each node is moved out for the duration of its scan, which
        // lets the targets be bumped without collecting the edges into a
        // temporary vector first.
        for node in &mut self.nodes {
            node.refcount = 0;
        }
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive || self.nodes[i].kind == ItemSetKind::Initial {
                continue;
            }
            let transitions = std::mem::take(&mut self.nodes[i].transitions);
            for &target in transitions.values() {
                if self.nodes[target.index()].alive {
                    self.nodes[target.index()].refcount += 1;
                }
            }
            self.nodes[i].transitions = transitions;
        }
    }

    /// Forces the complete expansion of the graph (every reachable item
    /// set). Afterwards the graph is equivalent to the conventionally
    /// generated automaton — useful for tests and for the "PG via IPG"
    /// comparison.
    pub fn expand_all(&mut self, grammar: &Grammar) {
        let mut pending = std::mem::take(&mut self.scratch_pending);
        loop {
            pending.clear();
            pending.extend(
                self.nodes
                    .iter()
                    .filter(|n| n.alive && n.needs_expansion())
                    .map(|n| n.id),
            );
            if pending.is_empty() {
                break;
            }
            for &id in &pending {
                if self.nodes[id.index()].alive && self.nodes[id.index()].needs_expansion() {
                    self.ensure_expanded(grammar, id);
                }
            }
        }
        self.scratch_pending = pending;
    }

    /// Renders the live part of the graph in the style of the paper's item
    /// set diagrams.
    pub fn render(&self, grammar: &Grammar) -> String {
        let mut out = String::new();
        for node in self.live_nodes() {
            let kind = match node.kind {
                ItemSetKind::Initial => "initial",
                ItemSetKind::Dirty => "dirty",
                ItemSetKind::Complete => "complete",
            };
            out.push_str(&format!("item set {} ({kind}, rc={}):\n", node.id, node.refcount));
            for item in &node.kernel {
                out.push_str(&format!("    {}\n", item.display(grammar)));
            }
            if node.kind == ItemSetKind::Complete {
                for (&sym, &target) in &node.transitions {
                    out.push_str(&format!("    --{}--> {}\n", grammar.name(sym), target));
                }
                for &rule in &node.reductions {
                    out.push_str(&format!(
                        "    reduce {}\n",
                        grammar.rule(rule).display(grammar.symbols())
                    ));
                }
                if node.accepting {
                    out.push_str("    --$--> accept\n");
                }
            }
        }
        out
    }

    /// Declares that the grammar changed in a way that does not affect the
    /// graph (e.g. new symbols were interned but no rule was added or
    /// removed). Rule modifications must go through
    /// [`ItemSetGraph::add_rule`] / [`ItemSetGraph::remove_rule`] instead.
    pub fn acknowledge_non_structural_change(&mut self, grammar: &Grammar) {
        self.grammar_version = grammar.version();
    }

    /// Record an `ACTION` call in the statistics (called by the lazy
    /// tables).
    pub(crate) fn note_action_call(&mut self) {
        self.stats.action_calls += 1;
    }

    /// Record a `GOTO` call in the statistics (called by the lazy tables).
    pub(crate) fn note_goto_call(&mut self) {
        self.stats.goto_calls += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;

    #[test]
    fn new_graph_contains_only_the_initial_start_state() {
        // Fig. 5.1(a): after (lazy) generation the graph consists of the
        // start item set only, with type initial.
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        assert_eq!(graph.num_live(), 1);
        let start = graph.node(graph.start_state());
        assert_eq!(start.kind, ItemSetKind::Initial);
        assert_eq!(start.kernel.len(), 1);
        assert!(start.needs_expansion());
    }

    #[test]
    fn expanding_the_start_state_matches_fig_51b() {
        let g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.ensure_expanded(&g, graph.start_state());
        // Fig. 5.1(b): the start state plus three initial successors
        // (on B, true, false).
        assert_eq!(graph.num_live(), 4);
        let start = graph.node(graph.start_state());
        assert_eq!(start.kind, ItemSetKind::Complete);
        assert_eq!(start.transitions.len(), 3);
        assert_eq!(graph.stats().expansions, 1);
        let size = graph.size();
        assert_eq!(size.complete, 1);
        assert_eq!(size.initial, 3);
    }

    #[test]
    fn full_expansion_matches_conventional_automaton() {
        let g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let conventional = ipg_lr::Lr0Automaton::build(&g);
        assert_eq!(graph.num_live(), conventional.num_states());
        // Every kernel of the conventional automaton exists in the graph.
        for state in conventional.states() {
            assert!(
                graph.live_nodes().any(|n| n.kernel == state.kernel),
                "kernel missing: {:?}",
                state.kernel
            );
        }
    }

    #[test]
    fn add_rule_invalidates_states_with_transition_on_lhs() {
        // §6.1 / Fig. 6.4: adding `B ::= unknown` makes the item sets with
        // a transition on B initial/dirty again (states 0, 4, 5 in the
        // paper's numbering).
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let before = graph.num_live();
        let b = g.symbol("B").unwrap();
        let unknown = g.terminal("unknown");
        graph.add_rule(&mut g, b, vec![unknown]);
        let invalidated = graph
            .live_nodes()
            .filter(|n| n.kind != ItemSetKind::Complete)
            .count();
        assert_eq!(invalidated, 3, "exactly the three states with a B transition");
        assert_eq!(graph.num_live(), before, "nothing is thrown away yet");
        assert_eq!(graph.stats().invalidations, 3);
    }

    #[test]
    fn re_expansion_after_addition_reconnects_and_extends_the_graph() {
        // Fig. 6.5: re-expanding item set 0 re-establishes its old
        // connections and creates the new `B ::= unknown .` item set.
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let unknown = g.terminal("unknown");
        graph.add_rule(&mut g, b, vec![unknown]);
        graph.ensure_expanded(&g, graph.start_state());
        let start = graph.node(graph.start_state());
        assert_eq!(start.kind, ItemSetKind::Complete);
        assert!(start.transitions.contains_key(&unknown));
        assert_eq!(start.transitions.len(), 4);
        // The old successors were re-used, not regenerated.
        assert!(graph.stats().re_expansions >= 1);
    }

    #[test]
    fn start_rule_modification_updates_the_start_kernel() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        // Add `START ::= E` (with E ::= id so the grammar stays valid).
        let e = g.nonterminal("E");
        let id = g.terminal("id");
        graph.add_rule(&mut g, e, vec![id]);
        let start_sym = g.start_symbol();
        graph.add_rule(&mut g, start_sym, vec![e]);
        let start = graph.node(graph.start_state());
        assert_eq!(start.kernel.len(), 2);
        assert!(start.needs_expansion());
        graph.ensure_expanded(&g, graph.start_state());
        assert!(graph.node(graph.start_state()).transitions.contains_key(&e));
    }

    #[test]
    fn delete_rule_then_reexpand_drops_the_transition() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let fa = g.symbol("false").unwrap();
        graph.remove_rule(&mut g, b, &[fa]).unwrap();
        graph.ensure_expanded(&g, graph.start_state());
        let start = graph.node(graph.start_state());
        assert!(!start.transitions.contains_key(&fa));
        assert_eq!(start.transitions.len(), 2);
    }

    #[test]
    fn deleting_a_missing_rule_is_an_error_and_leaves_the_graph_intact() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let or = g.symbol("or").unwrap();
        let before = graph.stats().modifications;
        assert!(graph.remove_rule(&mut g, b, &[or]).is_err());
        assert_eq!(graph.stats().modifications, before);
        assert!(graph.live_nodes().all(|n| n.kind == ItemSetKind::Complete));
    }

    #[test]
    fn refcount_gc_reclaims_unreachable_states() {
        // Deleting `B ::= B and B` and re-expanding everything reachable
        // leaves the `and`-successor states unreferenced; with refcount GC
        // they are reclaimed once their referrers are re-expanded.
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::with_policy(&g, GcPolicy::RefCount);
        graph.expand_all(&g);
        let full = graph.num_live();
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.expand_all(&g);
        assert!(graph.stats().nodes_collected > 0, "GC reclaimed something");
        assert!(graph.num_live() < full);
    }

    #[test]
    fn retain_policy_keeps_everything() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::with_policy(&g, GcPolicy::Retain);
        graph.expand_all(&g);
        let full = graph.num_live();
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.expand_all(&g);
        assert_eq!(graph.stats().nodes_collected, 0);
        assert!(graph.num_live() >= full);
    }

    #[test]
    fn mark_and_sweep_reclaims_unreachable_states() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::with_policy(&g, GcPolicy::Retain);
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.expand_all(&g);
        let before_sweep = graph.num_live();
        graph.mark_and_sweep(&g);
        assert!(graph.num_live() < before_sweep);
        assert!(graph.stats().nodes_swept > 0);
        assert_eq!(graph.stats().sweeps, 1);
    }

    #[test]
    fn fig62_addition_is_handled_like_fig63() {
        // §6: adding `A ::= b` to the grammar of Fig. 6.2 invalidates item
        // set 3 (the one with a transition on A); re-expansion replaces its
        // `b`-successor by a new item set with kernel {B ::= b ., A ::= b .}
        // while the old `B ::= b .` item set survives for the other branch.
        let mut g = fixtures::fig62();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let a_sym = g.symbol("A").unwrap();
        let b_tok = g.symbol("b").unwrap();
        let rule_b = g.symbol("B").unwrap();
        graph.add_rule(&mut g, a_sym, vec![b_tok]);
        // Only the state with a transition on A is invalidated.
        let invalidated: Vec<_> = graph
            .live_nodes()
            .filter(|n| n.kind != ItemSetKind::Complete)
            .collect();
        assert_eq!(invalidated.len(), 1);
        assert!(invalidated[0].transitions.contains_key(&a_sym));
        graph.expand_all(&g);
        // There is now an item set whose kernel holds both completed rules
        // `B ::= b .` and `A ::= b .`.
        let double = graph.live_nodes().find(|n| {
            n.kernel.len() == 2
                && n.kernel
                    .iter()
                    .all(|i| i.is_complete(&g) && g.rule(i.rule).rhs == vec![b_tok])
        });
        assert!(double.is_some(), "merged b-successor item set exists");
        // And the plain `B ::= b .` item set still exists for the other branch.
        let single = graph.live_nodes().any(|n| {
            n.kernel.len() == 1
                && n.kernel.iter().all(|i| {
                    i.is_complete(&g) && g.rule(i.rule).lhs == rule_b && g.rule(i.rule).rhs == vec![b_tok]
                })
        });
        assert!(single, "original B ::= b . item set survives");
    }

    #[test]
    fn sweep_policy_reclaims_garbage() {
        let mut g = fixtures::booleans();
        let mut graph =
            ItemSetGraph::with_policy(&g, GcPolicy::RefCountWithSweep { threshold_percent: 10 });
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        let or = g.symbol("or").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.remove_rule(&mut g, b, &[b, or, b]).unwrap();
        graph.expand_all(&g);
        assert!(graph.stats().total_collected() > 0);
        // A final sweep reduces the live graph to exactly the automaton of
        // the reduced grammar (reference counting alone may leave cyclic
        // garbage behind, which is precisely why the paper suggests the
        // sweep).
        graph.mark_and_sweep(&g);
        let conventional = ipg_lr::Lr0Automaton::build(&g);
        assert_eq!(graph.num_live(), conventional.num_states());
        assert!(graph.live_nodes().all(|n| n.refcount > 0 || n.id == graph.start_state()));
    }

    #[test]
    fn render_mentions_kinds_and_transitions() {
        let g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.ensure_expanded(&g, graph.start_state());
        let text = graph.render(&g);
        assert!(text.contains("complete"));
        assert!(text.contains("initial"));
        assert!(text.contains("--true-->"));
    }
}
