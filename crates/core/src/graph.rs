//! The lazily generated, incrementally maintained graph of item sets — the
//! heart of IPG (§5 and §6 of the paper) — in a **shared-table** design:
//! any number of parser threads may *read* the graph concurrently while
//! expansion and `MODIFY` remain serialized writes.
//!
//! Every set of items lives in an arena and goes through the life cycle
//!
//! ```text
//! initial --EXPAND--> complete --MODIFY--> initial            (no GC)
//! initial --EXPAND--> complete --MODIFY--> dirty --RE-EXPAND--> complete   (refcount GC)
//! ```
//!
//! * `EXPAND` (§4/§5) computes the closure of the kernel, creates successor
//!   kernels and records transitions and reductions;
//! * `MODIFY` (§6.1) adds or deletes a grammar rule and invalidates exactly
//!   the complete item sets that had a transition on the rule's left-hand
//!   side (plus the start item set when the rule defines `START`);
//! * reference-count garbage collection (§6.2) reclaims item sets that are
//!   no longer referenced after a re-expansion; an optional mark-and-sweep
//!   pass (suggested by the paper as future work) handles cycles.
//!
//! ## Concurrency design
//!
//! Node storage is a **persistent chunk store**: node `id` lives in slot
//! `id % 64` of chunk `id / 64`, and each chunk is an immutable-once-shared
//! `Arc<NodeChunk>`. The steady-state read path (the lazy tables) never
//! touches the store at all — it reads the epoch-published
//! [`TableSnapshot`] — while the accessor methods (`try_node`, `size`, …)
//! take one store-wide `RwLock` read.
//!
//! All structural mutation (EXPAND / RE-EXPAND / row publication / MODIFY /
//! GC) is funnelled through one internal `Mutex` (the *writer*), which
//! additionally owns the kernel index, the work counters and the reusable
//! scratch buffers; node writes go through the store's write lock and
//! **copy a chunk on write** only when it is still shared with another
//! fork. Lock order is always inner mutex → store lock → published lock,
//! one at a time, so writers serialize among themselves and cannot
//! deadlock.
//!
//! ## Bulk expansion (parallel warm)
//!
//! Steady-state misses and `MODIFY` keep the serialized writer above —
//! one state at a time, latency-bound. Bulk cold-start expansion
//! ([`ItemSetGraph::expand_all_parallel`]) instead splits each expansion
//! into its **read-only half** — clone the kernel, compute the closure,
//! partition successors, collect reductions (`compute_expansion`) — and
//! its **write half** — intern successor kernels, bump refcounts, write
//! the node (`commit_expansion_locked`). Warm then runs *pipelined
//! rounds*: the pending frontier is collected in id order and its kernels
//! are cloned out of the store, the read-only halves fan out over N
//! worker threads (pure functions of grammar + kernel, no graph locks),
//! and the committer consumes results in frontier order *as they arrive*
//! (`RoundQueue`), so interning overlaps with the remaining closures
//! instead of waiting for the whole round. Because closure depends only
//! on the grammar and the kernel, and kernels are interned in exactly the
//! order the serial loop would have used, the resulting graph — state
//! numbering, kernel index, rows — is **bit-identical** to a serial warm
//! (property-tested). Row publication
//! parallelises the same way: chunks are unshared serially, then disjoint
//! chunk slices are filled concurrently and published in one snapshot
//! swap. The whole warm holds the writer mutex, so it serializes with
//! `MODIFY` like any other writer; frontiers smaller than
//! `PARALLEL_EXPAND_MIN_BATCH` expand inline, so chain-shaped grammars
//! never pay a spawn.
//!
//! ## Forking (epoch publication)
//!
//! `Clone` forks the graph *structurally shared*: it clones O(#chunks)
//! `Arc`s (the chunk pointers, the sharded kernel index, the published
//! snapshot), not the nodes. The §6 invalidation pass of a `MODIFY`
//! running on the fork then copies-on-write exactly the chunks that hold
//! invalidated states — publication cost is O(invalidated states) plus
//! O(#chunks) pointer bumps, independent of how large the graph has
//! grown. Retired epochs keep the old chunk `Arc`s alive until their last
//! reader leaves, at which point only the chunks *not* shared with any
//! live epoch are freed (chunk-granular reclamation).
//!
//! To find the states to invalidate without scanning every node, each
//! chunk carries a conservative summary of the symbols on which its live
//! complete nodes have transitions; `MODIFY` consults the summaries and
//! descends only into chunks that may contain the edited left-hand side.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};

use ipg_grammar::{Grammar, GrammarError, RuleId, SymbolId};
use ipg_lr::itemset::{closure, completed_items, partition_by_next_symbol, start_kernel, ItemSet};
use ipg_lr::{Item, StateId};

use crate::stats::{GenStats, GraphSize};

/// The life-cycle stage of a set of items (the paper's `type` field).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ItemSetKind {
    /// The kernel is known but transitions and reductions have not been
    /// computed yet.
    Initial,
    /// The item set was complete, but a grammar modification invalidated
    /// it. Its *old* transitions are retained so that reference counts can
    /// be adjusted when it is re-expanded (§6.2).
    Dirty,
    /// Transitions and reductions are valid for the current grammar.
    Complete,
}

/// Garbage-collection policy for item sets that become unreachable after
/// grammar modifications.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GcPolicy {
    /// §6.1: invalidated item sets become `Initial`; nothing is ever
    /// reclaimed ("when everything is retained, we end up with too much
    /// garbage").
    Retain,
    /// §6.2: invalidated item sets become `Dirty`; reference counting
    /// reclaims item sets whose count drops to zero after re-expansion.
    #[default]
    RefCount,
    /// Reference counting plus a mark-and-sweep pass whenever the fraction
    /// of dirty/garbage item sets exceeds the given percentage (0–100) of
    /// the graph — the paper's suggested remedy for cyclic references.
    RefCountWithSweep {
        /// Sweep when `100 * (live - reachable) / live` exceeds this value.
        threshold_percent: u8,
    },
}

/// Frontier rounds smaller than this are expanded inline even when the
/// caller asked for a parallel warm: spawning workers costs more than a
/// handful of closures, and chain-shaped grammars (whose frontier is one
/// or two kernels wide per round) should warm exactly like the serial
/// path.
const PARALLEL_EXPAND_MIN_BATCH: usize = 8;

/// Fills the dense action rows of every live complete node in one storage
/// chunk (which the caller has made unique). Free function so the parallel
/// warm can run it on worker threads against disjoint chunks.
fn build_rows_in_chunk(chunk: &mut NodeChunk, num_symbols: usize, version: u64) -> usize {
    let mut built = 0;
    let mut added = 0;
    for node in chunk.nodes.iter_mut() {
        if !(node.alive && node.kind == ItemSetKind::Complete) || node.row.is_some() {
            continue;
        }
        let mut targets = vec![0u32; num_symbols];
        for (&symbol, &target) in &node.transitions {
            targets[symbol.index()] = target.0 + 1;
        }
        added += std::mem::size_of::<ActionRow>() + targets.len() * 4;
        node.row = Some(ActionRow { version, targets });
        built += 1;
    }
    chunk.bytes += added;
    built
}

/// Assembles the published read-view of one storage chunk (row/reduction
/// clones into fresh `Arc`s). Free function so snapshot rebuilds can run
/// it chunk-parallel.
fn snap_chunk_of(chunk: &NodeChunk) -> Arc<SnapChunk> {
    let mut entries: SnapChunk = vec![None; CHUNK_SIZE];
    for (slot, node) in chunk.nodes.iter().enumerate() {
        let (Some(row), true) = (&node.row, node.alive && node.kind == ItemSetKind::Complete)
        else {
            continue;
        };
        entries[slot] = Some(Arc::new(PublishedState {
            row: row.clone(),
            reductions: node.reductions.clone(),
            accepting: node.accepting,
        }));
    }
    Arc::new(entries)
}

/// The result of the read-only half of `EXPAND` (closure, successor
/// partition, reduction analysis), computed without touching the writer
/// state. Workers of the parallel warm produce these concurrently; the
/// serial commit step interns the successor kernels and writes the node.
struct ComputedExpansion {
    closed: ItemSet,
    successors: BTreeMap<SymbolId, ItemSet>,
    reductions: Vec<RuleId>,
    accepting: bool,
}

/// The read-only half of `EXPAND` as a pure function of the grammar and a
/// kernel: closure, successor partition and reduction analysis. The
/// parallel warm clones the frontier's kernels out of the store up front
/// and hands them to workers through this function, so the fan-out touches
/// no graph locks at all.
fn compute_expansion_of(grammar: &Grammar, kernel: &ItemSet) -> ComputedExpansion {
    let closed = closure(grammar, kernel);
    let successors = partition_by_next_symbol(grammar, &closed);

    let mut reductions = Vec::new();
    let mut accepting = false;
    for item in completed_items(grammar, &closed) {
        // A completed item of a rule that has been deleted from the
        // grammar must not be reported as a reduction; such items can
        // linger in the kernels of stale (unreachable) item sets.
        if !grammar.is_active(item.rule) {
            continue;
        }
        if grammar.rule(item.rule).lhs == grammar.start_symbol() {
            accepting = true;
        } else {
            reductions.push(item.rule);
        }
    }
    reductions.sort();
    reductions.dedup();
    ComputedExpansion {
        closed,
        successors,
        reductions,
        accepting,
    }
}

/// Hand-off queue of one parallel-warm round: workers deposit the computed
/// expansion of frontier slot `i` as soon as it is ready, and the committer
/// consumes the slots strictly in frontier order, blocking only when the
/// next slot in line has not been produced yet. This pipelines the serial
/// commit (kernel interning, refcount bumps, node writes) with the
/// concurrent closure computation — round wall-clock is
/// `max(compute / workers, commit)` instead of their sum.
struct RoundQueue {
    cursor: AtomicUsize,
    slots: Mutex<Vec<Option<ComputedExpansion>>>,
    ready: Condvar,
}

impl RoundQueue {
    fn new(len: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(len, || None);
        RoundQueue {
            cursor: AtomicUsize::new(0),
            slots: Mutex::new(slots),
            ready: Condvar::new(),
        }
    }

    /// Claims the next unclaimed frontier index, or `None` when every
    /// index of the round has been handed out.
    fn claim(&self, len: usize) -> Option<usize> {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        (i < len).then_some(i)
    }

    fn deposit(&self, i: usize, computed: ComputedExpansion) {
        let mut slots = self.slots.lock().unwrap();
        slots[i] = Some(computed);
        self.ready.notify_all();
    }

    /// Blocks until slot `i` has been deposited, then takes it.
    fn take(&self, i: usize) -> ComputedExpansion {
        let mut slots = self.slots.lock().unwrap();
        loop {
            if let Some(computed) = slots[i].take() {
                return computed;
            }
            slots = self.ready.wait(slots).unwrap();
        }
    }
}

/// Errors reported by the public node accessors of the shared graph.
///
/// A server that hands `StateId`s across grammar modifications can end up
/// holding stale ids; resolving them must be an error, not a panic that
/// poisons the shared graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The id does not name any node of this graph.
    UnknownState(StateId),
    /// The node existed but has been reclaimed by garbage collection.
    CollectedState(StateId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownState(id) => write!(f, "state {id} does not exist in this graph"),
            GraphError::CollectedState(id) => {
                write!(f, "state {id} has been reclaimed by garbage collection")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A dense, symbol-indexed shadow of a complete item set's transitions —
/// the action-row cache of the lazy tables (the §5.1 `ACTION`/`GOTO` hot
/// path). One `u32` per interned symbol maps the symbol to its shift/GOTO
/// target (`0` = no edge), so a steady-state table query is a single array
/// load instead of a `BTreeMap` walk, with zero heap allocation.
///
/// A row's validity is tied to the life cycle of the item set it shadows:
/// it is built lazily on the first query after the node becomes `Complete`
/// and dropped the moment the node is invalidated by `MODIFY` or replaced
/// by `RE-EXPAND` — exactly when the underlying expansion itself becomes
/// invalid (§6 semantics).
#[derive(Clone, Debug)]
pub struct ActionRow {
    /// Grammar version at build time (diagnostic; validity is structural).
    version: u64,
    /// `symbol index -> target state + 1`, `0` meaning no transition.
    targets: Vec<u32>,
}

impl ActionRow {
    /// The shift/GOTO target recorded for `symbol`, if any. Symbols
    /// interned after the row was built read as "no transition", which is
    /// correct: the node cannot have grown an edge on them without being
    /// re-expanded (which drops the row).
    #[inline]
    pub fn target(&self, symbol: SymbolId) -> Option<StateId> {
        match self.targets.get(symbol.index()) {
            Some(&t) if t != 0 => Some(StateId(t - 1)),
            _ => None,
        }
    }

    /// The grammar version the row was built against.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// The immutable, published read-view of one complete state: its dense
/// row, reduce set and accept flag. Entries are shared via `Arc` between
/// the graph and any number of pinned reader snapshots.
#[derive(Debug)]
pub(crate) struct PublishedState {
    pub(crate) row: ActionRow,
    pub(crate) reductions: Vec<RuleId>,
    pub(crate) accepting: bool,
}

/// One chunk of the published snapshot: the entries of [`CHUNK_SIZE`]
/// consecutive state ids, always padded to full length.
type SnapChunk = Vec<Option<Arc<PublishedState>>>;

/// An immutable snapshot of every published state, indexed by state id.
///
/// This is the *epoch* half of the read/expand split: the writer publishes
/// a fresh `Arc<TableSnapshot>` whenever it materialises (or retracts) a
/// row, and each `LazyTables` handle pins one snapshot and serves all its
/// steady-state queries from it with **no locking or atomics at all**.
/// Pinning is sound because everything that could make a published entry
/// *wrong* — `MODIFY`, mark-and-sweep — requires `&mut ItemSetGraph`,
/// which the borrow checker refuses while any handle (a `&` borrow) is
/// alive. The one `&self` writer that retracts entries, refcount GC
/// during re-expansion, only collects states unreachable under the
/// current grammar — a parse in flight holds published predecessors
/// (whose refcounts pin their successors), so it can never be directed
/// into a collected state. Concurrent lazy expansion only ever *adds*
/// entries, which a pinned reader picks up by refreshing on a miss.
///
/// Entries live in `Arc`'d chunks mirroring the node store, so successor
/// epochs share the snapshot chunks of untouched states and `MODIFY`
/// retracts invalidated entries by copying only the affected chunks.
#[derive(Debug, Default)]
pub(crate) struct TableSnapshot {
    chunks: Vec<Arc<SnapChunk>>,
    /// Cached modeled bytes of every published entry, maintained at each
    /// publish/retract/rebuild (see the byte-accounting section below).
    bytes: usize,
}

impl TableSnapshot {
    #[inline]
    pub(crate) fn get(&self, id: StateId) -> Option<&PublishedState> {
        self.chunks
            .get(id.index() >> CHUNK_BITS)
            .and_then(|chunk| chunk[id.index() & (CHUNK_SIZE - 1)].as_deref())
    }
}

/// One set of items in the graph.
#[derive(Clone, Debug)]
pub struct ItemSetNode {
    /// Identity of the node (index in the arena; stable for the lifetime of
    /// the graph, even across garbage collection).
    pub id: StateId,
    /// The kernel: the dotted rules that are potentially being recognised.
    pub kernel: ItemSet,
    /// Life-cycle stage.
    pub kind: ItemSetKind,
    /// Closure of the kernel (valid when `Complete`; retained on `Dirty`).
    pub closure: ItemSet,
    /// Outgoing edges (valid when `Complete`; the *old* edges when `Dirty`).
    pub transitions: BTreeMap<SymbolId, StateId>,
    /// Rules that may be reduced in this state (valid when `Complete`).
    pub reductions: Vec<RuleId>,
    /// Whether this state has the `($ accept)` transition.
    pub accepting: bool,
    /// Number of transitions from live item sets that point here.
    pub refcount: usize,
    /// `false` once the node has been reclaimed by a garbage collector.
    pub alive: bool,
    /// Dense table-row cache over `transitions`; `None` until the first
    /// query after (re-)expansion, dropped on every invalidation.
    pub row: Option<ActionRow>,
}

impl ItemSetNode {
    fn new(id: StateId, kernel: ItemSet) -> Self {
        ItemSetNode {
            id,
            kernel,
            kind: ItemSetKind::Initial,
            closure: ItemSet::new(),
            transitions: BTreeMap::new(),
            reductions: Vec::new(),
            accepting: false,
            refcount: 0,
            alive: true,
            row: None,
        }
    }

    /// `true` when the node still needs (re-)expansion before its
    /// transitions and reductions may be consulted.
    pub fn needs_expansion(&self) -> bool {
        self.kind != ItemSetKind::Complete
    }
}

/// log2 of the nodes-per-chunk count.
const CHUNK_BITS: usize = 9;
/// Nodes per storage chunk. The trade: a fork (and a retired epoch's
/// drop) costs one `Arc` refcount touch per chunk, while an invalidated
/// state costs one chunk copy-on-write — item-set nodes are small (a few
/// one-node B-trees), so copying a 512-node chunk is ~1µs. 512 keeps the
/// per-edit `Arc`-traffic term flat far past the 5000-production mark the
/// `publish-scaling` bench tracks, while a `MODIFY` still copies only the
/// chunks its invalidations land in.
pub const CHUNK_SIZE: usize = 1 << CHUNK_BITS;

#[inline]
fn chunk_of(id: StateId) -> usize {
    (id.0 as usize) >> CHUNK_BITS
}

#[inline]
fn slot_of(id: StateId) -> usize {
    (id.0 as usize) & (CHUNK_SIZE - 1)
}

// ----------------------------------------------------------------------
// Byte accounting (the residency model)
//
// Every storage chunk and the published snapshot carry a cached byte
// count so a registry can enforce a global budget without walking nodes.
// The model is *self-consistent*, not allocator-exact: collection
// overheads are folded into per-entry constants, and `Vec` spare
// capacity is ignored. What the accounting guarantees — and what the
// exactness test holds it to — is that the incrementally maintained
// counters equal a fresh walk of the same model over the live
// structures, after any sequence of EXPAND / MODIFY / GC / publication.
// ----------------------------------------------------------------------

/// Modeled bytes of one `BTreeSet<Item>` entry: the item plus amortized
/// tree-node overhead.
const ITEM_ENTRY_BYTES: usize = std::mem::size_of::<Item>() + 16;
/// Modeled bytes of one `BTreeMap<SymbolId, StateId>` entry.
const MAP_ENTRY_BYTES: usize = std::mem::size_of::<(SymbolId, StateId)>() + 16;
/// Modeled bytes of an `Arc` allocation header (strong + weak counts).
const ARC_HEADER_BYTES: usize = 16;

/// Modeled resident bytes of one node: its inline slot plus every heap
/// allocation hanging off it. O(1) — only lengths are consulted.
fn node_heap_bytes(node: &ItemSetNode) -> usize {
    std::mem::size_of::<ItemSetNode>()
        + node.kernel.len() * ITEM_ENTRY_BYTES
        + node.closure.len() * ITEM_ENTRY_BYTES
        + node.transitions.len() * MAP_ENTRY_BYTES
        + node.reductions.len() * std::mem::size_of::<RuleId>()
        + node
            .row
            .as_ref()
            .map_or(0, |row| std::mem::size_of::<ActionRow>() + row.targets.len() * 4)
}

/// Fresh (non-cached) walk of one chunk's modeled bytes — the oracle the
/// incrementally maintained `NodeChunk::bytes` is tested against.
fn chunk_bytes_of(chunk: &NodeChunk) -> usize {
    chunk.nodes.iter().map(node_heap_bytes).sum()
}

/// Modeled resident bytes of one published entry (its `Arc` allocation).
fn published_state_bytes(entry: &PublishedState) -> usize {
    ARC_HEADER_BYTES
        + std::mem::size_of::<PublishedState>()
        + entry.row.targets.len() * 4
        + entry.reductions.len() * std::mem::size_of::<RuleId>()
}

/// Fresh walk of one snapshot chunk's modeled bytes.
fn snap_chunk_bytes(chunk: &SnapChunk) -> usize {
    chunk.iter().flatten().map(|e| published_state_bytes(e)).sum()
}

/// One `Arc`-shared storage chunk: up to [`CHUNK_SIZE`] consecutive nodes
/// plus a conservative summary of their outgoing transition symbols.
#[derive(Clone, Debug, Default)]
struct NodeChunk {
    nodes: Vec<ItemSetNode>,
    /// Sorted superset of the symbol ids on which some live *complete*
    /// node of this chunk has a transition. `MODIFY` consults it to skip
    /// chunks that cannot contain invalidation candidates. Conservative:
    /// merged on expansion, rebuilt exactly whenever the chunk is copied
    /// on write, so stale entries only cost a false-positive scan of one
    /// chunk, never a missed invalidation.
    out_symbols: Vec<u32>,
    /// Cached modeled bytes of this chunk's nodes (see the byte-accounting
    /// section above). Maintained incrementally at every node mutation, so
    /// residency queries are O(#chunks), never O(#nodes).
    bytes: usize,
}

impl NodeChunk {
    fn rebuild_summary(&mut self) {
        self.out_symbols.clear();
        for node in &self.nodes {
            if node.alive && node.kind == ItemSetKind::Complete {
                self.out_symbols
                    .extend(node.transitions.keys().map(|s| s.index() as u32));
            }
        }
        self.out_symbols.sort_unstable();
        self.out_symbols.dedup();
    }

    fn summary_may_contain(&self, symbol: SymbolId) -> bool {
        self.out_symbols
            .binary_search(&(symbol.index() as u32))
            .is_ok()
    }

    fn merge_summary(&mut self, symbols: impl Iterator<Item = SymbolId>) {
        for s in symbols {
            let v = s.index() as u32;
            if let Err(pos) = self.out_symbols.binary_search(&v) {
                self.out_symbols.insert(pos, v);
            }
        }
    }
}

/// A strong, opaque handle to one storage chunk. Exposed so tests and
/// tools can observe **chunk-granular reclamation**: a chunk shared
/// between epochs stays alive as long as any live epoch uses it, while a
/// chunk owned only by a retired epoch is freed with that epoch.
#[derive(Clone, Debug)]
pub struct ChunkHandle(Arc<NodeChunk>);

impl ChunkHandle {
    /// A weak observer of this chunk's lifetime.
    pub fn observer(&self) -> ChunkObserver {
        ChunkObserver(Arc::downgrade(&self.0))
    }

    /// `true` when both handles point at the same chunk storage.
    pub fn ptr_eq(&self, other: &ChunkHandle) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// A weak observer of one storage chunk (see [`ChunkHandle`]).
#[derive(Clone, Debug)]
pub struct ChunkObserver(Weak<NodeChunk>);

impl ChunkObserver {
    /// `true` while some graph (epoch) still holds the chunk.
    pub fn is_alive(&self) -> bool {
        self.0.strong_count() > 0
    }
}

/// Number of shards of the kernel index. The index maps kernels to state
/// ids; sharding bounds the copy-on-write cost of the first post-fork
/// interning to `O(#states / 64)` instead of the whole index.
const KERNEL_SHARDS: usize = 64;

/// The kernel → state index, sharded into `Arc`'d hash maps so a fork
/// clones 64 pointers and writes copy only the shard they touch.
#[derive(Clone, Debug)]
struct KernelIndex {
    shards: Vec<Arc<HashMap<ItemSet, StateId>>>,
}

impl KernelIndex {
    fn new() -> Self {
        KernelIndex {
            shards: (0..KERNEL_SHARDS)
                .map(|_| Arc::new(HashMap::new()))
                .collect(),
        }
    }

    /// Deterministic shard choice (stable across forks, which share the
    /// shard vector).
    fn shard_of(kernel: &ItemSet) -> usize {
        let mut hasher = DefaultHasher::new();
        kernel.hash(&mut hasher);
        (hasher.finish() as usize) % KERNEL_SHARDS
    }

    fn get(&self, kernel: &ItemSet) -> Option<StateId> {
        self.shards[Self::shard_of(kernel)].get(kernel).copied()
    }

    fn insert(&mut self, kernel: ItemSet, id: StateId) {
        let shard = Self::shard_of(&kernel);
        Arc::make_mut(&mut self.shards[shard]).insert(kernel, id);
    }

    /// Removes the entry for `kernel` if it still maps to `id` (a newer
    /// live node may have reused the kernel). Avoids copying the shard
    /// when there is nothing to remove.
    fn remove_if(&mut self, kernel: &ItemSet, id: StateId) {
        let shard = Self::shard_of(kernel);
        if self.shards[shard].get(kernel) == Some(&id) {
            Arc::make_mut(&mut self.shards[shard]).remove(kernel);
        }
    }

    fn unshare(&mut self) {
        for shard in &mut self.shards {
            *shard = Arc::new((**shard).clone());
        }
    }
}

/// Writer-owned state: everything only structural mutation touches.
#[derive(Debug)]
struct GraphInner {
    /// Total number of nodes ever created (dense id space).
    len: usize,
    /// Kernel → node index for all *live* nodes; used by `EXPAND` to share
    /// item sets ("if a set of items with kernel kernel' does not yet
    /// exist, it is generated").
    kernel_index: KernelIndex,
    /// Work counters (query counters live outside, see `ItemSetGraph`).
    stats: GenStats,
    grammar_version: u64,
    /// Scratch for `RE-EXPAND`'s old-target snapshot (reused, not
    /// reallocated per re-expansion).
    scratch_targets: Vec<StateId>,
    /// Scratch for `expand_all`'s pending list.
    scratch_pending: Vec<StateId>,
    /// Scratch work-stack for iterative `DECR-REFCOUNT`.
    gc_stack: Vec<StateId>,
    /// Scratch for `MODIFY`'s invalidated-state list.
    scratch_invalidated: Vec<StateId>,
}

impl Clone for GraphInner {
    /// Fork-time clone: shares the kernel-index shards (`Arc` bumps) and
    /// starts the fork with fresh, empty scratch buffers.
    fn clone(&self) -> Self {
        GraphInner {
            len: self.len,
            kernel_index: self.kernel_index.clone(),
            stats: self.stats,
            grammar_version: self.grammar_version,
            scratch_targets: Vec::new(),
            scratch_pending: Vec::new(),
            gc_stack: Vec::new(),
            scratch_invalidated: Vec::new(),
        }
    }
}

/// The lazily generated, concurrently readable graph of item sets.
///
/// All read-path methods take `&self` and may be called from any number of
/// threads; the expansion entry points ([`ItemSetGraph::ensure_expanded`],
/// [`ItemSetGraph::ensure_row`], [`ItemSetGraph::ensure_state`],
/// [`ItemSetGraph::expand_all`]) also take `&self` but serialize internally
/// as writers. Grammar modifications (`add_rule` / `remove_rule` /
/// `mark_and_sweep`) keep `&mut self`: they change the *language* the graph
/// answers for, so callers must hold exclusive access. The `IpgServer`
/// satisfies this without draining readers by *forking*: `Clone` produces
/// a **structurally shared** copy — O(#chunks) `Arc` bumps taken under the
/// internal writer mutex, no node is copied — `MODIFY` runs on the private
/// fork and copies-on-write only the chunks holding invalidated states,
/// and the fork is published as a new grammar epoch while parses in
/// flight keep reading the original. Publication is therefore
/// O(invalidated states), independent of graph size; a retired epoch's
/// chunks are freed individually once no live epoch shares them.
#[derive(Debug)]
pub struct ItemSetGraph {
    /// The persistent chunk store (see [`NodeChunk`]).
    store: RwLock<Vec<Arc<NodeChunk>>>,
    inner: Mutex<GraphInner>,
    /// The current published snapshot (see [`TableSnapshot`]). Readers
    /// clone the `Arc` once per handle refresh, not per query.
    published: RwLock<Arc<TableSnapshot>>,
    /// `ACTION` query count, aggregated from the per-handle counters of the
    /// lazy tables (relaxed; flushed once per table handle, not per query).
    action_calls: AtomicUsize,
    /// `GOTO` query count (see `action_calls`).
    goto_calls: AtomicUsize,
    /// Storage chunks copied on write because they were shared with
    /// another fork — the observable cost of structural sharing.
    chunks_cowed: AtomicUsize,
    start: StateId,
    gc: GcPolicy,
}

impl Clone for ItemSetGraph {
    /// Forks the graph by cloning chunk pointers: O(#chunks), however many
    /// states the graph holds. Taken under the writer mutex, so the fork
    /// is a consistent snapshot.
    fn clone(&self) -> Self {
        let inner = self.inner.lock().unwrap();
        ItemSetGraph {
            store: RwLock::new(self.store.read().unwrap().clone()),
            inner: Mutex::new(inner.clone()),
            published: RwLock::new(self.published.read().unwrap().clone()),
            action_calls: AtomicUsize::new(self.action_calls.load(Ordering::Relaxed)),
            goto_calls: AtomicUsize::new(self.goto_calls.load(Ordering::Relaxed)),
            chunks_cowed: AtomicUsize::new(self.chunks_cowed.load(Ordering::Relaxed)),
            start: self.start,
            gc: self.gc,
        }
    }
}

impl ItemSetGraph {
    /// The paper's lazy `GENERATE-PARSER` (§5.1): creates only the start
    /// item set, as an initial set of items.
    pub fn new(grammar: &Grammar) -> Self {
        Self::with_policy(grammar, GcPolicy::default())
    }

    /// Like [`ItemSetGraph::new`] with an explicit garbage-collection
    /// policy.
    pub fn with_policy(grammar: &Grammar, gc: GcPolicy) -> Self {
        let graph = ItemSetGraph {
            store: RwLock::new(Vec::new()),
            published: RwLock::new(Arc::new(TableSnapshot::default())),
            inner: Mutex::new(GraphInner {
                len: 0,
                kernel_index: KernelIndex::new(),
                stats: GenStats::default(),
                grammar_version: grammar.version(),
                scratch_targets: Vec::new(),
                scratch_pending: Vec::new(),
                gc_stack: Vec::new(),
                scratch_invalidated: Vec::new(),
            }),
            action_calls: AtomicUsize::new(0),
            goto_calls: AtomicUsize::new(0),
            chunks_cowed: AtomicUsize::new(0),
            start: StateId(0),
            gc,
        };
        {
            let mut inner = graph.inner.lock().unwrap();
            let start = graph.intern_kernel_locked(&mut inner, start_kernel(grammar));
            debug_assert_eq!(start, StateId(0));
        }
        graph
    }

    /// The state in which parsing starts.
    pub fn start_state(&self) -> StateId {
        self.start
    }

    /// The garbage-collection policy in force.
    pub fn gc_policy(&self) -> GcPolicy {
        self.gc
    }

    /// The grammar version the graph currently corresponds to. Updated by
    /// [`ItemSetGraph::add_rule`] / [`ItemSetGraph::remove_rule`].
    pub fn grammar_version(&self) -> u64 {
        self.inner.lock().unwrap().grammar_version
    }

    /// A snapshot of the work counters. `resident_bytes` is sampled live
    /// from the chunk accounting (a gauge, not a counter).
    pub fn stats(&self) -> GenStats {
        let mut stats = self.inner.lock().unwrap().stats;
        stats.action_calls += self.action_calls.load(Ordering::Relaxed);
        stats.goto_calls += self.goto_calls.load(Ordering::Relaxed);
        stats.chunks_cowed += self.chunks_cowed.load(Ordering::Relaxed);
        stats.resident_bytes = self.resident_bytes();
        stats.resident_high_water = stats.resident_high_water.max(stats.resident_bytes);
        stats
    }

    /// Folds externally accumulated counters (typically the stats of a
    /// previous epoch's graph that this graph replaces) into this graph's
    /// counters, so eviction and re-lazification do not reset the
    /// observable work history of a tenant.
    pub(crate) fn adopt_stats(&self, carried: GenStats) {
        let mut inner = self.inner.lock().unwrap();
        let mut stats = carried;
        stats.merge(&inner.stats);
        inner.stats = stats;
    }

    /// A snapshot of a node, or an error for ids that were never handed out
    /// by this graph or whose node has been garbage-collected. This is the
    /// accessor server-side callers should use: a stale [`StateId`] must
    /// not be able to crash (or poison) a graph shared by many parsers.
    pub fn try_node(&self, id: StateId) -> Result<ItemSetNode, GraphError> {
        let store = self.store.read().unwrap();
        match store
            .get(chunk_of(id))
            .and_then(|chunk| chunk.nodes.get(slot_of(id)))
        {
            None => Err(GraphError::UnknownState(id)),
            Some(node) if !node.alive => Err(GraphError::CollectedState(id)),
            Some(node) => Ok(node.clone()),
        }
    }

    /// The life-cycle stage of a node, without cloning it — the cheap
    /// accessor for callers (and tests) that only need the kind.
    pub fn node_kind(&self, id: StateId) -> Result<ItemSetKind, GraphError> {
        let store = self.store.read().unwrap();
        match store
            .get(chunk_of(id))
            .and_then(|chunk| chunk.nodes.get(slot_of(id)))
        {
            None => Err(GraphError::UnknownState(id)),
            Some(node) if !node.alive => Err(GraphError::CollectedState(id)),
            Some(node) => Ok(node.kind),
        }
    }

    /// A snapshot of a node (dead nodes remain accessible for
    /// post-mortems).
    ///
    /// # Panics
    /// Panics with a descriptive message when `id` is out of range; use
    /// [`ItemSetGraph::try_node`] when the id may be stale.
    pub fn node(&self, id: StateId) -> ItemSetNode {
        let store = self.store.read().unwrap();
        store
            .get(chunk_of(id))
            .and_then(|chunk| chunk.nodes.get(slot_of(id)))
            .unwrap_or_else(|| panic!("{}", GraphError::UnknownState(id)))
            .clone()
    }

    /// A point-in-time snapshot of the live nodes, in id order.
    pub fn live_nodes(&self) -> impl Iterator<Item = ItemSetNode> {
        let store = self.store.read().unwrap();
        let nodes: Vec<ItemSetNode> = store
            .iter()
            .flat_map(|chunk| chunk.nodes.iter())
            .filter(|n| n.alive)
            .cloned()
            .collect();
        nodes.into_iter()
    }

    /// Number of live nodes.
    pub fn num_live(&self) -> usize {
        let store = self.store.read().unwrap();
        store
            .iter()
            .map(|chunk| chunk.nodes.iter().filter(|n| n.alive).count())
            .sum()
    }

    /// Size snapshot of the graph.
    pub fn size(&self) -> GraphSize {
        let mut size = GraphSize::default();
        let store = self.store.read().unwrap();
        for node in store
            .iter()
            .flat_map(|chunk| chunk.nodes.iter())
            .filter(|n| n.alive)
        {
            size.total += 1;
            match node.kind {
                ItemSetKind::Initial => size.initial += 1,
                ItemSetKind::Dirty => size.dirty += 1,
                ItemSetKind::Complete => size.complete += 1,
            }
            if node.kind != ItemSetKind::Initial {
                size.transitions += node.transitions.len();
            }
        }
        size
    }

    /// An exclusive borrow of chunk `c`, copying it on write when it is
    /// still shared with another fork (the copy rebuilds the chunk's
    /// transition-symbol summary exactly).
    fn chunk_mut<'a>(&self, store: &'a mut [Arc<NodeChunk>], c: usize) -> &'a mut NodeChunk {
        let arc = &mut store[c];
        if Arc::get_mut(arc).is_none() {
            let mut copy = (**arc).clone();
            copy.rebuild_summary();
            *arc = Arc::new(copy);
            self.chunks_cowed.fetch_add(1, Ordering::Relaxed);
        }
        Arc::get_mut(arc).expect("chunk was just made unique")
    }

    /// Runs `f` on a shared borrow of the node.
    fn with_node<R>(&self, id: StateId, f: impl FnOnce(&ItemSetNode) -> R) -> R {
        let store = self.store.read().unwrap();
        f(&store[chunk_of(id)].nodes[slot_of(id)])
    }

    /// Runs `f` on an exclusive borrow of the node (copy-on-write at chunk
    /// granularity). The chunk's cached byte count is adjusted by whatever
    /// size change `f` causes, keeping the residency accounting exact.
    fn with_node_mut<R>(&self, id: StateId, f: impl FnOnce(&mut ItemSetNode) -> R) -> R {
        let mut store = self.store.write().unwrap();
        let chunk = self.chunk_mut(&mut store, chunk_of(id));
        let slot = slot_of(id);
        let before = node_heap_bytes(&chunk.nodes[slot]);
        let result = f(&mut chunk.nodes[slot]);
        chunk.bytes = chunk.bytes - before + node_heap_bytes(&chunk.nodes[slot]);
        result
    }

    fn intern_kernel_locked(&self, inner: &mut GraphInner, kernel: ItemSet) -> StateId {
        if let Some(id) = inner.kernel_index.get(&kernel) {
            return id;
        }
        let id = StateId::from_index(inner.len);
        inner.len += 1;
        inner.kernel_index.insert(kernel.clone(), id);
        let mut store = self.store.write().unwrap();
        if chunk_of(id) == store.len() {
            store.push(Arc::new(NodeChunk::default()));
        }
        let chunk = self.chunk_mut(&mut store, chunk_of(id));
        debug_assert_eq!(chunk.nodes.len(), slot_of(id));
        chunk.nodes.push(ItemSetNode::new(id, kernel));
        chunk.bytes += node_heap_bytes(chunk.nodes.last().expect("just pushed"));
        inner.stats.nodes_created += 1;
        id
    }

    // ------------------------------------------------------------------
    // Read path (`&self`, pinned snapshots — no locks per query)
    // ------------------------------------------------------------------

    /// The current published snapshot. A `LazyTables` handle pins one of
    /// these and refreshes it on a miss; all steady-state queries are then
    /// plain array reads against immutable data.
    pub(crate) fn published_snapshot(&self) -> Arc<TableSnapshot> {
        self.published.read().unwrap().clone()
    }

    /// `true` when `id` names a live node. Must be consulted *under the
    /// inner mutex* before materialising anything for `id`: refcount GC
    /// runs on the `&self` writer path (re-expansion of dirty nodes), so
    /// a lock-free liveness check could race a collection and resurrect a
    /// dead node into the published snapshot.
    fn is_live_locked(&self, inner: &GraphInner, id: StateId) -> bool {
        id.index() < inner.len && self.with_node(id, |n| n.alive)
    }

    /// The `ACTION` miss path: materialise and publish `state` if it is a
    /// real, live state. Returns `false` for stale ids (out of range, or
    /// reclaimed by GC), which read as error cells. The liveness check
    /// happens under the writer mutex, so a concurrent collection cannot
    /// slip between the check and the (re-)publication.
    pub(crate) fn ensure_state_checked(&self, grammar: &Grammar, id: StateId) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if !self.is_live_locked(&inner, id) {
            return false;
        }
        self.ensure_expanded_locked(&mut inner, grammar, id);
        self.ensure_row_locked(&mut inner, grammar, id);
        true
    }

    /// The `GOTO` miss path. Appendix A proves `GOTO` is only called with
    /// complete item sets, so no expansion is performed — a non-complete
    /// (or stale) state reads as an error entry after a debug assertion;
    /// for a complete state the dense row is published so the caller can
    /// refresh its snapshot and read the target.
    pub(crate) fn prepare_goto(&self, grammar: &Grammar, id: StateId) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if !self.is_live_locked(&inner, id) {
            return false;
        }
        let kind = self.with_node(id, |n| n.kind);
        debug_assert_eq!(
            kind,
            ItemSetKind::Complete,
            "Appendix A invariant violated: GOTO called on a non-complete item set"
        );
        if kind != ItemSetKind::Complete {
            return false;
        }
        self.ensure_row_locked(&mut inner, grammar, id);
        true
    }

    /// Flush per-handle query counters into the graph-wide aggregates
    /// (called when a lazy-tables handle is dropped).
    pub(crate) fn record_queries(&self, action_calls: usize, goto_calls: usize) {
        if action_calls > 0 {
            self.action_calls.fetch_add(action_calls, Ordering::Relaxed);
        }
        if goto_calls > 0 {
            self.goto_calls.fetch_add(goto_calls, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // Write path (serialized on the inner mutex)
    // ------------------------------------------------------------------

    /// Ensures the node's transitions and reductions are valid for the
    /// current grammar: the lazy `ACTION`'s "if state.type = initial then
    /// EXPAND(state)", extended with `RE-EXPAND` for dirty nodes.
    pub fn ensure_expanded(&self, grammar: &Grammar, id: StateId) {
        let mut inner = self.inner.lock().unwrap();
        self.ensure_expanded_locked(&mut inner, grammar, id);
    }

    /// Ensures the node is expanded *and* its dense row is published — the
    /// single writer entry point behind the lazy tables' read path.
    pub fn ensure_state(&self, grammar: &Grammar, id: StateId) {
        let mut inner = self.inner.lock().unwrap();
        self.ensure_expanded_locked(&mut inner, grammar, id);
        self.ensure_row_locked(&mut inner, grammar, id);
    }

    fn ensure_expanded_locked(&self, inner: &mut GraphInner, grammar: &Grammar, id: StateId) {
        match self.with_node(id, |n| n.kind) {
            ItemSetKind::Complete => {}
            ItemSetKind::Initial => self.expand_locked(inner, grammar, id),
            ItemSetKind::Dirty => self.re_expand_locked(inner, grammar, id),
        }
    }

    /// The paper's `EXPAND`: transform an initial set of items into a
    /// complete one.
    fn expand_locked(&self, inner: &mut GraphInner, grammar: &Grammar, id: StateId) {
        inner.stats.expansions += 1;
        self.expand_common_locked(inner, grammar, id);
    }

    /// The paper's `RE-EXPAND` (§6.2): expand a dirty set of items, then
    /// release the references its old transitions held.
    fn re_expand_locked(&self, inner: &mut GraphInner, grammar: &Grammar, id: StateId) {
        let computed = self.compute_expansion(grammar, id);
        self.re_commit_expansion_locked(inner, id, computed);
    }

    /// The write half of `RE-EXPAND`: commit a precomputed expansion over
    /// a dirty node and release the references its old transitions held.
    fn re_commit_expansion_locked(
        &self,
        inner: &mut GraphInner,
        id: StateId,
        computed: ComputedExpansion,
    ) {
        inner.stats.re_expansions += 1;
        let mut old_targets = std::mem::take(&mut inner.scratch_targets);
        old_targets.clear();
        self.with_node(id, |n| {
            old_targets.extend(n.transitions.values().copied());
        });
        self.commit_expansion_locked(inner, id, computed);
        if self.refcounting() {
            for &target in &old_targets {
                self.decr_refcount_locked(inner, target);
            }
        }
        inner.scratch_targets = old_targets;
    }

    fn expand_common_locked(&self, inner: &mut GraphInner, grammar: &Grammar, id: StateId) {
        let computed = self.compute_expansion(grammar, id);
        self.commit_expansion_locked(inner, id, computed);
    }

    /// The read-only half of `EXPAND` for one resident node: clones the
    /// node's (immutable-within-a-write) kernel and runs the pure
    /// `compute_expansion_of` on it. The steady-state miss path and small
    /// warm rounds use this; the parallel warm's fan-out
    /// ([`ItemSetGraph::expand_all_parallel`]) clones whole frontiers of
    /// kernels up front and calls `compute_expansion_of` directly so its
    /// workers never touch the store.
    fn compute_expansion(&self, grammar: &Grammar, id: StateId) -> ComputedExpansion {
        let kernel = self.with_node(id, |n| n.kernel.clone());
        compute_expansion_of(grammar, &kernel)
    }

    /// The write half of `EXPAND`: intern the successor kernels (in symbol
    /// order, so state numbering is deterministic and identical to the
    /// fully serial expansion) and publish the node as complete.
    fn commit_expansion_locked(
        &self,
        inner: &mut GraphInner,
        id: StateId,
        computed: ComputedExpansion,
    ) {
        inner.stats.closures += 1;
        let mut transitions = BTreeMap::new();
        for (symbol, succ_kernel) in computed.successors {
            let target = self.intern_kernel_locked(inner, succ_kernel);
            transitions.insert(symbol, target);
            if self.refcounting() {
                self.with_node_mut(target, |n| n.refcount += 1);
            }
        }

        let mut store = self.store.write().unwrap();
        let chunk = self.chunk_mut(&mut store, chunk_of(id));
        // Keep the chunk's MODIFY summary a superset of its live complete
        // nodes' transition symbols.
        chunk.merge_summary(transitions.keys().copied());
        let slot = slot_of(id);
        let before = node_heap_bytes(&chunk.nodes[slot]);
        let node = &mut chunk.nodes[slot];
        node.closure = computed.closed;
        node.transitions = transitions;
        node.reductions = computed.reductions;
        node.accepting = computed.accepting;
        node.kind = ItemSetKind::Complete;
        // The dense row shadows the (old) transitions; rebuild on demand.
        // Readers observe the kind change and the dropped row atomically:
        // both happen under the store's write lock.
        node.row = None;
        chunk.bytes = chunk.bytes - before + node_heap_bytes(&chunk.nodes[slot]);
    }

    /// Builds the dense [`ActionRow`] of a complete node if it is missing.
    /// The row is the steady-state `ACTION`/`GOTO` fast path: after this,
    /// table queries for the node are array loads with no allocation.
    ///
    /// # Panics
    /// Debug-asserts that the node is `Complete`; rows of initial/dirty
    /// nodes would shadow invalid transitions.
    pub fn ensure_row(&self, grammar: &Grammar, id: StateId) {
        let mut inner = self.inner.lock().unwrap();
        self.ensure_row_locked(&mut inner, grammar, id);
    }

    fn ensure_row_locked(&self, inner: &mut GraphInner, grammar: &Grammar, id: StateId) {
        self.build_row_locked(inner, grammar, id);
        // Publish (or re-publish after invalidation) the read-view entry so
        // pinned reader snapshots can pick it up on their next refresh.
        self.publish_entry(id);
    }

    /// Builds the dense row in the node storage without touching the
    /// published snapshot (the caller publishes, either per entry or in
    /// one batch).
    fn build_row_locked(&self, inner: &mut GraphInner, grammar: &Grammar, id: StateId) {
        let num_symbols = grammar.symbols().len();
        let version = grammar.version();
        let built = self.with_node_mut(id, |node| {
            debug_assert_eq!(
                node.kind,
                ItemSetKind::Complete,
                "action rows only shadow complete item sets"
            );
            if node.row.is_some() {
                return false;
            }
            let mut targets = vec![0u32; num_symbols];
            for (&symbol, &target) in &node.transitions {
                targets[symbol.index()] = target.0 + 1;
            }
            node.row = Some(ActionRow { version, targets });
            true
        });
        if built {
            inner.stats.rows_built += 1;
        }
    }

    /// Copies the node's row/reductions/accept flag into a fresh published
    /// snapshot (copy-on-write over the shared snapshot chunks). A no-op
    /// when the entry is already present: an existing entry is always
    /// current, because every path that drops or replaces a row first
    /// retracts the entry (MODIFY/sweep retract or rebuild, GC
    /// unpublishes).
    ///
    /// A publication copies one snapshot chunk plus the chunk-pointer
    /// vector — O(#chunks) pointer copies, which measures as noise next to
    /// the closure computation each new state also pays; batch paths that
    /// build many rows at once ([`ItemSetGraph::publish_all_rows`]) swap
    /// one rebuilt snapshot instead.
    fn publish_entry(&self, id: StateId) {
        {
            let published = self.published.read().unwrap();
            if published.get(id).is_some() {
                return;
            }
        }
        let entry = self.with_node(id, |node| {
            node.row.as_ref().map(|row| {
                Arc::new(PublishedState {
                    row: row.clone(),
                    reductions: node.reductions.clone(),
                    accepting: node.accepting,
                })
            })
        });
        let Some(entry) = entry else { return };
        let mut published = self.published.write().unwrap();
        let bytes = published.bytes + published_state_bytes(&entry);
        let mut chunks = published.chunks.clone();
        while chunks.len() <= chunk_of(id) {
            chunks.push(Arc::new(vec![None; CHUNK_SIZE]));
        }
        Arc::make_mut(&mut chunks[chunk_of(id)])[slot_of(id)] = Some(entry);
        *published = Arc::new(TableSnapshot { chunks, bytes });
    }

    /// Drops a state's published entry (after garbage collection).
    fn unpublish_entry(&self, id: StateId) {
        let mut published = self.published.write().unwrap();
        if let Some(entry) = published.get(id) {
            let bytes = published.bytes - published_state_bytes(entry);
            let mut chunks = published.chunks.clone();
            Arc::make_mut(&mut chunks[chunk_of(id)])[slot_of(id)] = None;
            *published = Arc::new(TableSnapshot { chunks, bytes });
        }
    }

    /// Retracts the published entries of `ids` in one batch: copies only
    /// the snapshot chunks that actually hold an entry for one of the ids
    /// and swaps once. The `MODIFY` companion of the chunk-granular node
    /// invalidation — O(invalidated), not O(published).
    fn retract_entries(&self, ids: &[StateId]) {
        if ids.is_empty() {
            return;
        }
        let mut published = self.published.write().unwrap();
        let mut bytes = published.bytes;
        let mut chunks = published.chunks.clone();
        let mut changed = false;
        for &id in ids {
            let Some(chunk) = chunks.get_mut(chunk_of(id)) else {
                continue;
            };
            if let Some(entry) = &chunk[slot_of(id)] {
                bytes -= published_state_bytes(entry);
                Arc::make_mut(chunk)[slot_of(id)] = None;
                changed = true;
            }
        }
        if changed {
            *published = Arc::new(TableSnapshot { chunks, bytes });
        }
    }

    /// Rebuilds the published snapshot from the node storage — used by the
    /// batch paths (mark-and-sweep, full warm-up), which may touch most
    /// entries anyway.
    fn rebuild_published(&self) {
        self.rebuild_published_parallel(1);
    }

    /// [`ItemSetGraph::rebuild_published`] with the per-chunk snapshot
    /// assembly (row/reduction clones into fresh `Arc`s — memcpy-heavy)
    /// fanned out over `threads` workers; the swap stays a single pointer
    /// store either way.
    fn rebuild_published_parallel(&self, threads: usize) {
        let store = self.store.read().unwrap();
        let threads = threads.max(1).min(store.len().max(1));
        let chunks: Vec<Arc<SnapChunk>> = if threads <= 1 || store.len() < 2 {
            store.iter().map(|chunk| snap_chunk_of(chunk)).collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let mut slots: Vec<Option<Arc<SnapChunk>>> = vec![None; store.len()];
            std::thread::scope(|scope| {
                let cursor = &cursor;
                let store = &store;
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            loop {
                                let c = cursor.fetch_add(1, Ordering::Relaxed);
                                if c >= store.len() {
                                    break;
                                }
                                out.push((c, snap_chunk_of(&store[c])));
                            }
                            out
                        })
                    })
                    .collect();
                for handle in handles {
                    for (c, chunk) in handle.join().unwrap() {
                        slots[c] = Some(chunk);
                    }
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.expect("every chunk index was assembled"))
                .collect()
        };
        drop(store);
        let bytes = chunks.iter().map(|chunk| snap_chunk_bytes(chunk)).sum();
        *self.published.write().unwrap() = Arc::new(TableSnapshot { chunks, bytes });
    }

    /// The dense action row of a node, if one has been built and is valid.
    pub fn action_row(&self, id: StateId) -> Option<ActionRow> {
        self.with_node(id, |n| n.row.clone())
    }

    fn refcounting(&self) -> bool {
        !matches!(self.gc, GcPolicy::Retain)
    }

    /// The paper's `DECR-REFCOUNT`: release one reference to `id`; if the
    /// count drops to zero the node is reclaimed and the references *it*
    /// holds are released in turn. Iterative over a reused work stack, so
    /// deep release chains neither recurse nor allocate in steady state.
    fn decr_refcount_locked(&self, inner: &mut GraphInner, id: StateId) {
        let mut stack = std::mem::take(&mut inner.gc_stack);
        debug_assert!(stack.is_empty());
        stack.push(id);
        while let Some(id) = stack.pop() {
            if id == self.start {
                continue; // the start item set is never collected
            }
            // Peek first so a node that merely loses one of several
            // references does not force a chunk copy-on-write of anything
            // beyond the refcount cell.
            let (alive, refcount) = self.with_node(id, |n| (n.alive, n.refcount));
            if !alive {
                continue;
            }
            if refcount > 1 {
                self.with_node_mut(id, |n| n.refcount -= 1);
                continue;
            }
            let (kernel, targets) = self.with_node_mut(id, |node| {
                node.refcount = 0;
                node.alive = false;
                // A dead node is never queried again; free its row (the
                // largest per-node allocation) immediately.
                node.row = None;
                let targets: Vec<StateId> = if node.kind != ItemSetKind::Initial {
                    node.transitions.values().copied().collect()
                } else {
                    Vec::new()
                };
                (std::mem::take(&mut node.kernel), targets)
            });
            inner.stats.nodes_collected += 1;
            // Only remove the index entry if it still points at this node
            // (a newer live node may have reused the kernel).
            inner.kernel_index.remove_if(&kernel, id);
            stack.extend(targets);
            self.unpublish_entry(id);
        }
        inner.gc_stack = stack;
    }

    /// Adds `lhs ::= rhs` to the grammar and updates the graph — the
    /// paper's `ADD-RULE`.
    ///
    /// `MODIFY` requires exclusive access (`&mut self`): it changes the
    /// language the graph answers for, so no parse may be in flight.
    pub fn add_rule(&mut self, grammar: &mut Grammar, lhs: SymbolId, rhs: Vec<SymbolId>) -> RuleId {
        let rule = grammar.add_rule(lhs, rhs);
        let mut inner = self.inner.lock().unwrap();
        self.modify_locked(&mut inner, grammar, lhs, rule, true);
        rule
    }

    /// Deletes `lhs ::= rhs` from the grammar and updates the graph — the
    /// paper's `DELETE-RULE`. Exclusive for the same reason as
    /// [`ItemSetGraph::add_rule`].
    pub fn remove_rule(
        &mut self,
        grammar: &mut Grammar,
        lhs: SymbolId,
        rhs: &[SymbolId],
    ) -> Result<RuleId, GrammarError> {
        let rule = grammar.remove_rule_matching(lhs, rhs)?;
        let mut inner = self.inner.lock().unwrap();
        self.modify_locked(&mut inner, grammar, lhs, rule, false);
        Ok(rule)
    }

    /// The paper's `MODIFY`: after the grammar has been updated, invalidate
    /// every complete item set whose expansion is no longer correct. These
    /// are exactly the complete item sets with a transition on the rule's
    /// left-hand side, plus the start item set when the rule defines
    /// `START`.
    ///
    /// Cost: O(invalidated states) chunk copies plus an O(#chunks) summary
    /// scan — the §6 "cost proportional to what the edit invalidates"
    /// property, independent of how many states the graph holds. Chunks
    /// without an invalidated state stay shared with the pre-edit fork.
    fn modify_locked(
        &self,
        inner: &mut GraphInner,
        grammar: &Grammar,
        lhs: SymbolId,
        rule: RuleId,
        added: bool,
    ) {
        inner.stats.modifications += 1;
        inner.grammar_version = grammar.version();
        let invalidated_kind = if self.refcounting() {
            ItemSetKind::Dirty
        } else {
            ItemSetKind::Initial
        };
        let mut invalidated = std::mem::take(&mut inner.scratch_invalidated);
        invalidated.clear();

        if lhs == grammar.start_symbol() {
            // The start item set's kernel is derived from the START rules;
            // keep it in sync and re-expand it lazily.
            let start = self.start;
            let (was_complete, old_kernel, new_kernel) = self.with_node_mut(start, |node| {
                let old_kernel = node.kernel.clone();
                let item = Item::start(rule);
                if added {
                    node.kernel.insert(item);
                } else {
                    node.kernel.remove(&item);
                }
                let was_complete = node.kind == ItemSetKind::Complete;
                if was_complete {
                    node.kind = invalidated_kind;
                    node.row = None;
                }
                (was_complete, old_kernel, node.kernel.clone())
            });
            if was_complete {
                inner.stats.invalidations += 1;
                invalidated.push(start);
            }
            // Keep the kernel index in sync with the changed kernel —
            // targeted: the start node's previous kernel is its only
            // possible entry.
            inner.kernel_index.remove_if(&old_kernel, start);
            inner.kernel_index.insert(new_kernel, start);
        } else {
            // Invalidate through the chunk summaries: only chunks whose
            // summary may contain `lhs` are inspected, and only chunks
            // with an actual hit are copied on write — the cached action
            // rows are dropped in the same breath as the item sets they
            // shadow.
            let mut store = self.store.write().unwrap();
            for c in 0..store.len() {
                if !store[c].summary_may_contain(lhs) {
                    continue;
                }
                let hits: Vec<usize> = store[c]
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| {
                        n.alive
                            && n.kind == ItemSetKind::Complete
                            && n.transitions.contains_key(&lhs)
                    })
                    .map(|(slot, _)| slot)
                    .collect();
                if hits.is_empty() {
                    continue;
                }
                let chunk = self.chunk_mut(&mut store, c);
                for slot in hits {
                    let before = node_heap_bytes(&chunk.nodes[slot]);
                    let node = &mut chunk.nodes[slot];
                    node.kind = invalidated_kind;
                    node.row = None;
                    invalidated.push(node.id);
                    inner.stats.invalidations += 1;
                    chunk.bytes = chunk.bytes - before + node_heap_bytes(&chunk.nodes[slot]);
                }
            }
        }

        let swept = self.maybe_sweep_locked(inner, grammar);
        // Invalidation dropped rows in place; retract exactly those
        // entries from the published snapshot too (exclusive: no reader
        // holds a handle). A sweep may have retracted arbitrary states,
        // so it rebuilds instead.
        if swept {
            self.rebuild_published();
        } else {
            self.retract_entries(&invalidated);
        }
        inner.scratch_invalidated = invalidated;
    }

    /// Runs a mark-and-sweep pass if the policy asks for one and the
    /// garbage fraction exceeds its threshold. Returns `true` when a
    /// sweep ran (the caller must then rebuild the published snapshot).
    fn maybe_sweep_locked(&self, inner: &mut GraphInner, grammar: &Grammar) -> bool {
        let GcPolicy::RefCountWithSweep { threshold_percent } = self.gc else {
            return false;
        };
        let live = self.num_live();
        if live == 0 {
            return false;
        }
        let reachable = self.reachable_from_start_locked(inner);
        let garbage = live.saturating_sub(reachable.len());
        if garbage * 100 > threshold_percent as usize * live {
            self.mark_and_sweep_locked(inner, grammar);
            return true;
        }
        false
    }

    fn reachable_from_start_locked(&self, inner: &GraphInner) -> Vec<StateId> {
        let mut marked = vec![false; inner.len];
        let mut stack = vec![self.start];
        marked[self.start.index()] = true;
        let mut targets: Vec<StateId> = Vec::new();
        while let Some(id) = stack.pop() {
            targets.clear();
            self.with_node(id, |node| {
                if node.kind != ItemSetKind::Initial {
                    targets.extend(node.transitions.values().copied());
                }
            });
            for &target in &targets {
                if !marked[target.index()] && self.with_node(target, |n| n.alive) {
                    marked[target.index()] = true;
                    stack.push(target);
                }
            }
        }
        marked
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(i, _)| StateId::from_index(i))
            .collect()
    }

    /// Mark-and-sweep collection: reclaims every live item set that is not
    /// reachable from the start item set, and recomputes reference counts.
    /// This is the paper's proposed answer to cyclic references that
    /// reference counting alone cannot reclaim. Exclusive, like `MODIFY`.
    pub fn mark_and_sweep(&mut self, grammar: &Grammar) {
        let mut inner = self.inner.lock().unwrap();
        self.mark_and_sweep_locked(&mut inner, grammar);
        self.rebuild_published();
    }

    fn mark_and_sweep_locked(&self, inner: &mut GraphInner, _grammar: &Grammar) {
        inner.stats.sweeps += 1;
        let reachable = self.reachable_from_start_locked(inner);
        let mut keep = vec![false; inner.len];
        for id in &reachable {
            keep[id.index()] = true;
        }
        // Sweep the unreachable nodes and zero the reference counts, one
        // chunk at a time (each chunk is copied on write at most once; a
        // sweep is inherently a whole-graph pass).
        let mut store = self.store.write().unwrap();
        let mut swept: Vec<(ItemSet, StateId)> = Vec::new();
        for c in 0..store.len() {
            let chunk = self.chunk_mut(&mut store, c);
            let mut freed = 0;
            for node in &mut chunk.nodes {
                if node.alive && !keep[node.id.index()] {
                    let before = node_heap_bytes(node);
                    node.alive = false;
                    node.row = None;
                    inner.stats.nodes_swept += 1;
                    swept.push((std::mem::take(&mut node.kernel), node.id));
                    freed += before - node_heap_bytes(node);
                }
                node.refcount = 0;
            }
            chunk.bytes -= freed;
        }
        for (kernel, id) in swept {
            inner.kernel_index.remove_if(&kernel, id);
        }
        // Recompute reference counts over the surviving graph.
        let mut targets: Vec<StateId> = Vec::new();
        for chunk in store.iter() {
            for node in &chunk.nodes {
                if node.alive && node.kind != ItemSetKind::Initial {
                    targets.extend(node.transitions.values().copied());
                }
            }
        }
        for id in targets {
            let chunk = self.chunk_mut(&mut store, chunk_of(id));
            let node = &mut chunk.nodes[slot_of(id)];
            if node.alive {
                node.refcount += 1;
            }
        }
    }

    /// Forces the complete expansion of the graph (every reachable item
    /// set). Afterwards the graph is equivalent to the conventionally
    /// generated automaton — useful for tests, for the "PG via IPG"
    /// comparison, and for warming a served table before taking traffic.
    pub fn expand_all(&self, grammar: &Grammar) {
        self.expand_all_parallel(grammar, 1);
    }

    /// [`ItemSetGraph::expand_all`] with the frontier fanned out over
    /// `threads` worker threads.
    ///
    /// The expansion runs in **pipelined rounds**: each round collects the
    /// pending frontier in id order (exactly the serial scan) and clones
    /// its kernels out of the store, workers compute the read-only half of
    /// every expansion concurrently (closure, successor partition,
    /// reductions — the bulk of the work, touching no graph locks), and
    /// the committer consumes the results *in frontier order as they
    /// arrive*, interning successor kernels in symbol order while the
    /// workers keep computing. Because interning order is identical to the
    /// serial expansion, the resulting graph is **bit-identical** to
    /// `expand_all(grammar)`: same state ids, same kernel index, same rows
    /// (the parallel-warm equivalence proptest holds this to 256
    /// randomized grammars). Pipelining keeps the serial commit off the
    /// critical path: round wall-clock is `max(compute / threads, commit)`
    /// rather than their sum.
    ///
    /// The whole warm holds the writer mutex, so it serializes with
    /// steady-state misses and `MODIFY` like any other write — the
    /// parallel fan-out is internal to the bulk path and does not change
    /// the locking story. Rounds smaller than a handful of kernels are
    /// expanded inline (no worker threads), so chain-shaped frontiers pay
    /// no spawn overhead.
    pub fn expand_all_parallel(&self, grammar: &Grammar, threads: usize) {
        let threads = threads.max(1);
        let mut inner = self.inner.lock().unwrap();
        inner.stats.warm_threads_used = inner.stats.warm_threads_used.max(threads);
        let mut pending = std::mem::take(&mut inner.scratch_pending);
        let mut kernels: Vec<ItemSet> = Vec::new();
        loop {
            pending.clear();
            for i in 0..inner.len {
                let id = StateId::from_index(i);
                if self.with_node(id, |n| n.alive && n.needs_expansion()) {
                    pending.push(id);
                }
            }
            if pending.is_empty() {
                break;
            }
            if threads <= 1 || pending.len() < PARALLEL_EXPAND_MIN_BATCH {
                // Small rounds expand inline, exactly like the serial path.
                for &id in &pending {
                    // Re-check before committing: a re-expansion committed
                    // earlier in this round may have collected the node.
                    match self.with_node(id, |n| (n.alive, n.kind)) {
                        (true, ItemSetKind::Initial) => {
                            inner.stats.expansions += 1;
                            let computed = self.compute_expansion(grammar, id);
                            self.commit_expansion_locked(&mut inner, id, computed);
                        }
                        (true, ItemSetKind::Dirty) => {
                            let computed = self.compute_expansion(grammar, id);
                            self.re_commit_expansion_locked(&mut inner, id, computed);
                        }
                        _ => {}
                    }
                }
            } else {
                // Pipelined round: clone the frontier's kernels out of the
                // store up front so the workers run lock-free, then commit
                // each result in frontier order as soon as it is deposited
                // — interning overlaps with the remaining closures.
                kernels.clear();
                kernels.extend(
                    pending
                        .iter()
                        .map(|&id| self.with_node(id, |n| n.kernel.clone())),
                );
                let round = RoundQueue::new(pending.len());
                std::thread::scope(|scope| {
                    for _ in 0..threads.min(pending.len()) {
                        let round = &round;
                        let kernels = &kernels;
                        scope.spawn(move || {
                            while let Some(i) = round.claim(kernels.len()) {
                                round.deposit(i, compute_expansion_of(grammar, &kernels[i]));
                            }
                        });
                    }
                    for (i, &id) in pending.iter().enumerate() {
                        let computed = round.take(i);
                        // Re-check under the still-held writer: a
                        // re-expansion committed earlier in this round may
                        // have collected the node (its precomputed result
                        // is then simply dropped).
                        match self.with_node(id, |n| (n.alive, n.kind)) {
                            (true, ItemSetKind::Initial) => {
                                inner.stats.expansions += 1;
                                self.commit_expansion_locked(&mut inner, id, computed);
                            }
                            (true, ItemSetKind::Dirty) => {
                                self.re_commit_expansion_locked(&mut inner, id, computed);
                            }
                            _ => {}
                        }
                    }
                });
            }
            inner.stats.warm_batches_published += 1;
        }
        inner.scratch_pending = pending;
    }

    /// Publishes the dense action row of every live complete node — used
    /// together with [`ItemSetGraph::expand_all`] to fully warm a served
    /// table.
    pub fn publish_all_rows(&self, grammar: &Grammar) {
        self.publish_all_rows_parallel(grammar, 1);
    }

    /// [`ItemSetGraph::publish_all_rows`] with row building and snapshot
    /// assembly fanned out over `threads` workers. Rows live in disjoint
    /// storage chunks, so workers fill them without synchronisation once
    /// the (serial) copy-on-write pass has made the touched chunks unique;
    /// the published snapshot is likewise assembled chunk-parallel and
    /// swapped in once. Results are identical to the serial path.
    pub fn publish_all_rows_parallel(&self, grammar: &Grammar, threads: usize) {
        let threads = threads.max(1);
        let mut inner = self.inner.lock().unwrap();
        let num_symbols = grammar.symbols().len();
        let version = grammar.version();
        let needs_rows = |chunk: &NodeChunk| {
            chunk
                .nodes
                .iter()
                .any(|n| n.alive && n.kind == ItemSetKind::Complete && n.row.is_none())
        };
        {
            let mut store = self.store.write().unwrap();
            // Unshare every chunk that needs row writes (serial, O(#chunks)
            // checks), then hand the now-unique chunks to workers disjointly.
            for c in 0..store.len() {
                if needs_rows(&store[c]) {
                    let _ = self.chunk_mut(&mut store, c);
                }
            }
            let mut chunk_refs: Vec<&mut NodeChunk> = store
                .iter_mut()
                .filter(|arc| needs_rows(arc))
                .map(|arc| Arc::get_mut(arc).expect("chunk was unshared above"))
                .collect();
            let built = if threads <= 1 || chunk_refs.len() < 2 {
                let mut built = 0;
                for chunk in &mut chunk_refs {
                    built += build_rows_in_chunk(chunk, num_symbols, version);
                }
                built
            } else {
                let mut built = 0;
                std::thread::scope(|scope| {
                    let per = chunk_refs.len().div_ceil(threads);
                    let mut handles = Vec::new();
                    let mut rest: &mut [&mut NodeChunk] = &mut chunk_refs;
                    while !rest.is_empty() {
                        let take = per.min(rest.len());
                        let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
                        rest = tail;
                        handles.push(scope.spawn(move || {
                            let mut built = 0;
                            for chunk in head.iter_mut() {
                                built += build_rows_in_chunk(chunk, num_symbols, version);
                            }
                            built
                        }));
                    }
                    for handle in handles {
                        built += handle.join().unwrap();
                    }
                });
                built
            };
            inner.stats.rows_built += built;
        }
        // One batch publication instead of a copy-on-write snapshot per
        // row (which would be quadratic in the number of states).
        self.rebuild_published_parallel(threads);
    }

    /// Renders the live part of the graph in the style of the paper's item
    /// set diagrams.
    pub fn render(&self, grammar: &Grammar) -> String {
        let mut out = String::new();
        for node in self.live_nodes() {
            let kind = match node.kind {
                ItemSetKind::Initial => "initial",
                ItemSetKind::Dirty => "dirty",
                ItemSetKind::Complete => "complete",
            };
            out.push_str(&format!("item set {} ({kind}, rc={}):\n", node.id, node.refcount));
            for item in &node.kernel {
                out.push_str(&format!("    {}\n", item.display(grammar)));
            }
            if node.kind == ItemSetKind::Complete {
                for (&sym, &target) in &node.transitions {
                    out.push_str(&format!("    --{}--> {}\n", grammar.name(sym), target));
                }
                for &rule in &node.reductions {
                    out.push_str(&format!(
                        "    reduce {}\n",
                        grammar.rule(rule).display(grammar.symbols())
                    ));
                }
                if node.accepting {
                    out.push_str("    --$--> accept\n");
                }
            }
        }
        out
    }

    /// Declares that the grammar changed in a way that does not affect the
    /// graph (e.g. new symbols were interned but no rule was added or
    /// removed). Rule modifications must go through
    /// [`ItemSetGraph::add_rule`] / [`ItemSetGraph::remove_rule`] instead.
    pub fn acknowledge_non_structural_change(&mut self, grammar: &Grammar) {
        self.inner.lock().unwrap().grammar_version = grammar.version();
    }

    // ------------------------------------------------------------------
    // Structural sharing (observability + benchmark support)
    // ------------------------------------------------------------------

    /// Number of storage chunks currently allocated.
    pub fn num_chunks(&self) -> usize {
        self.store.read().unwrap().len()
    }

    /// The index of the storage chunk that holds state `id`.
    pub fn chunk_of_state(id: StateId) -> usize {
        chunk_of(id)
    }

    /// Per-chunk sharing with `other`: entry `c` is `true` when chunk `c`
    /// of both graphs is the *same* storage (`Arc::ptr_eq`), i.e. the two
    /// forks structurally share it. Compared up to the shorter graph.
    pub fn shared_chunks_with(&self, other: &ItemSetGraph) -> Vec<bool> {
        let mine = self.store.read().unwrap();
        let theirs = other.store.read().unwrap();
        mine.iter()
            .zip(theirs.iter())
            .map(|(a, b)| Arc::ptr_eq(a, b))
            .collect()
    }

    /// The modeled resident bytes of this graph's derived parser state:
    /// node chunks (kernels, closures, transitions, cached action rows)
    /// plus the published table snapshot. Served from the incrementally
    /// maintained per-chunk counters — O(#chunks), never O(#nodes).
    ///
    /// The sharded kernel index is deliberately excluded: its entries are
    /// clones of node kernels, so it is bounded by (and proportional to)
    /// the node bytes already counted, and it is not evictable derived
    /// state — re-lazification rebuilds it from scratch anyway.
    pub fn resident_bytes(&self) -> usize {
        let store_bytes: usize = self.store.read().unwrap().iter().map(|c| c.bytes).sum();
        store_bytes + self.published.read().unwrap().bytes
    }

    /// Recomputes [`ItemSetGraph::resident_bytes`] with a fresh walk over
    /// every node and published entry, bypassing the cached per-chunk
    /// counters. The accounting-exactness test holds the cached value to
    /// this oracle after arbitrary EXPAND / MODIFY / GC histories.
    pub fn recompute_resident_bytes(&self) -> usize {
        let store_bytes: usize = self
            .store
            .read()
            .unwrap()
            .iter()
            .map(|c| chunk_bytes_of(c))
            .sum();
        let published = self.published.read().unwrap();
        let snap_bytes: usize = published.chunks.iter().map(|c| snap_chunk_bytes(c)).sum();
        store_bytes + snap_bytes
    }

    /// `(storage address, modeled bytes)` of every resident chunk — node
    /// chunks first, snapshot chunks after. Forks that structurally share
    /// a chunk report the *same* address, so a registry can sum bytes
    /// across tenants deduplicated by pointer identity (shared base chunks
    /// are counted once, not per dialect).
    pub fn chunk_accounting(&self) -> Vec<(usize, usize)> {
        let mut rows: Vec<(usize, usize)> = self
            .store
            .read()
            .unwrap()
            .iter()
            .map(|c| (Arc::as_ptr(c) as usize, c.bytes))
            .collect();
        let published = self.published.read().unwrap();
        rows.extend(
            published
                .chunks
                .iter()
                .map(|c| (Arc::as_ptr(c) as usize, snap_chunk_bytes(c))),
        );
        rows
    }

    /// Strong handles to every storage chunk, in chunk order. Tests and
    /// tools downgrade these to [`ChunkObserver`]s to verify that
    /// reclamation is chunk-granular: a retired epoch frees exactly the
    /// chunks no live epoch shares.
    pub fn chunk_handles(&self) -> Vec<ChunkHandle> {
        self.store
            .read()
            .unwrap()
            .iter()
            .map(|chunk| ChunkHandle(chunk.clone()))
            .collect()
    }

    /// Forces every structurally shared piece of this graph — node chunks,
    /// kernel-index shards, published snapshot chunks — to be uniquely
    /// owned, copying whatever is still shared with other forks. This
    /// reproduces the cost profile of the pre-persistent *deep* fork and
    /// exists for benchmark comparison (`publish-scaling`), not for
    /// serving.
    pub fn unshare_all(&self) {
        let mut inner = self.inner.lock().unwrap();
        {
            let mut store = self.store.write().unwrap();
            for chunk in store.iter_mut() {
                *chunk = Arc::new((**chunk).clone());
            }
        }
        inner.kernel_index.unshare();
        let mut published = self.published.write().unwrap();
        let chunks = published
            .chunks
            .iter()
            .map(|chunk| Arc::new((**chunk).clone()))
            .collect();
        let bytes = published.bytes;
        *published = Arc::new(TableSnapshot { chunks, bytes });
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;

    #[test]
    fn new_graph_contains_only_the_initial_start_state() {
        // Fig. 5.1(a): after (lazy) generation the graph consists of the
        // start item set only, with type initial.
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        assert_eq!(graph.num_live(), 1);
        let start = graph.node(graph.start_state());
        assert_eq!(start.kind, ItemSetKind::Initial);
        assert_eq!(start.kernel.len(), 1);
        assert!(start.needs_expansion());
    }

    #[test]
    fn expanding_the_start_state_matches_fig_51b() {
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        graph.ensure_expanded(&g, graph.start_state());
        // Fig. 5.1(b): the start state plus three initial successors
        // (on B, true, false).
        assert_eq!(graph.num_live(), 4);
        let start = graph.node(graph.start_state());
        assert_eq!(start.kind, ItemSetKind::Complete);
        assert_eq!(start.transitions.len(), 3);
        assert_eq!(graph.stats().expansions, 1);
        let size = graph.size();
        assert_eq!(size.complete, 1);
        assert_eq!(size.initial, 3);
    }

    #[test]
    fn full_expansion_matches_conventional_automaton() {
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let conventional = ipg_lr::Lr0Automaton::build(&g);
        assert_eq!(graph.num_live(), conventional.num_states());
        // Every kernel of the conventional automaton exists in the graph.
        for state in conventional.states() {
            assert!(
                graph.live_nodes().any(|n| n.kernel == state.kernel),
                "kernel missing: {:?}",
                state.kernel
            );
        }
    }

    #[test]
    fn add_rule_invalidates_states_with_transition_on_lhs() {
        // §6.1 / Fig. 6.4: adding `B ::= unknown` makes the item sets with
        // a transition on B initial/dirty again (states 0, 4, 5 in the
        // paper's numbering).
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let before = graph.num_live();
        let b = g.symbol("B").unwrap();
        let unknown = g.terminal("unknown");
        graph.add_rule(&mut g, b, vec![unknown]);
        let invalidated = graph
            .live_nodes()
            .filter(|n| n.kind != ItemSetKind::Complete)
            .count();
        assert_eq!(invalidated, 3, "exactly the three states with a B transition");
        assert_eq!(graph.num_live(), before, "nothing is thrown away yet");
        assert_eq!(graph.stats().invalidations, 3);
    }

    #[test]
    fn re_expansion_after_addition_reconnects_and_extends_the_graph() {
        // Fig. 6.5: re-expanding item set 0 re-establishes its old
        // connections and creates the new `B ::= unknown .` item set.
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let unknown = g.terminal("unknown");
        graph.add_rule(&mut g, b, vec![unknown]);
        graph.ensure_expanded(&g, graph.start_state());
        let start = graph.node(graph.start_state());
        assert_eq!(start.kind, ItemSetKind::Complete);
        assert!(start.transitions.contains_key(&unknown));
        assert_eq!(start.transitions.len(), 4);
        // The old successors were re-used, not regenerated.
        assert!(graph.stats().re_expansions >= 1);
    }

    #[test]
    fn start_rule_modification_updates_the_start_kernel() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        // Add `START ::= E` (with E ::= id so the grammar stays valid).
        let e = g.nonterminal("E");
        let id = g.terminal("id");
        graph.add_rule(&mut g, e, vec![id]);
        let start_sym = g.start_symbol();
        graph.add_rule(&mut g, start_sym, vec![e]);
        let start = graph.node(graph.start_state());
        assert_eq!(start.kernel.len(), 2);
        assert!(start.needs_expansion());
        graph.ensure_expanded(&g, graph.start_state());
        assert!(graph.node(graph.start_state()).transitions.contains_key(&e));
    }

    #[test]
    fn delete_rule_then_reexpand_drops_the_transition() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let fa = g.symbol("false").unwrap();
        graph.remove_rule(&mut g, b, &[fa]).unwrap();
        graph.ensure_expanded(&g, graph.start_state());
        let start = graph.node(graph.start_state());
        assert!(!start.transitions.contains_key(&fa));
        assert_eq!(start.transitions.len(), 2);
    }

    #[test]
    fn deleting_a_missing_rule_is_an_error_and_leaves_the_graph_intact() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let or = g.symbol("or").unwrap();
        let before = graph.stats().modifications;
        assert!(graph.remove_rule(&mut g, b, &[or]).is_err());
        assert_eq!(graph.stats().modifications, before);
        assert!(graph.live_nodes().all(|n| n.kind == ItemSetKind::Complete));
    }

    #[test]
    fn refcount_gc_reclaims_unreachable_states() {
        // Deleting `B ::= B and B` and re-expanding everything reachable
        // leaves the `and`-successor states unreferenced; with refcount GC
        // they are reclaimed once their referrers are re-expanded.
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::with_policy(&g, GcPolicy::RefCount);
        graph.expand_all(&g);
        let full = graph.num_live();
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.expand_all(&g);
        assert!(graph.stats().nodes_collected > 0, "GC reclaimed something");
        assert!(graph.num_live() < full);
    }

    #[test]
    fn retain_policy_keeps_everything() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::with_policy(&g, GcPolicy::Retain);
        graph.expand_all(&g);
        let full = graph.num_live();
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.expand_all(&g);
        assert_eq!(graph.stats().nodes_collected, 0);
        assert!(graph.num_live() >= full);
    }

    #[test]
    fn mark_and_sweep_reclaims_unreachable_states() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::with_policy(&g, GcPolicy::Retain);
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.expand_all(&g);
        let before_sweep = graph.num_live();
        graph.mark_and_sweep(&g);
        assert!(graph.num_live() < before_sweep);
        assert!(graph.stats().nodes_swept > 0);
        assert_eq!(graph.stats().sweeps, 1);
    }

    #[test]
    fn fig62_addition_is_handled_like_fig63() {
        // §6: adding `A ::= b` to the grammar of Fig. 6.2 invalidates item
        // set 3 (the one with a transition on A); re-expansion replaces its
        // `b`-successor by a new item set with kernel {B ::= b ., A ::= b .}
        // while the old `B ::= b .` item set survives for the other branch.
        let mut g = fixtures::fig62();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let a_sym = g.symbol("A").unwrap();
        let b_tok = g.symbol("b").unwrap();
        let rule_b = g.symbol("B").unwrap();
        graph.add_rule(&mut g, a_sym, vec![b_tok]);
        // Only the state with a transition on A is invalidated.
        let invalidated: Vec<_> = graph
            .live_nodes()
            .filter(|n| n.kind != ItemSetKind::Complete)
            .collect();
        assert_eq!(invalidated.len(), 1);
        assert!(invalidated[0].transitions.contains_key(&a_sym));
        graph.expand_all(&g);
        // There is now an item set whose kernel holds both completed rules
        // `B ::= b .` and `A ::= b .`.
        let double = graph.live_nodes().find(|n| {
            n.kernel.len() == 2
                && n.kernel
                    .iter()
                    .all(|i| i.is_complete(&g) && g.rule(i.rule).rhs == vec![b_tok])
        });
        assert!(double.is_some(), "merged b-successor item set exists");
        // And the plain `B ::= b .` item set still exists for the other branch.
        let single = graph.live_nodes().any(|n| {
            n.kernel.len() == 1
                && n.kernel.iter().all(|i| {
                    i.is_complete(&g) && g.rule(i.rule).lhs == rule_b && g.rule(i.rule).rhs == vec![b_tok]
                })
        });
        assert!(single, "original B ::= b . item set survives");
    }

    #[test]
    fn sweep_policy_reclaims_garbage() {
        let mut g = fixtures::booleans();
        let mut graph =
            ItemSetGraph::with_policy(&g, GcPolicy::RefCountWithSweep { threshold_percent: 10 });
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        let or = g.symbol("or").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.remove_rule(&mut g, b, &[b, or, b]).unwrap();
        graph.expand_all(&g);
        assert!(graph.stats().total_collected() > 0);
        // A final sweep reduces the live graph to exactly the automaton of
        // the reduced grammar (reference counting alone may leave cyclic
        // garbage behind, which is precisely why the paper suggests the
        // sweep).
        graph.mark_and_sweep(&g);
        let conventional = ipg_lr::Lr0Automaton::build(&g);
        assert_eq!(graph.num_live(), conventional.num_states());
        assert!(graph.live_nodes().all(|n| n.refcount > 0 || n.id == graph.start_state()));
    }

    #[test]
    fn render_mentions_kinds_and_transitions() {
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        graph.ensure_expanded(&g, graph.start_state());
        let text = graph.render(&g);
        assert!(text.contains("complete"));
        assert!(text.contains("initial"));
        assert!(text.contains("--true-->"));
    }

    #[test]
    fn try_node_reports_stale_ids_as_errors() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::with_policy(&g, GcPolicy::RefCount);
        graph.expand_all(&g);
        assert!(graph.try_node(graph.start_state()).is_ok());
        let bogus = StateId::from_index(9999);
        assert_eq!(graph.try_node(bogus).map(|_| ()), Err(GraphError::UnknownState(bogus)));
        assert!(GraphError::UnknownState(bogus).to_string().contains("9999"));
        // Collect something, then resolve its id.
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.expand_all(&g);
        let dead = (0..graph.stats().nodes_created)
            .map(StateId::from_index)
            .find(|&id| !graph.node(id).alive)
            .expect("refcount GC collected a node");
        assert_eq!(graph.try_node(dead).map(|_| ()), Err(GraphError::CollectedState(dead)));
        assert!(GraphError::CollectedState(dead).to_string().contains("reclaimed"));
    }

    #[test]
    fn concurrent_readers_share_one_lazily_expanded_graph() {
        use ipg_glr::GssParser;
        use ipg_lr::tokenize_names;

        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        let sentences = ["true and true", "false or true", "true or false and true"];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let parser = GssParser::new(&g);
                    for sentence in sentences {
                        let tokens = tokenize_names(&g, sentence).unwrap();
                        let tables = crate::tables::LazyTables::new(&g, &graph).unwrap();
                        assert!(parser.recognize(&tables, &tokens), "`{sentence}`");
                    }
                });
            }
        });
        // All threads drove the same graph; it expanded each state once.
        let full = ipg_lr::Lr0Automaton::build(&g).num_states();
        assert!(graph.stats().expansions <= full);
        assert!(graph.size().complete > 0);
    }

    #[test]
    fn graph_clone_is_independent_via_cow() {
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        graph.ensure_expanded(&g, graph.start_state());
        let clone = graph.clone();
        assert_eq!(clone.num_live(), graph.num_live());
        // The fork shares every chunk until one side writes.
        assert!(clone.shared_chunks_with(&graph).iter().all(|&s| s));
        let before = graph.num_live();
        clone.expand_all(&g);
        assert!(clone.num_live() > before);
        assert_eq!(graph.num_live(), before, "original untouched by the fork");
        // Writing copied the shared chunk on write.
        assert!(clone.shared_chunks_with(&graph).iter().all(|&s| !s));
        assert!(clone.stats().chunks_cowed > 0);
    }

    #[test]
    fn modify_on_a_fork_copies_only_chunks_with_invalidated_states() {
        // Build a graph spanning several chunks, fork it, apply the §6
        // invalidation on the fork, and check chunk-granular sharing:
        // exactly the chunks holding an invalidated state were copied.
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let mut fork = graph.clone();
        let mut g2 = g.clone();
        let b = g.symbol("B").unwrap();
        let unknown = g2.terminal("unknown");
        fork.add_rule(&mut g2, b, vec![unknown]);
        let dirty_chunks: std::collections::BTreeSet<usize> = fork
            .live_nodes()
            .filter(|n| n.kind != ItemSetKind::Complete)
            .map(|n| ItemSetGraph::chunk_of_state(n.id))
            .collect();
        assert!(!dirty_chunks.is_empty());
        let shared = fork.shared_chunks_with(&graph);
        for (c, &is_shared) in shared.iter().enumerate() {
            assert_eq!(
                is_shared,
                !dirty_chunks.contains(&c),
                "chunk {c}: shared iff it holds no invalidated state"
            );
        }
        // The original graph still answers for the old grammar.
        assert!(graph.live_nodes().all(|n| n.kind == ItemSetKind::Complete));
        assert_eq!(graph.grammar_version(), g.version());
    }
}
