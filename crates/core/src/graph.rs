//! The lazily generated, incrementally maintained graph of item sets — the
//! heart of IPG (§5 and §6 of the paper) — in a **shared-table** design:
//! any number of parser threads may *read* the graph concurrently while
//! expansion and `MODIFY` remain serialized writes.
//!
//! Every set of items lives in an arena and goes through the life cycle
//!
//! ```text
//! initial --EXPAND--> complete --MODIFY--> initial            (no GC)
//! initial --EXPAND--> complete --MODIFY--> dirty --RE-EXPAND--> complete   (refcount GC)
//! ```
//!
//! * `EXPAND` (§4/§5) computes the closure of the kernel, creates successor
//!   kernels and records transitions and reductions;
//! * `MODIFY` (§6.1) adds or deletes a grammar rule and invalidates exactly
//!   the complete item sets that had a transition on the rule's left-hand
//!   side (plus the start item set when the rule defines `START`);
//! * reference-count garbage collection (§6.2) reclaims item sets that are
//!   no longer referenced after a re-expansion; an optional mark-and-sweep
//!   pass (suggested by the paper as future work) handles cycles.
//!
//! ## Concurrency design
//!
//! Node storage is **sharded**: node `id` lives in shard `id % 16`, and
//! each shard is guarded by its own `RwLock`. The steady-state read path
//! ([`ItemSetGraph::try_read_actions`] via the lazy tables) takes a single
//! shard *read* lock, reads the published dense [`ActionRow`] plus the
//! node's reduce set, and returns — readers of complete rows never block
//! each other, and queries for different states mostly touch different
//! lock words.
//!
//! All structural mutation (EXPAND / RE-EXPAND / row publication / MODIFY /
//! GC) is funnelled through one internal `Mutex` (the *writer*), which
//! additionally owns the kernel index, the work counters and the reusable
//! scratch buffers. A writer takes the inner mutex first and then at most
//! one shard lock at a time, so writers serialize among themselves, block
//! readers only for the shard they are touching, and cannot deadlock.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use ipg_grammar::{Grammar, GrammarError, RuleId, SymbolId};
use ipg_lr::itemset::{closure, completed_items, partition_by_next_symbol, start_kernel, ItemSet};
use ipg_lr::{Item, StateId};

use crate::stats::{GenStats, GraphSize};

/// The life-cycle stage of a set of items (the paper's `type` field).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ItemSetKind {
    /// The kernel is known but transitions and reductions have not been
    /// computed yet.
    Initial,
    /// The item set was complete, but a grammar modification invalidated
    /// it. Its *old* transitions are retained so that reference counts can
    /// be adjusted when it is re-expanded (§6.2).
    Dirty,
    /// Transitions and reductions are valid for the current grammar.
    Complete,
}

/// Garbage-collection policy for item sets that become unreachable after
/// grammar modifications.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GcPolicy {
    /// §6.1: invalidated item sets become `Initial`; nothing is ever
    /// reclaimed ("when everything is retained, we end up with too much
    /// garbage").
    Retain,
    /// §6.2: invalidated item sets become `Dirty`; reference counting
    /// reclaims item sets whose count drops to zero after re-expansion.
    #[default]
    RefCount,
    /// Reference counting plus a mark-and-sweep pass whenever the fraction
    /// of dirty/garbage item sets exceeds the given percentage (0–100) of
    /// the graph — the paper's suggested remedy for cyclic references.
    RefCountWithSweep {
        /// Sweep when `100 * (live - reachable) / live` exceeds this value.
        threshold_percent: u8,
    },
}

/// Errors reported by the public node accessors of the shared graph.
///
/// A server that hands `StateId`s across grammar modifications can end up
/// holding stale ids; resolving them must be an error, not a panic that
/// poisons the shared graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The id does not name any node of this graph.
    UnknownState(StateId),
    /// The node existed but has been reclaimed by garbage collection.
    CollectedState(StateId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownState(id) => write!(f, "state {id} does not exist in this graph"),
            GraphError::CollectedState(id) => {
                write!(f, "state {id} has been reclaimed by garbage collection")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A dense, symbol-indexed shadow of a complete item set's transitions —
/// the action-row cache of the lazy tables (the §5.1 `ACTION`/`GOTO` hot
/// path). One `u32` per interned symbol maps the symbol to its shift/GOTO
/// target (`0` = no edge), so a steady-state table query is a single array
/// load instead of a `BTreeMap` walk, with zero heap allocation.
///
/// A row's validity is tied to the life cycle of the item set it shadows:
/// it is built lazily on the first query after the node becomes `Complete`
/// and dropped the moment the node is invalidated by `MODIFY` or replaced
/// by `RE-EXPAND` — exactly when the underlying expansion itself becomes
/// invalid (§6 semantics).
#[derive(Clone, Debug)]
pub struct ActionRow {
    /// Grammar version at build time (diagnostic; validity is structural).
    version: u64,
    /// `symbol index -> target state + 1`, `0` meaning no transition.
    targets: Vec<u32>,
}

impl ActionRow {
    /// The shift/GOTO target recorded for `symbol`, if any. Symbols
    /// interned after the row was built read as "no transition", which is
    /// correct: the node cannot have grown an edge on them without being
    /// re-expanded (which drops the row).
    #[inline]
    pub fn target(&self, symbol: SymbolId) -> Option<StateId> {
        match self.targets.get(symbol.index()) {
            Some(&t) if t != 0 => Some(StateId(t - 1)),
            _ => None,
        }
    }

    /// The grammar version the row was built against.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// The immutable, published read-view of one complete state: its dense
/// row, reduce set and accept flag. Entries are shared via `Arc` between
/// the graph and any number of pinned reader snapshots.
#[derive(Debug)]
pub(crate) struct PublishedState {
    pub(crate) row: ActionRow,
    pub(crate) reductions: Vec<RuleId>,
    pub(crate) accepting: bool,
}

/// An immutable snapshot of every published state, indexed by state id.
///
/// This is the *epoch* half of the read/expand split: the writer publishes
/// a fresh `Arc<TableSnapshot>` whenever it materialises (or retracts) a
/// row, and each `LazyTables` handle pins one snapshot and serves all its
/// steady-state queries from it with **no locking or atomics at all**.
/// Pinning is sound because everything that could make a published entry
/// *wrong* — `MODIFY`, mark-and-sweep — requires `&mut ItemSetGraph`,
/// which the borrow checker refuses while any handle (a `&` borrow) is
/// alive. The one `&self` writer that retracts entries, refcount GC
/// during re-expansion, only collects states unreachable under the
/// current grammar — a parse in flight holds published predecessors
/// (whose refcounts pin their successors), so it can never be directed
/// into a collected state. Concurrent lazy expansion only ever *adds*
/// entries, which a pinned reader picks up by refreshing on a miss.
#[derive(Debug, Default)]
pub(crate) struct TableSnapshot {
    states: Vec<Option<Arc<PublishedState>>>,
}

impl TableSnapshot {
    #[inline]
    pub(crate) fn get(&self, id: StateId) -> Option<&PublishedState> {
        self.states.get(id.index()).and_then(|e| e.as_deref())
    }
}

/// One set of items in the graph.
#[derive(Clone, Debug)]
pub struct ItemSetNode {
    /// Identity of the node (index in the arena; stable for the lifetime of
    /// the graph, even across garbage collection).
    pub id: StateId,
    /// The kernel: the dotted rules that are potentially being recognised.
    pub kernel: ItemSet,
    /// Life-cycle stage.
    pub kind: ItemSetKind,
    /// Closure of the kernel (valid when `Complete`; retained on `Dirty`).
    pub closure: ItemSet,
    /// Outgoing edges (valid when `Complete`; the *old* edges when `Dirty`).
    pub transitions: BTreeMap<SymbolId, StateId>,
    /// Rules that may be reduced in this state (valid when `Complete`).
    pub reductions: Vec<RuleId>,
    /// Whether this state has the `($ accept)` transition.
    pub accepting: bool,
    /// Number of transitions from live item sets that point here.
    pub refcount: usize,
    /// `false` once the node has been reclaimed by a garbage collector.
    pub alive: bool,
    /// Dense table-row cache over `transitions`; `None` until the first
    /// query after (re-)expansion, dropped on every invalidation.
    pub row: Option<ActionRow>,
}

impl ItemSetNode {
    fn new(id: StateId, kernel: ItemSet) -> Self {
        ItemSetNode {
            id,
            kernel,
            kind: ItemSetKind::Initial,
            closure: ItemSet::new(),
            transitions: BTreeMap::new(),
            reductions: Vec::new(),
            accepting: false,
            refcount: 0,
            alive: true,
            row: None,
        }
    }

    /// `true` when the node still needs (re-)expansion before its
    /// transitions and reductions may be consulted.
    pub fn needs_expansion(&self) -> bool {
        self.kind != ItemSetKind::Complete
    }
}

/// Number of storage shards. A small power of two: enough to spread the
/// read-lock words of concurrently queried states across cache lines,
/// small enough that full-graph writer scans stay cheap.
const NUM_SHARDS: usize = 16;

#[inline]
fn shard_of(id: StateId) -> usize {
    (id.0 as usize) % NUM_SHARDS
}

#[inline]
fn slot_of(id: StateId) -> usize {
    (id.0 as usize) / NUM_SHARDS
}

/// Writer-owned state: everything only structural mutation touches.
#[derive(Clone, Debug)]
struct GraphInner {
    /// Total number of nodes ever created (dense id space).
    len: usize,
    /// Kernel → node index for all *live* nodes; used by `EXPAND` to share
    /// item sets ("if a set of items with kernel kernel' does not yet
    /// exist, it is generated").
    kernel_index: HashMap<ItemSet, StateId>,
    /// Work counters (query counters live outside, see `ItemSetGraph`).
    stats: GenStats,
    grammar_version: u64,
    /// Scratch for `RE-EXPAND`'s old-target snapshot (reused, not
    /// reallocated per re-expansion).
    scratch_targets: Vec<StateId>,
    /// Scratch for `expand_all`'s pending list.
    scratch_pending: Vec<StateId>,
    /// Scratch work-stack for iterative `DECR-REFCOUNT`.
    gc_stack: Vec<StateId>,
}

/// The lazily generated, concurrently readable graph of item sets.
///
/// All read-path methods take `&self` and may be called from any number of
/// threads; the expansion entry points ([`ItemSetGraph::ensure_expanded`],
/// [`ItemSetGraph::ensure_row`], [`ItemSetGraph::ensure_state`],
/// [`ItemSetGraph::expand_all`]) also take `&self` but serialize internally
/// as writers. Grammar modifications (`add_rule` / `remove_rule` /
/// `mark_and_sweep`) keep `&mut self`: they change the *language* the graph
/// answers for, so callers must hold exclusive access. The `IpgServer`
/// satisfies this without draining readers by *forking*: `Clone` produces
/// a deep, consistent copy (taken under the internal writer mutex),
/// `MODIFY` runs on the private fork, and the fork is published as a new
/// grammar epoch while parses in flight keep reading the original.
#[derive(Debug)]
pub struct ItemSetGraph {
    shards: Vec<RwLock<Vec<ItemSetNode>>>,
    inner: Mutex<GraphInner>,
    /// The current published snapshot (see [`TableSnapshot`]). Readers
    /// clone the `Arc` once per handle refresh, not per query.
    published: RwLock<Arc<TableSnapshot>>,
    /// `ACTION` query count, aggregated from the per-handle counters of the
    /// lazy tables (relaxed; flushed once per table handle, not per query).
    action_calls: AtomicUsize,
    /// `GOTO` query count (see `action_calls`).
    goto_calls: AtomicUsize,
    start: StateId,
    gc: GcPolicy,
}

impl Clone for ItemSetGraph {
    fn clone(&self) -> Self {
        let inner = self.inner.lock().unwrap();
        ItemSetGraph {
            shards: self
                .shards
                .iter()
                .map(|s| RwLock::new(s.read().unwrap().clone()))
                .collect(),
            inner: Mutex::new(inner.clone()),
            published: RwLock::new(self.published.read().unwrap().clone()),
            action_calls: AtomicUsize::new(self.action_calls.load(Ordering::Relaxed)),
            goto_calls: AtomicUsize::new(self.goto_calls.load(Ordering::Relaxed)),
            start: self.start,
            gc: self.gc,
        }
    }
}

impl ItemSetGraph {
    /// The paper's lazy `GENERATE-PARSER` (§5.1): creates only the start
    /// item set, as an initial set of items.
    pub fn new(grammar: &Grammar) -> Self {
        Self::with_policy(grammar, GcPolicy::default())
    }

    /// Like [`ItemSetGraph::new`] with an explicit garbage-collection
    /// policy.
    pub fn with_policy(grammar: &Grammar, gc: GcPolicy) -> Self {
        let graph = ItemSetGraph {
            shards: (0..NUM_SHARDS).map(|_| RwLock::new(Vec::new())).collect(),
            published: RwLock::new(Arc::new(TableSnapshot::default())),
            inner: Mutex::new(GraphInner {
                len: 0,
                kernel_index: HashMap::new(),
                stats: GenStats::default(),
                grammar_version: grammar.version(),
                scratch_targets: Vec::new(),
                scratch_pending: Vec::new(),
                gc_stack: Vec::new(),
            }),
            action_calls: AtomicUsize::new(0),
            goto_calls: AtomicUsize::new(0),
            start: StateId(0),
            gc,
        };
        {
            let mut inner = graph.inner.lock().unwrap();
            let start = graph.intern_kernel_locked(&mut inner, start_kernel(grammar));
            debug_assert_eq!(start, StateId(0));
        }
        graph
    }

    /// The state in which parsing starts.
    pub fn start_state(&self) -> StateId {
        self.start
    }

    /// The garbage-collection policy in force.
    pub fn gc_policy(&self) -> GcPolicy {
        self.gc
    }

    /// The grammar version the graph currently corresponds to. Updated by
    /// [`ItemSetGraph::add_rule`] / [`ItemSetGraph::remove_rule`].
    pub fn grammar_version(&self) -> u64 {
        self.inner.lock().unwrap().grammar_version
    }

    /// A snapshot of the work counters.
    pub fn stats(&self) -> GenStats {
        let mut stats = self.inner.lock().unwrap().stats;
        stats.action_calls += self.action_calls.load(Ordering::Relaxed);
        stats.goto_calls += self.goto_calls.load(Ordering::Relaxed);
        stats
    }

    /// A snapshot of a node, or an error for ids that were never handed out
    /// by this graph or whose node has been garbage-collected. This is the
    /// accessor server-side callers should use: a stale [`StateId`] must
    /// not be able to crash (or poison) a graph shared by many parsers.
    pub fn try_node(&self, id: StateId) -> Result<ItemSetNode, GraphError> {
        let shard = self.shards[shard_of(id)].read().unwrap();
        match shard.get(slot_of(id)) {
            None => Err(GraphError::UnknownState(id)),
            Some(node) if !node.alive => Err(GraphError::CollectedState(id)),
            Some(node) => Ok(node.clone()),
        }
    }

    /// The life-cycle stage of a node, without cloning it — the cheap
    /// accessor for callers (and tests) that only need the kind.
    pub fn node_kind(&self, id: StateId) -> Result<ItemSetKind, GraphError> {
        let shard = self.shards[shard_of(id)].read().unwrap();
        match shard.get(slot_of(id)) {
            None => Err(GraphError::UnknownState(id)),
            Some(node) if !node.alive => Err(GraphError::CollectedState(id)),
            Some(node) => Ok(node.kind),
        }
    }

    /// A snapshot of a node (dead nodes remain accessible for
    /// post-mortems).
    ///
    /// # Panics
    /// Panics with a descriptive message when `id` is out of range; use
    /// [`ItemSetGraph::try_node`] when the id may be stale.
    pub fn node(&self, id: StateId) -> ItemSetNode {
        let shard = self.shards[shard_of(id)].read().unwrap();
        shard
            .get(slot_of(id))
            .unwrap_or_else(|| panic!("{}", GraphError::UnknownState(id)))
            .clone()
    }

    /// A point-in-time snapshot of the live nodes, in id order.
    pub fn live_nodes(&self) -> impl Iterator<Item = ItemSetNode> {
        let mut nodes: Vec<ItemSetNode> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().unwrap();
            nodes.extend(shard.iter().filter(|n| n.alive).cloned());
        }
        nodes.sort_by_key(|n| n.id.index());
        nodes.into_iter()
    }

    /// Number of live nodes.
    pub fn num_live(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap().iter().filter(|n| n.alive).count())
            .sum()
    }

    /// Size snapshot of the graph.
    pub fn size(&self) -> GraphSize {
        let mut size = GraphSize::default();
        for shard in &self.shards {
            let shard = shard.read().unwrap();
            for node in shard.iter().filter(|n| n.alive) {
                size.total += 1;
                match node.kind {
                    ItemSetKind::Initial => size.initial += 1,
                    ItemSetKind::Dirty => size.dirty += 1,
                    ItemSetKind::Complete => size.complete += 1,
                }
                if node.kind != ItemSetKind::Initial {
                    size.transitions += node.transitions.len();
                }
            }
        }
        size
    }

    /// Runs `f` on a shared borrow of the node.
    fn with_node<R>(&self, id: StateId, f: impl FnOnce(&ItemSetNode) -> R) -> R {
        let shard = self.shards[shard_of(id)].read().unwrap();
        f(&shard[slot_of(id)])
    }

    /// Runs `f` on an exclusive borrow of the node.
    fn with_node_mut<R>(&self, id: StateId, f: impl FnOnce(&mut ItemSetNode) -> R) -> R {
        let mut shard = self.shards[shard_of(id)].write().unwrap();
        f(&mut shard[slot_of(id)])
    }

    fn intern_kernel_locked(&self, inner: &mut GraphInner, kernel: ItemSet) -> StateId {
        if let Some(&id) = inner.kernel_index.get(&kernel) {
            return id;
        }
        let id = StateId::from_index(inner.len);
        inner.len += 1;
        inner.kernel_index.insert(kernel.clone(), id);
        let mut shard = self.shards[shard_of(id)].write().unwrap();
        debug_assert_eq!(shard.len(), slot_of(id));
        shard.push(ItemSetNode::new(id, kernel));
        inner.stats.nodes_created += 1;
        id
    }

    // ------------------------------------------------------------------
    // Read path (`&self`, pinned snapshots — no locks per query)
    // ------------------------------------------------------------------

    /// The current published snapshot. A `LazyTables` handle pins one of
    /// these and refreshes it on a miss; all steady-state queries are then
    /// plain array reads against immutable data.
    pub(crate) fn published_snapshot(&self) -> Arc<TableSnapshot> {
        self.published.read().unwrap().clone()
    }

    /// `true` when `id` names a live node. Must be consulted *under the
    /// inner mutex* before materialising anything for `id`: refcount GC
    /// runs on the `&self` writer path (re-expansion of dirty nodes), so
    /// a lock-free liveness check could race a collection and resurrect a
    /// dead node into the published snapshot.
    fn is_live_locked(&self, inner: &GraphInner, id: StateId) -> bool {
        id.index() < inner.len && self.with_node(id, |n| n.alive)
    }

    /// The `ACTION` miss path: materialise and publish `state` if it is a
    /// real, live state. Returns `false` for stale ids (out of range, or
    /// reclaimed by GC), which read as error cells. The liveness check
    /// happens under the writer mutex, so a concurrent collection cannot
    /// slip between the check and the (re-)publication.
    pub(crate) fn ensure_state_checked(&self, grammar: &Grammar, id: StateId) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if !self.is_live_locked(&inner, id) {
            return false;
        }
        self.ensure_expanded_locked(&mut inner, grammar, id);
        self.ensure_row_locked(&mut inner, grammar, id);
        true
    }

    /// The `GOTO` miss path. Appendix A proves `GOTO` is only called with
    /// complete item sets, so no expansion is performed — a non-complete
    /// (or stale) state reads as an error entry after a debug assertion;
    /// for a complete state the dense row is published so the caller can
    /// refresh its snapshot and read the target.
    pub(crate) fn prepare_goto(&self, grammar: &Grammar, id: StateId) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if !self.is_live_locked(&inner, id) {
            return false;
        }
        let kind = self.with_node(id, |n| n.kind);
        debug_assert_eq!(
            kind,
            ItemSetKind::Complete,
            "Appendix A invariant violated: GOTO called on a non-complete item set"
        );
        if kind != ItemSetKind::Complete {
            return false;
        }
        self.ensure_row_locked(&mut inner, grammar, id);
        true
    }

    /// Flush per-handle query counters into the graph-wide aggregates
    /// (called when a lazy-tables handle is dropped).
    pub(crate) fn record_queries(&self, action_calls: usize, goto_calls: usize) {
        if action_calls > 0 {
            self.action_calls.fetch_add(action_calls, Ordering::Relaxed);
        }
        if goto_calls > 0 {
            self.goto_calls.fetch_add(goto_calls, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // Write path (serialized on the inner mutex)
    // ------------------------------------------------------------------

    /// Ensures the node's transitions and reductions are valid for the
    /// current grammar: the lazy `ACTION`'s "if state.type = initial then
    /// EXPAND(state)", extended with `RE-EXPAND` for dirty nodes.
    pub fn ensure_expanded(&self, grammar: &Grammar, id: StateId) {
        let mut inner = self.inner.lock().unwrap();
        self.ensure_expanded_locked(&mut inner, grammar, id);
    }

    /// Ensures the node is expanded *and* its dense row is published — the
    /// single writer entry point behind the lazy tables' read path.
    pub fn ensure_state(&self, grammar: &Grammar, id: StateId) {
        let mut inner = self.inner.lock().unwrap();
        self.ensure_expanded_locked(&mut inner, grammar, id);
        self.ensure_row_locked(&mut inner, grammar, id);
    }

    fn ensure_expanded_locked(&self, inner: &mut GraphInner, grammar: &Grammar, id: StateId) {
        match self.with_node(id, |n| n.kind) {
            ItemSetKind::Complete => {}
            ItemSetKind::Initial => self.expand_locked(inner, grammar, id),
            ItemSetKind::Dirty => self.re_expand_locked(inner, grammar, id),
        }
    }

    /// The paper's `EXPAND`: transform an initial set of items into a
    /// complete one.
    fn expand_locked(&self, inner: &mut GraphInner, grammar: &Grammar, id: StateId) {
        inner.stats.expansions += 1;
        self.expand_common_locked(inner, grammar, id);
    }

    /// The paper's `RE-EXPAND` (§6.2): expand a dirty set of items, then
    /// release the references its old transitions held.
    fn re_expand_locked(&self, inner: &mut GraphInner, grammar: &Grammar, id: StateId) {
        inner.stats.re_expansions += 1;
        let mut old_targets = std::mem::take(&mut inner.scratch_targets);
        old_targets.clear();
        self.with_node(id, |n| {
            old_targets.extend(n.transitions.values().copied());
        });
        self.expand_common_locked(inner, grammar, id);
        if self.refcounting() {
            for &target in &old_targets {
                self.decr_refcount_locked(inner, target);
            }
        }
        inner.scratch_targets = old_targets;
    }

    fn expand_common_locked(&self, inner: &mut GraphInner, grammar: &Grammar, id: StateId) {
        inner.stats.closures += 1;
        let kernel = self.with_node(id, |n| n.kernel.clone());
        let closed = closure(grammar, &kernel);
        let successors = partition_by_next_symbol(grammar, &closed);

        let mut transitions = BTreeMap::new();
        for (symbol, succ_kernel) in successors {
            let target = self.intern_kernel_locked(inner, succ_kernel);
            transitions.insert(symbol, target);
            if self.refcounting() {
                self.with_node_mut(target, |n| n.refcount += 1);
            }
        }

        let mut reductions = Vec::new();
        let mut accepting = false;
        for item in completed_items(grammar, &closed) {
            // A completed item of a rule that has been deleted from the
            // grammar must not be reported as a reduction; such items can
            // linger in the kernels of stale (unreachable) item sets.
            if !grammar.is_active(item.rule) {
                continue;
            }
            if grammar.rule(item.rule).lhs == grammar.start_symbol() {
                accepting = true;
            } else {
                reductions.push(item.rule);
            }
        }
        reductions.sort();
        reductions.dedup();

        self.with_node_mut(id, move |node| {
            node.closure = closed;
            node.transitions = transitions;
            node.reductions = reductions;
            node.accepting = accepting;
            node.kind = ItemSetKind::Complete;
            // The dense row shadows the (old) transitions; rebuild on
            // demand. Readers observe the kind change and the dropped row
            // atomically: both happen under this shard write lock.
            node.row = None;
        });
    }

    /// Builds the dense [`ActionRow`] of a complete node if it is missing.
    /// The row is the steady-state `ACTION`/`GOTO` fast path: after this,
    /// table queries for the node are array loads with no allocation.
    ///
    /// # Panics
    /// Debug-asserts that the node is `Complete`; rows of initial/dirty
    /// nodes would shadow invalid transitions.
    pub fn ensure_row(&self, grammar: &Grammar, id: StateId) {
        let mut inner = self.inner.lock().unwrap();
        self.ensure_row_locked(&mut inner, grammar, id);
    }

    fn ensure_row_locked(&self, inner: &mut GraphInner, grammar: &Grammar, id: StateId) {
        self.build_row_locked(inner, grammar, id);
        // Publish (or re-publish after invalidation) the read-view entry so
        // pinned reader snapshots can pick it up on their next refresh.
        self.publish_entry(id);
    }

    /// Builds the dense row in the node storage without touching the
    /// published snapshot (the caller publishes, either per entry or in
    /// one batch).
    fn build_row_locked(&self, inner: &mut GraphInner, grammar: &Grammar, id: StateId) {
        let num_symbols = grammar.symbols().len();
        let version = grammar.version();
        let built = self.with_node_mut(id, |node| {
            debug_assert_eq!(
                node.kind,
                ItemSetKind::Complete,
                "action rows only shadow complete item sets"
            );
            if node.row.is_some() {
                return false;
            }
            let mut targets = vec![0u32; num_symbols];
            for (&symbol, &target) in &node.transitions {
                targets[symbol.index()] = target.0 + 1;
            }
            node.row = Some(ActionRow { version, targets });
            true
        });
        if built {
            inner.stats.rows_built += 1;
        }
    }

    /// Copies the node's row/reductions/accept flag into a fresh published
    /// snapshot (copy-on-write over the shared entry `Arc`s). A no-op when
    /// the entry is already present: an existing entry is always current,
    /// because every path that drops or replaces a row first retracts the
    /// entry (MODIFY/sweep rebuild the snapshot, GC unpublishes).
    ///
    /// The per-publication COW clone makes cold generation quadratic in
    /// state count *in pointer copies*, which measures as noise next to
    /// the closure computation each new state also pays (the cold serving
    /// scenario runs at warm-throughput parity); batch paths that build
    /// many rows at once ([`ItemSetGraph::publish_all_rows`]) swap one
    /// rebuilt snapshot instead.
    fn publish_entry(&self, id: StateId) {
        {
            let published = self.published.read().unwrap();
            if published.get(id).is_some() {
                return;
            }
        }
        let entry = self.with_node(id, |node| {
            node.row.as_ref().map(|row| {
                Arc::new(PublishedState {
                    row: row.clone(),
                    reductions: node.reductions.clone(),
                    accepting: node.accepting,
                })
            })
        });
        let Some(entry) = entry else { return };
        let mut published = self.published.write().unwrap();
        let mut states = published.states.clone();
        if states.len() <= id.index() {
            states.resize(id.index() + 1, None);
        }
        states[id.index()] = Some(entry);
        *published = Arc::new(TableSnapshot { states });
    }

    /// Drops a state's published entry (after garbage collection).
    fn unpublish_entry(&self, id: StateId) {
        let mut published = self.published.write().unwrap();
        if published
            .states
            .get(id.index())
            .is_some_and(|e| e.is_some())
        {
            let mut states = published.states.clone();
            states[id.index()] = None;
            *published = Arc::new(TableSnapshot { states });
        }
    }

    /// Rebuilds the published snapshot from the node storage — used by the
    /// exclusive (`&mut self`) mutations, which may invalidate many rows
    /// at once.
    fn rebuild_published(&self) {
        let mut states: Vec<Option<Arc<PublishedState>>> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().unwrap();
            for node in shard.iter() {
                let (Some(row), true) = (&node.row, node.alive && node.kind == ItemSetKind::Complete)
                else {
                    continue;
                };
                if states.len() <= node.id.index() {
                    states.resize(node.id.index() + 1, None);
                }
                states[node.id.index()] = Some(Arc::new(PublishedState {
                    row: row.clone(),
                    reductions: node.reductions.clone(),
                    accepting: node.accepting,
                }));
            }
        }
        *self.published.write().unwrap() = Arc::new(TableSnapshot { states });
    }

    /// The dense action row of a node, if one has been built and is valid.
    pub fn action_row(&self, id: StateId) -> Option<ActionRow> {
        self.with_node(id, |n| n.row.clone())
    }

    fn refcounting(&self) -> bool {
        !matches!(self.gc, GcPolicy::Retain)
    }

    /// The paper's `DECR-REFCOUNT`: release one reference to `id`; if the
    /// count drops to zero the node is reclaimed and the references *it*
    /// holds are released in turn. Iterative over a reused work stack, so
    /// deep release chains neither recurse nor allocate in steady state.
    fn decr_refcount_locked(&self, inner: &mut GraphInner, id: StateId) {
        let mut stack = std::mem::take(&mut inner.gc_stack);
        debug_assert!(stack.is_empty());
        stack.push(id);
        while let Some(id) = stack.pop() {
            if id == self.start {
                continue; // the start item set is never collected
            }
            let mut shard = self.shards[shard_of(id)].write().unwrap();
            let node = &mut shard[slot_of(id)];
            if !node.alive {
                continue;
            }
            node.refcount = node.refcount.saturating_sub(1);
            if node.refcount > 0 {
                continue;
            }
            node.alive = false;
            // A dead node is never queried again; free its row (the
            // largest per-node allocation) immediately.
            node.row = None;
            inner.stats.nodes_collected += 1;
            // Only remove the index entry if it still points at this node
            // (a newer live node may have reused the kernel).
            if inner.kernel_index.get(&node.kernel) == Some(&id) {
                inner.kernel_index.remove(&node.kernel);
            }
            if node.kind != ItemSetKind::Initial {
                stack.extend(node.transitions.values().copied());
            }
            drop(shard);
            self.unpublish_entry(id);
        }
        inner.gc_stack = stack;
    }

    /// Adds `lhs ::= rhs` to the grammar and updates the graph — the
    /// paper's `ADD-RULE`.
    ///
    /// `MODIFY` requires exclusive access (`&mut self`): it changes the
    /// language the graph answers for, so no parse may be in flight.
    pub fn add_rule(&mut self, grammar: &mut Grammar, lhs: SymbolId, rhs: Vec<SymbolId>) -> RuleId {
        let rule = grammar.add_rule(lhs, rhs);
        let mut inner = self.inner.lock().unwrap();
        self.modify_locked(&mut inner, grammar, lhs, rule, true);
        rule
    }

    /// Deletes `lhs ::= rhs` from the grammar and updates the graph — the
    /// paper's `DELETE-RULE`. Exclusive for the same reason as
    /// [`ItemSetGraph::add_rule`].
    pub fn remove_rule(
        &mut self,
        grammar: &mut Grammar,
        lhs: SymbolId,
        rhs: &[SymbolId],
    ) -> Result<RuleId, GrammarError> {
        let rule = grammar.remove_rule_matching(lhs, rhs)?;
        let mut inner = self.inner.lock().unwrap();
        self.modify_locked(&mut inner, grammar, lhs, rule, false);
        Ok(rule)
    }

    /// The paper's `MODIFY`: after the grammar has been updated, invalidate
    /// every complete item set whose expansion is no longer correct. These
    /// are exactly the complete item sets with a transition on the rule's
    /// left-hand side, plus the start item set when the rule defines
    /// `START`.
    fn modify_locked(
        &self,
        inner: &mut GraphInner,
        grammar: &Grammar,
        lhs: SymbolId,
        rule: RuleId,
        added: bool,
    ) {
        inner.stats.modifications += 1;
        inner.grammar_version = grammar.version();
        let invalidated_kind = if self.refcounting() {
            ItemSetKind::Dirty
        } else {
            ItemSetKind::Initial
        };

        if lhs == grammar.start_symbol() {
            // The start item set's kernel is derived from the START rules;
            // keep it in sync and re-expand it lazily.
            let start = self.start;
            let (was_complete, new_kernel) = self.with_node_mut(start, |node| {
                let item = Item::start(rule);
                if added {
                    node.kernel.insert(item);
                } else {
                    node.kernel.remove(&item);
                }
                let was_complete = node.kind == ItemSetKind::Complete;
                if was_complete {
                    node.kind = invalidated_kind;
                    node.row = None;
                }
                (was_complete, node.kernel.clone())
            });
            if was_complete {
                inner.stats.invalidations += 1;
            }
            // Keep the kernel index in sync with the changed kernel.
            inner.kernel_index.retain(|_, &mut v| v != start);
            inner.kernel_index.insert(new_kernel, start);
        } else {
            // Invalidate in place: the cached action rows are dropped in
            // the same breath as the item sets they shadow.
            for shard in &self.shards {
                let mut shard = shard.write().unwrap();
                for node in shard.iter_mut() {
                    if node.alive
                        && node.kind == ItemSetKind::Complete
                        && node.transitions.contains_key(&lhs)
                    {
                        node.kind = invalidated_kind;
                        node.row = None;
                        inner.stats.invalidations += 1;
                    }
                }
            }
        }

        self.maybe_sweep_locked(inner, grammar);
        // Invalidation dropped rows in place; retract them from the
        // published snapshot too (exclusive: no reader holds a handle).
        self.rebuild_published();
    }

    /// Runs a mark-and-sweep pass if the policy asks for one and the
    /// garbage fraction exceeds its threshold.
    fn maybe_sweep_locked(&self, inner: &mut GraphInner, grammar: &Grammar) {
        let GcPolicy::RefCountWithSweep { threshold_percent } = self.gc else {
            return;
        };
        let live = self.num_live();
        if live == 0 {
            return;
        }
        let reachable = self.reachable_from_start_locked(inner);
        let garbage = live.saturating_sub(reachable.len());
        if garbage * 100 > threshold_percent as usize * live {
            self.mark_and_sweep_locked(inner, grammar);
        }
    }

    fn reachable_from_start_locked(&self, inner: &GraphInner) -> Vec<StateId> {
        let mut marked = vec![false; inner.len];
        let mut stack = vec![self.start];
        marked[self.start.index()] = true;
        let mut targets: Vec<StateId> = Vec::new();
        while let Some(id) = stack.pop() {
            targets.clear();
            self.with_node(id, |node| {
                if node.kind != ItemSetKind::Initial {
                    targets.extend(node.transitions.values().copied());
                }
            });
            for &target in &targets {
                if !marked[target.index()] && self.with_node(target, |n| n.alive) {
                    marked[target.index()] = true;
                    stack.push(target);
                }
            }
        }
        marked
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(i, _)| StateId::from_index(i))
            .collect()
    }

    /// Mark-and-sweep collection: reclaims every live item set that is not
    /// reachable from the start item set, and recomputes reference counts.
    /// This is the paper's proposed answer to cyclic references that
    /// reference counting alone cannot reclaim. Exclusive, like `MODIFY`.
    pub fn mark_and_sweep(&mut self, grammar: &Grammar) {
        let mut inner = self.inner.lock().unwrap();
        self.mark_and_sweep_locked(&mut inner, grammar);
        self.rebuild_published();
    }

    fn mark_and_sweep_locked(&self, inner: &mut GraphInner, _grammar: &Grammar) {
        inner.stats.sweeps += 1;
        let reachable = self.reachable_from_start_locked(inner);
        let mut keep = vec![false; inner.len];
        for id in &reachable {
            keep[id.index()] = true;
        }
        for (i, &keep_node) in keep.iter().enumerate() {
            let id = StateId::from_index(i);
            let mut shard = self.shards[shard_of(id)].write().unwrap();
            let node = &mut shard[slot_of(id)];
            if node.alive && !keep_node {
                node.alive = false;
                node.row = None;
                inner.stats.nodes_swept += 1;
                if inner.kernel_index.get(&node.kernel) == Some(&id) {
                    inner.kernel_index.remove(&node.kernel);
                }
            }
        }
        // Recompute reference counts over the surviving graph.
        for shard in &self.shards {
            let mut shard = shard.write().unwrap();
            for node in shard.iter_mut() {
                node.refcount = 0;
            }
        }
        let mut targets: Vec<StateId> = Vec::new();
        for i in 0..inner.len {
            let id = StateId::from_index(i);
            targets.clear();
            self.with_node(id, |node| {
                if node.alive && node.kind != ItemSetKind::Initial {
                    targets.extend(node.transitions.values().copied());
                }
            });
            for &target in &targets {
                self.with_node_mut(target, |n| {
                    if n.alive {
                        n.refcount += 1;
                    }
                });
            }
        }
    }

    /// Forces the complete expansion of the graph (every reachable item
    /// set). Afterwards the graph is equivalent to the conventionally
    /// generated automaton — useful for tests, for the "PG via IPG"
    /// comparison, and for warming a served table before taking traffic.
    pub fn expand_all(&self, grammar: &Grammar) {
        let mut inner = self.inner.lock().unwrap();
        let mut pending = std::mem::take(&mut inner.scratch_pending);
        loop {
            pending.clear();
            for i in 0..inner.len {
                let id = StateId::from_index(i);
                if self.with_node(id, |n| n.alive && n.needs_expansion()) {
                    pending.push(id);
                }
            }
            if pending.is_empty() {
                break;
            }
            for &id in &pending {
                if self.with_node(id, |n| n.alive && n.needs_expansion()) {
                    self.ensure_expanded_locked(&mut inner, grammar, id);
                }
            }
        }
        inner.scratch_pending = pending;
    }

    /// Publishes the dense action row of every live complete node — used
    /// together with [`ItemSetGraph::expand_all`] to fully warm a served
    /// table.
    pub fn publish_all_rows(&self, grammar: &Grammar) {
        let mut inner = self.inner.lock().unwrap();
        for i in 0..inner.len {
            let id = StateId::from_index(i);
            if self.with_node(id, |n| n.alive && n.kind == ItemSetKind::Complete) {
                self.build_row_locked(&mut inner, grammar, id);
            }
        }
        // One batch publication instead of a copy-on-write snapshot per
        // row (which would be quadratic in the number of states).
        self.rebuild_published();
    }

    /// Renders the live part of the graph in the style of the paper's item
    /// set diagrams.
    pub fn render(&self, grammar: &Grammar) -> String {
        let mut out = String::new();
        for node in self.live_nodes() {
            let kind = match node.kind {
                ItemSetKind::Initial => "initial",
                ItemSetKind::Dirty => "dirty",
                ItemSetKind::Complete => "complete",
            };
            out.push_str(&format!("item set {} ({kind}, rc={}):\n", node.id, node.refcount));
            for item in &node.kernel {
                out.push_str(&format!("    {}\n", item.display(grammar)));
            }
            if node.kind == ItemSetKind::Complete {
                for (&sym, &target) in &node.transitions {
                    out.push_str(&format!("    --{}--> {}\n", grammar.name(sym), target));
                }
                for &rule in &node.reductions {
                    out.push_str(&format!(
                        "    reduce {}\n",
                        grammar.rule(rule).display(grammar.symbols())
                    ));
                }
                if node.accepting {
                    out.push_str("    --$--> accept\n");
                }
            }
        }
        out
    }

    /// Declares that the grammar changed in a way that does not affect the
    /// graph (e.g. new symbols were interned but no rule was added or
    /// removed). Rule modifications must go through
    /// [`ItemSetGraph::add_rule`] / [`ItemSetGraph::remove_rule`] instead.
    pub fn acknowledge_non_structural_change(&mut self, grammar: &Grammar) {
        self.inner.lock().unwrap().grammar_version = grammar.version();
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;

    #[test]
    fn new_graph_contains_only_the_initial_start_state() {
        // Fig. 5.1(a): after (lazy) generation the graph consists of the
        // start item set only, with type initial.
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        assert_eq!(graph.num_live(), 1);
        let start = graph.node(graph.start_state());
        assert_eq!(start.kind, ItemSetKind::Initial);
        assert_eq!(start.kernel.len(), 1);
        assert!(start.needs_expansion());
    }

    #[test]
    fn expanding_the_start_state_matches_fig_51b() {
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        graph.ensure_expanded(&g, graph.start_state());
        // Fig. 5.1(b): the start state plus three initial successors
        // (on B, true, false).
        assert_eq!(graph.num_live(), 4);
        let start = graph.node(graph.start_state());
        assert_eq!(start.kind, ItemSetKind::Complete);
        assert_eq!(start.transitions.len(), 3);
        assert_eq!(graph.stats().expansions, 1);
        let size = graph.size();
        assert_eq!(size.complete, 1);
        assert_eq!(size.initial, 3);
    }

    #[test]
    fn full_expansion_matches_conventional_automaton() {
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let conventional = ipg_lr::Lr0Automaton::build(&g);
        assert_eq!(graph.num_live(), conventional.num_states());
        // Every kernel of the conventional automaton exists in the graph.
        for state in conventional.states() {
            assert!(
                graph.live_nodes().any(|n| n.kernel == state.kernel),
                "kernel missing: {:?}",
                state.kernel
            );
        }
    }

    #[test]
    fn add_rule_invalidates_states_with_transition_on_lhs() {
        // §6.1 / Fig. 6.4: adding `B ::= unknown` makes the item sets with
        // a transition on B initial/dirty again (states 0, 4, 5 in the
        // paper's numbering).
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let before = graph.num_live();
        let b = g.symbol("B").unwrap();
        let unknown = g.terminal("unknown");
        graph.add_rule(&mut g, b, vec![unknown]);
        let invalidated = graph
            .live_nodes()
            .filter(|n| n.kind != ItemSetKind::Complete)
            .count();
        assert_eq!(invalidated, 3, "exactly the three states with a B transition");
        assert_eq!(graph.num_live(), before, "nothing is thrown away yet");
        assert_eq!(graph.stats().invalidations, 3);
    }

    #[test]
    fn re_expansion_after_addition_reconnects_and_extends_the_graph() {
        // Fig. 6.5: re-expanding item set 0 re-establishes its old
        // connections and creates the new `B ::= unknown .` item set.
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let unknown = g.terminal("unknown");
        graph.add_rule(&mut g, b, vec![unknown]);
        graph.ensure_expanded(&g, graph.start_state());
        let start = graph.node(graph.start_state());
        assert_eq!(start.kind, ItemSetKind::Complete);
        assert!(start.transitions.contains_key(&unknown));
        assert_eq!(start.transitions.len(), 4);
        // The old successors were re-used, not regenerated.
        assert!(graph.stats().re_expansions >= 1);
    }

    #[test]
    fn start_rule_modification_updates_the_start_kernel() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        // Add `START ::= E` (with E ::= id so the grammar stays valid).
        let e = g.nonterminal("E");
        let id = g.terminal("id");
        graph.add_rule(&mut g, e, vec![id]);
        let start_sym = g.start_symbol();
        graph.add_rule(&mut g, start_sym, vec![e]);
        let start = graph.node(graph.start_state());
        assert_eq!(start.kernel.len(), 2);
        assert!(start.needs_expansion());
        graph.ensure_expanded(&g, graph.start_state());
        assert!(graph.node(graph.start_state()).transitions.contains_key(&e));
    }

    #[test]
    fn delete_rule_then_reexpand_drops_the_transition() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let fa = g.symbol("false").unwrap();
        graph.remove_rule(&mut g, b, &[fa]).unwrap();
        graph.ensure_expanded(&g, graph.start_state());
        let start = graph.node(graph.start_state());
        assert!(!start.transitions.contains_key(&fa));
        assert_eq!(start.transitions.len(), 2);
    }

    #[test]
    fn deleting_a_missing_rule_is_an_error_and_leaves_the_graph_intact() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let or = g.symbol("or").unwrap();
        let before = graph.stats().modifications;
        assert!(graph.remove_rule(&mut g, b, &[or]).is_err());
        assert_eq!(graph.stats().modifications, before);
        assert!(graph.live_nodes().all(|n| n.kind == ItemSetKind::Complete));
    }

    #[test]
    fn refcount_gc_reclaims_unreachable_states() {
        // Deleting `B ::= B and B` and re-expanding everything reachable
        // leaves the `and`-successor states unreferenced; with refcount GC
        // they are reclaimed once their referrers are re-expanded.
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::with_policy(&g, GcPolicy::RefCount);
        graph.expand_all(&g);
        let full = graph.num_live();
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.expand_all(&g);
        assert!(graph.stats().nodes_collected > 0, "GC reclaimed something");
        assert!(graph.num_live() < full);
    }

    #[test]
    fn retain_policy_keeps_everything() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::with_policy(&g, GcPolicy::Retain);
        graph.expand_all(&g);
        let full = graph.num_live();
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.expand_all(&g);
        assert_eq!(graph.stats().nodes_collected, 0);
        assert!(graph.num_live() >= full);
    }

    #[test]
    fn mark_and_sweep_reclaims_unreachable_states() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::with_policy(&g, GcPolicy::Retain);
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.expand_all(&g);
        let before_sweep = graph.num_live();
        graph.mark_and_sweep(&g);
        assert!(graph.num_live() < before_sweep);
        assert!(graph.stats().nodes_swept > 0);
        assert_eq!(graph.stats().sweeps, 1);
    }

    #[test]
    fn fig62_addition_is_handled_like_fig63() {
        // §6: adding `A ::= b` to the grammar of Fig. 6.2 invalidates item
        // set 3 (the one with a transition on A); re-expansion replaces its
        // `b`-successor by a new item set with kernel {B ::= b ., A ::= b .}
        // while the old `B ::= b .` item set survives for the other branch.
        let mut g = fixtures::fig62();
        let mut graph = ItemSetGraph::new(&g);
        graph.expand_all(&g);
        let a_sym = g.symbol("A").unwrap();
        let b_tok = g.symbol("b").unwrap();
        let rule_b = g.symbol("B").unwrap();
        graph.add_rule(&mut g, a_sym, vec![b_tok]);
        // Only the state with a transition on A is invalidated.
        let invalidated: Vec<_> = graph
            .live_nodes()
            .filter(|n| n.kind != ItemSetKind::Complete)
            .collect();
        assert_eq!(invalidated.len(), 1);
        assert!(invalidated[0].transitions.contains_key(&a_sym));
        graph.expand_all(&g);
        // There is now an item set whose kernel holds both completed rules
        // `B ::= b .` and `A ::= b .`.
        let double = graph.live_nodes().find(|n| {
            n.kernel.len() == 2
                && n.kernel
                    .iter()
                    .all(|i| i.is_complete(&g) && g.rule(i.rule).rhs == vec![b_tok])
        });
        assert!(double.is_some(), "merged b-successor item set exists");
        // And the plain `B ::= b .` item set still exists for the other branch.
        let single = graph.live_nodes().any(|n| {
            n.kernel.len() == 1
                && n.kernel.iter().all(|i| {
                    i.is_complete(&g) && g.rule(i.rule).lhs == rule_b && g.rule(i.rule).rhs == vec![b_tok]
                })
        });
        assert!(single, "original B ::= b . item set survives");
    }

    #[test]
    fn sweep_policy_reclaims_garbage() {
        let mut g = fixtures::booleans();
        let mut graph =
            ItemSetGraph::with_policy(&g, GcPolicy::RefCountWithSweep { threshold_percent: 10 });
        graph.expand_all(&g);
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        let or = g.symbol("or").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.remove_rule(&mut g, b, &[b, or, b]).unwrap();
        graph.expand_all(&g);
        assert!(graph.stats().total_collected() > 0);
        // A final sweep reduces the live graph to exactly the automaton of
        // the reduced grammar (reference counting alone may leave cyclic
        // garbage behind, which is precisely why the paper suggests the
        // sweep).
        graph.mark_and_sweep(&g);
        let conventional = ipg_lr::Lr0Automaton::build(&g);
        assert_eq!(graph.num_live(), conventional.num_states());
        assert!(graph.live_nodes().all(|n| n.refcount > 0 || n.id == graph.start_state()));
    }

    #[test]
    fn render_mentions_kinds_and_transitions() {
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        graph.ensure_expanded(&g, graph.start_state());
        let text = graph.render(&g);
        assert!(text.contains("complete"));
        assert!(text.contains("initial"));
        assert!(text.contains("--true-->"));
    }

    #[test]
    fn try_node_reports_stale_ids_as_errors() {
        let mut g = fixtures::booleans();
        let mut graph = ItemSetGraph::with_policy(&g, GcPolicy::RefCount);
        graph.expand_all(&g);
        assert!(graph.try_node(graph.start_state()).is_ok());
        let bogus = StateId::from_index(9999);
        assert_eq!(graph.try_node(bogus).map(|_| ()), Err(GraphError::UnknownState(bogus)));
        assert!(GraphError::UnknownState(bogus).to_string().contains("9999"));
        // Collect something, then resolve its id.
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        graph.remove_rule(&mut g, b, &[b, and, b]).unwrap();
        graph.expand_all(&g);
        let dead = (0..graph.stats().nodes_created)
            .map(StateId::from_index)
            .find(|&id| !graph.node(id).alive)
            .expect("refcount GC collected a node");
        assert_eq!(graph.try_node(dead).map(|_| ()), Err(GraphError::CollectedState(dead)));
        assert!(GraphError::CollectedState(dead).to_string().contains("reclaimed"));
    }

    #[test]
    fn concurrent_readers_share_one_lazily_expanded_graph() {
        use ipg_glr::GssParser;
        use ipg_lr::tokenize_names;

        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        let sentences = ["true and true", "false or true", "true or false and true"];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let parser = GssParser::new(&g);
                    for sentence in sentences {
                        let tokens = tokenize_names(&g, sentence).unwrap();
                        let tables = crate::tables::LazyTables::new(&g, &graph).unwrap();
                        assert!(parser.recognize(&tables, &tokens), "`{sentence}`");
                    }
                });
            }
        });
        // All threads drove the same graph; it expanded each state once.
        let full = ipg_lr::Lr0Automaton::build(&g).num_states();
        assert!(graph.stats().expansions <= full);
        assert!(graph.size().complete > 0);
    }

    #[test]
    fn graph_clone_is_deep() {
        let g = fixtures::booleans();
        let graph = ItemSetGraph::new(&g);
        graph.ensure_expanded(&g, graph.start_state());
        let clone = graph.clone();
        assert_eq!(clone.num_live(), graph.num_live());
        clone.expand_all(&g);
        assert!(clone.num_live() >= graph.num_live());
    }
}
