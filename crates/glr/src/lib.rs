//! # ipg-glr
//!
//! Tomita-style (pseudo-)parallel LR parsing for the IPG reproduction
//! (*Incremental Generation of Parsers*, Heering, Klint & Rekers).
//!
//! The paper drives its lazily generated LR(0) tables with Tomita's
//! parallel parsing algorithm so that *arbitrary* context-free grammars are
//! accepted (§3.2). This crate provides two interchangeable drivers:
//!
//! * [`pool`] — the paper-faithful `PAR-PARSE`: a pool of simple LR parsers
//!   that are copied per action and synchronised on shifts;
//! * [`gss`] — the production formulation over a graph-structured stack,
//!   with shared-forest construction ([`forest`]).
//!
//! Both are written against `ipg_lr::ParserTables`, so they run over
//! eagerly generated tables as well as over the lazy item-set graph of the
//! `ipg` crate.
//!
//! ```
//! use ipg_grammar::fixtures;
//! use ipg_lr::{Lr0Automaton, ParseTable, tokenize_names};
//! use ipg_glr::GssParser;
//!
//! let grammar = fixtures::booleans();
//! let table = ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar);
//! let parser = GssParser::new(&grammar);
//! let tokens = tokenize_names(&grammar, "true or true or true").unwrap();
//! let result = parser.parse(&table, &tokens);
//! assert!(result.accepted);
//! assert_eq!(result.forest.tree_count(100), 2); // two ways to nest `or`
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod fault;
pub mod forest;
pub mod fxhash;
pub mod gss;
pub mod pool;
pub mod source;

pub use budget::{ExhaustReason, ParseBudget};
pub use fault::FaultPlan;
pub use forest::{Derivation, Derivations, Forest, ForestNode, ForestRef, NodeId};
pub use gss::{GssParseResult, GssParser, GssStats, ParseCtx, ParseHistory, ParseOutcome};
pub use pool::{PoolCtx, PoolError, PoolGlrParser, PoolStats};
pub use source::{SliceTokens, TokenSource};
