//! A fast, non-cryptographic hasher (the rustc-hash / FxHash multiply-xor
//! scheme) for the GSS and forest hot paths, where SipHash's per-lookup
//! cost is measurable. Keys are small and attacker-controlled input is not
//! a concern for an in-process parser cache.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiply constant of FxHash (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-xor hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly_often_enough() {
        let mut set = FxHashSet::default();
        for i in 0..10_000u64 {
            set.insert(i);
        }
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn byte_writes_cover_tail() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }
}
