//! The paper's `PAR-PARSE` (§3.2): a pool of simple LR parsers running in
//! pseudo-parallel, synchronised on shift actions.
//!
//! This implementation follows the paper closely:
//!
//! * two pools, `this_sweep` and `next_sweep`;
//! * for every action returned by `ACTION(state, symbol)` the parser is
//!   *copied* and the action performed on the copy;
//! * "the implementation of the copy operation for parsers is such that the
//!   parse stacks become different objects which share the states on them"
//!   — the stack is a persistent (`Rc`-linked) list, so copying a parser is
//!   O(1) and the common prefix is shared;
//! * the input is accepted if at least one simple parser accepts it.
//!
//! Like the paper's version it is a *recogniser* (no parse trees); the
//! graph-structured-stack parser in [`crate::gss`] builds shared forests.

use std::fmt;
use std::rc::Rc;

use ipg_grammar::{Grammar, SymbolId};
use ipg_lr::{ActionCell, ParserTables, StateId};

use crate::fxhash::FxHashSet;

/// A persistent stack of states; `copy` shares the nodes below the top.
#[derive(Clone, Debug)]
struct Stack {
    top: StateId,
    below: Option<Rc<Stack>>,
    depth: usize,
}

impl Stack {
    fn new(state: StateId) -> Rc<Self> {
        Rc::new(Stack {
            top: state,
            below: None,
            depth: 1,
        })
    }

    fn push(self: &Rc<Self>, state: StateId) -> Rc<Self> {
        Rc::new(Stack {
            top: state,
            below: Some(Rc::clone(self)),
            depth: self.depth + 1,
        })
    }

    fn pop_n(self: &Rc<Self>, n: usize) -> Option<Rc<Self>> {
        let mut current = Rc::clone(self);
        for _ in 0..n {
            current = Rc::clone(current.below.as_ref()?);
        }
        Some(current)
    }

    /// A content fingerprint used to de-duplicate identical parsers within a
    /// sweep (Tomita's algorithm merges such parsers; the paper's simple
    /// pool formulation would otherwise do duplicate work or, for cyclic
    /// reduce chains, loop). Writes into a reusable buffer so membership
    /// probes allocate nothing.
    fn fingerprint_into(&self, out: &mut Vec<StateId>) {
        out.clear();
        out.reserve(self.depth);
        let mut current = Some(self);
        while let Some(stack) = current {
            out.push(stack.top);
            current = stack.below.as_deref();
        }
    }
}

/// One simple LR parser of the pool: just a parse stack, as in the paper's
/// `LRparser` object.
#[derive(Clone, Debug)]
struct PoolParser {
    stack: Rc<Stack>,
}

/// Reusable per-run scratch of the pool parser: the two sweeps, the
/// fingerprint buffer, the de-duplication sets and the ACTION cell. The
/// paper's algorithm copies parsers per action (those copies are inherent
/// to `PAR-PARSE` and still allocate); what the context removes is the
/// per-run setup cost of the surrounding machinery, mirroring the GSS
/// driver's `ParseCtx`.
///
/// Holds `Rc`-based parser stacks between runs, so (unlike the GSS
/// context) it is deliberately **not** `Send`; the pool parser is the
/// single-threaded ablation baseline, not the serving hot path.
#[derive(Debug, Default)]
pub struct PoolCtx {
    this_sweep: Vec<PoolParser>,
    next_sweep: Vec<PoolParser>,
    fingerprint: Vec<StateId>,
    seen_this: FxHashSet<Vec<StateId>>,
    seen_next: FxHashSet<Vec<StateId>>,
    actions: ActionCell,
}

impl PoolCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all scratch while keeping capacity.
    pub fn reset(&mut self) {
        self.this_sweep.clear();
        self.next_sweep.clear();
        self.fingerprint.clear();
        self.seen_this.clear();
        self.seen_next.clear();
        self.actions.clear();
    }
}

/// Statistics gathered during a [`PoolGlrParser`] run; used by the
/// ablation benchmarks and by tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of input symbols processed (including the end-marker).
    pub symbols: usize,
    /// Total number of parser copies made.
    pub copies: usize,
    /// Maximum number of parsers alive in a single sweep.
    pub max_parsers: usize,
    /// Total number of reduce actions performed.
    pub reduces: usize,
    /// Total number of shift actions performed.
    pub shifts: usize,
}

/// Errors reported by the pool parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// The number of parser steps within one sweep exceeded the safety
    /// bound, which indicates a cyclic grammar (e.g. `A ::= A`) whose
    /// reduce chains never terminate.
    Diverged {
        /// Input position at which the bound was hit.
        position: usize,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Diverged { position } => write!(
                f,
                "parser pool diverged at input position {position} (cyclic reduce chain?)"
            ),
        }
    }
}

impl std::error::Error for PoolError {}

/// The (pseudo-)parallel LR parser of §3.2, operating over any
/// [`ParserTables`] implementation.
#[derive(Debug)]
pub struct PoolGlrParser<'g> {
    grammar: &'g Grammar,
    /// Safety bound on parser actions per sweep, as a multiple of the
    /// number of active rules (0 disables the bound).
    sweep_bound_factor: usize,
}

impl<'g> PoolGlrParser<'g> {
    /// Creates a parser for `grammar`.
    pub fn new(grammar: &'g Grammar) -> Self {
        PoolGlrParser {
            grammar,
            sweep_bound_factor: 64,
        }
    }

    /// Overrides the per-sweep divergence bound factor (for tests).
    pub fn with_sweep_bound_factor(mut self, factor: usize) -> Self {
        self.sweep_bound_factor = factor;
        self
    }

    /// Recognises `tokens`. Returns whether at least one of the parallel
    /// simple parsers accepted the input. Allocates a fresh context; see
    /// [`PoolGlrParser::recognize_in`] for the recycled form.
    pub fn recognize(
        &self,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
    ) -> Result<bool, PoolError> {
        self.recognize_with_stats(tables, tokens).map(|(ok, _)| ok)
    }

    /// Recognises `tokens` in a reusable context.
    pub fn recognize_in(
        &self,
        ctx: &mut PoolCtx,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
    ) -> Result<bool, PoolError> {
        self.run(ctx, tables, tokens).map(|(ok, _)| ok)
    }

    /// Recognises `tokens` and reports pool statistics.
    pub fn recognize_with_stats(
        &self,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
    ) -> Result<(bool, PoolStats), PoolError> {
        let mut ctx = PoolCtx::new();
        self.run(&mut ctx, tables, tokens)
    }

    fn run(
        &self,
        ctx: &mut PoolCtx,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
    ) -> Result<(bool, PoolStats), PoolError> {
        ctx.reset();
        let eof = self.grammar.eof_symbol();
        let mut stats = PoolStats::default();
        let mut accepted = false;
        let PoolCtx {
            this_sweep,
            next_sweep,
            fingerprint,
            seen_this,
            seen_next,
            actions,
        } = ctx;

        next_sweep.push(PoolParser {
            stack: Stack::new(tables.start_state()),
        });
        let mut pos = 0usize;
        // Bound on the amount of work per sweep; proportional to the number
        // of live parsers times the grammar size.
        let per_sweep_bound = |live: usize, rules: usize, factor: usize| -> usize {
            if factor == 0 {
                usize::MAX
            } else {
                factor * rules.max(1) * live.max(1)
            }
        };

        while !next_sweep.is_empty() {
            let symbol = tokens.get(pos).copied().unwrap_or(eof);
            pos += 1;
            stats.symbols += 1;

            debug_assert!(this_sweep.is_empty());
            std::mem::swap(this_sweep, next_sweep);
            stats.max_parsers = stats.max_parsers.max(this_sweep.len());
            let bound = per_sweep_bound(
                this_sweep.len(),
                self.grammar.num_active_rules(),
                self.sweep_bound_factor,
            );
            let mut steps = 0usize;

            // De-duplication of stacks within the two pools: identical
            // parsers would behave identically from here on.
            seen_this.clear();
            seen_next.clear();
            for p in this_sweep.iter() {
                p.stack.fingerprint_into(fingerprint);
                if !seen_this.contains(fingerprint) {
                    seen_this.insert(fingerprint.clone());
                }
            }

            while let Some(parser) = this_sweep.pop() {
                steps += 1;
                if steps > bound {
                    return Err(PoolError::Diverged { position: pos - 1 });
                }
                let state = parser.stack.top;
                tables.actions_into(state, symbol, actions);
                let shift = actions.shift;
                let accept = actions.accept;
                // The paper copies the parser for every action.
                for &rule_id in &actions.reductions {
                    let copy = parser.clone();
                    stats.copies += 1;
                    stats.reduces += 1;
                    let rule = self.grammar.rule(rule_id);
                    let Some(below) = copy.stack.pop_n(rule.rhs.len()) else {
                        // Stack underflow can only happen with
                        // inconsistent tables; treat as a dead parser.
                        continue;
                    };
                    let Some(target) = tables.goto(below.top, rule.lhs) else {
                        continue;
                    };
                    let moved = PoolParser {
                        stack: below.push(target),
                    };
                    moved.stack.fingerprint_into(fingerprint);
                    if !seen_this.contains(fingerprint) {
                        seen_this.insert(fingerprint.clone());
                        this_sweep.push(moved);
                    }
                }
                if let Some(next) = shift {
                    let copy = parser.clone();
                    stats.copies += 1;
                    stats.shifts += 1;
                    let moved = PoolParser {
                        stack: copy.stack.push(next),
                    };
                    moved.stack.fingerprint_into(fingerprint);
                    if !seen_next.contains(fingerprint) {
                        seen_next.insert(fingerprint.clone());
                        next_sweep.push(moved);
                    }
                }
                if accept {
                    stats.copies += 1;
                    accepted = true;
                }
                // When there are no actions the parser just disappears
                // (the error case of the paper).
            }
            stats.max_parsers = stats.max_parsers.max(next_sweep.len());
        }
        Ok((accepted, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::{fixtures, parse_bnf};
    use ipg_lr::{tokenize_names, Lr0Automaton, ParseTable};

    fn booleans_table() -> (ipg_grammar::Grammar, ParseTable) {
        let g = fixtures::booleans();
        let t = ParseTable::lr0(&Lr0Automaton::build(&g), &g);
        (g, t)
    }

    #[test]
    fn accepts_the_papers_example_sentences() {
        let (g, table) = booleans_table();
        let parser = PoolGlrParser::new(&g);
        for sentence in ["true", "false", "true or false", "true and true", "true or false and true"] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert!(
                parser.recognize(&table, &tokens).unwrap(),
                "should accept `{sentence}`"
            );
        }
    }

    #[test]
    fn rejects_ungrammatical_sentences() {
        let (g, table) = booleans_table();
        let parser = PoolGlrParser::new(&g);
        for sentence in ["or", "true or", "true false", "and and", ""] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert!(
                !parser.recognize(&table, &tokens).unwrap(),
                "should reject `{sentence}`"
            );
        }
    }

    #[test]
    fn ambiguous_sentences_split_the_parser() {
        let (g, table) = booleans_table();
        let parser = PoolGlrParser::new(&g);
        let tokens = tokenize_names(&g, "true or true or true").unwrap();
        let (ok, stats) = parser.recognize_with_stats(&table, &tokens).unwrap();
        assert!(ok);
        assert!(stats.max_parsers > 1, "the parser must have split: {stats:?}");
        assert!(stats.copies > stats.shifts);
    }

    #[test]
    fn handles_the_palindrome_grammar() {
        // Not LR(k) for any k; the pool parser still recognises it.
        let g = fixtures::palindromes();
        let table = ParseTable::lr0(&Lr0Automaton::build(&g), &g);
        let parser = PoolGlrParser::new(&g);
        for (sentence, expected) in [
            ("a b a", true),
            ("a b b a", true),
            ("a a a", true),
            ("", true),
            ("a b", false),
            ("b a a", false),
        ] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert_eq!(
                parser.recognize(&table, &tokens).unwrap(),
                expected,
                "sentence `{sentence}`"
            );
        }
    }

    #[test]
    fn agrees_with_deterministic_parser_on_slr_grammar() {
        let g = fixtures::arithmetic();
        let table = ParseTable::slr1(&Lr0Automaton::build(&g), &g);
        let pool = PoolGlrParser::new(&g);
        let det = ipg_lr::LrParser::new(&g);
        for sentence in ["id", "id + id * num", "( id + num )", "id +", "* id"] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            let expected = det.recognize(&table, &tokens).unwrap();
            assert_eq!(
                pool.recognize(&table, &tokens).unwrap(),
                expected,
                "sentence `{sentence}`"
            );
        }
    }

    #[test]
    fn cyclic_grammar_reports_divergence() {
        // A ::= A | a — the reduce A ::= A loops forever in a naive pool;
        // de-duplication stops it, so this must *not* diverge.
        let g = parse_bnf(
            r#"
            A ::= A
            A ::= "a"
            START ::= A
            "#,
        )
        .unwrap();
        let table = ParseTable::lr0(&Lr0Automaton::build(&g), &g);
        let parser = PoolGlrParser::new(&g);
        let tokens = tokenize_names(&g, "a").unwrap();
        assert!(parser.recognize(&table, &tokens).unwrap());
    }

    #[test]
    fn stats_count_symbols_including_eof() {
        let (g, table) = booleans_table();
        let parser = PoolGlrParser::new(&g);
        let tokens = tokenize_names(&g, "true and false").unwrap();
        let (_, stats) = parser.recognize_with_stats(&table, &tokens).unwrap();
        assert_eq!(stats.symbols, tokens.len() + 1);
        assert!(stats.shifts >= tokens.len());
    }

    #[test]
    fn error_type_displays() {
        let e = PoolError::Diverged { position: 4 };
        assert!(e.to_string().contains("position 4"));
    }

    #[test]
    fn recycled_context_agrees_with_fresh_runs() {
        let (g, table) = booleans_table();
        let parser = PoolGlrParser::new(&g);
        let mut ctx = PoolCtx::new();
        for sentence in ["true", "true or", "true or true or true", "", "true or"] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert_eq!(
                parser.recognize_in(&mut ctx, &table, &tokens).unwrap(),
                parser.recognize(&table, &tokens).unwrap(),
                "sentence `{sentence}`"
            );
        }
    }
}
