//! Test-only fault injection: labeled panic sites for chaos testing.
//!
//! Robustness claims ("a panicking parse answers exactly once and the worker
//! pool survives at full strength") are only credible when proven by
//! injecting the panic, not by waiting for one. This module plants cheap
//! [`point`] markers at labeled sites along the request path — `"post-pin"`
//! (right after a request pins a grammar epoch), `"mid-gss"` (inside the GSS
//! run loop), `"forest-grow"` (while the shared forest adds a derivation),
//! `"relex"` (in the incremental re-lex path) — and lets tests arm a
//! [`FaultPlan`] that makes specific sites panic a bounded number of times.
//!
//! The mechanism is compiled in unconditionally but inert by default: the
//! disarmed fast path is a single relaxed atomic load, which keeps the
//! zero-alloc warm path honest — the alloc gates and serving benches run with
//! the same code production runs. Arming is process-global, so tests that
//! arm plans must serialize (the chaos integration tests hold a lock).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Global switch consulted by every [`point`]; relaxed load when disarmed.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Total panics injected since process start (survives disarm; for tests).
static INJECTED: AtomicU64 = AtomicU64::new(0);

/// The armed plan. Only locked on the slow path (armed) and in arm/disarm.
static PLAN: Mutex<Vec<SiteArm>> = Mutex::new(Vec::new());

/// When set, only points hit *on this thread* consult the plan — lets unit
/// tests inject faults without racing parallel test threads through the
/// same sites. `None` (the [`FaultPlan::arm`] default) hits every thread,
/// which chaos tests need to reach worker pools.
static SCOPE: Mutex<Option<std::thread::ThreadId>> = Mutex::new(None);

struct SiteArm {
    site: &'static str,
    /// After this many hits, start panicking.
    skip: u32,
    /// Panics still to fire at this site; 0 means spent.
    remaining: u32,
}

/// A set of labeled sites to fail, each a bounded number of times.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    arms: Vec<(&'static str, u32, u32)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing until sites are added).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Panic the next `count` hits of `site`.
    pub fn fail(mut self, site: &'static str, count: u32) -> Self {
        self.arms.push((site, 0, count));
        self
    }

    /// Skip the first `skip` hits of `site`, then panic the next `count`.
    pub fn fail_after(mut self, site: &'static str, skip: u32, count: u32) -> Self {
        self.arms.push((site, skip, count));
        self
    }

    /// Installs this plan process-wide, replacing any previous plan.
    pub fn arm(self) {
        self.install(None);
    }

    /// Installs this plan for the **calling thread only**: points hit on
    /// other threads pass through untouched. Use in unit tests that share a
    /// process with unrelated parallel tests.
    pub fn arm_scoped(self) {
        self.install(Some(std::thread::current().id()));
    }

    fn install(self, scope: Option<std::thread::ThreadId>) {
        *lock_scope() = scope;
        let mut plan = lock_plan();
        plan.clear();
        plan.extend(self.arms.into_iter().map(|(site, skip, remaining)| SiteArm {
            site,
            skip,
            remaining,
        }));
        let any = plan.iter().any(|a| a.remaining > 0);
        drop(plan);
        ARMED.store(any, Ordering::SeqCst);
    }
}

/// Clears the armed plan; all points return to the single-load fast path.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    lock_plan().clear();
    *lock_scope() = None;
}

/// Total panics injected since process start.
pub fn injected() -> u64 {
    INJECTED.load(Ordering::SeqCst)
}

/// A labeled fault site. Free when disarmed (one relaxed load); when an
/// armed plan matches `site` with remaining count, panics with a recognizable
/// `"injected fault at <site>"` message.
#[inline(always)]
pub fn point(site: &str) {
    if ARMED.load(Ordering::Relaxed) {
        point_slow(site);
    }
}

#[cold]
fn point_slow(site: &str) {
    if let Some(owner) = *lock_scope() {
        if owner != std::thread::current().id() {
            return;
        }
    }
    let mut plan = lock_plan();
    let mut fire = false;
    for arm in plan.iter_mut() {
        if arm.site == site {
            if arm.skip > 0 {
                arm.skip -= 1;
            } else if arm.remaining > 0 {
                arm.remaining -= 1;
                fire = true;
            }
            break;
        }
    }
    if !plan.iter().any(|a| a.remaining > 0) {
        ARMED.store(false, Ordering::SeqCst);
    }
    // Release the lock before unwinding so the plan mutex is never poisoned.
    drop(plan);
    if fire {
        INJECTED.fetch_add(1, Ordering::SeqCst);
        panic!("injected fault at {site}");
    }
}

/// Locks the plan, recovering from poison (a panic between lock and drop is
/// impossible by construction, but a chaos test aborting mid-arm must not
/// wedge every later test).
fn lock_plan() -> MutexGuard<'static, Vec<SiteArm>> {
    PLAN.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn lock_scope() -> MutexGuard<'static, Option<std::thread::ThreadId>> {
    SCOPE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests mutate process-global state; the module keeps them in one
    // test fn so cargo's parallel runner cannot interleave them.
    #[test]
    fn fault_points_fire_and_self_disarm() {
        // Disarmed: free.
        point("mid-gss");

        let before = injected();
        FaultPlan::new().fail("mid-gss", 2).arm();

        // Non-matching site does not fire.
        point("post-pin");

        let r1 = std::panic::catch_unwind(|| point("mid-gss"));
        assert!(r1.is_err(), "armed site panics");
        let r2 = std::panic::catch_unwind(|| point("mid-gss"));
        assert!(r2.is_err(), "second count fires too");
        // Spent: the plan self-disarms back to the fast path.
        point("mid-gss");
        assert_eq!(injected() - before, 2);

        // fail_after skips the first N hits.
        FaultPlan::new().fail_after("forest-grow", 2, 1).arm();
        point("forest-grow");
        point("forest-grow");
        let r3 = std::panic::catch_unwind(|| point("forest-grow"));
        assert!(r3.is_err(), "fires after the skip window");
        disarm();
        point("forest-grow");
    }
}
